//! # seu — Search-Engine Usefulness estimation
//!
//! A production-quality Rust reproduction of
//! *Meng, Liu, Yu, Wu, Rishe — "Estimating the Usefulness of Search
//! Engines", ICDE 1999*.
//!
//! In a metasearch architecture a broker holds, for each local search
//! engine, a compact statistical *representative* of its database and must
//! decide per query which engines to invoke. This workspace implements the
//! paper's subrange-based usefulness estimator — which predicts both the
//! number of documents above a similarity threshold (`NoDoc`) and their
//! average similarity (`AvgSim`) — together with every substrate it needs:
//! a text-analysis pipeline, a vector-space search engine, the
//! generating-function polynomial machinery, the compared baselines
//! (gGlOSS high-correlation/disjoint and the VLDB'98 method), a synthetic
//! newsgroup workload, a metasearch broker, and the full evaluation harness
//! that regenerates every table in the paper.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! ```
//! use seu::prelude::*;
//!
//! // Build a tiny engine, its representative, and estimate usefulness.
//! let analyzer = Analyzer::paper_default();
//! let mut builder = CollectionBuilder::new(analyzer, WeightingScheme::CosineTf);
//! builder.add_document("d1", "rust database systems");
//! builder.add_document("d2", "cooking with mushrooms");
//! let collection = builder.build();
//! let engine = SearchEngine::new(collection);
//!
//! let repr = Representative::build(engine.collection());
//! let est = SubrangeEstimator::paper_six_subrange();
//! let query = engine.collection().query_from_text("rust database");
//! let u = est.estimate(&repr, &query, 0.2);
//! let truth = engine.true_usefulness(&query, 0.2);
//! assert!(u.no_doc > 0.0 && truth.no_doc == 1);
//! ```

#![forbid(unsafe_code)]

pub use seu_core as core;
pub use seu_corpus as corpus;
pub use seu_engine as engine;
pub use seu_eval as eval;
pub use seu_metasearch as metasearch;
pub use seu_poly as poly;
pub use seu_repr as repr;
pub use seu_stats as stats;
pub use seu_text as text;

/// The most common imports in one place.
pub mod prelude {
    pub use seu_core::{
        BasicEstimator, BinaryIndependentEstimator, CoriRanker, DependenceAdjustedEstimator,
        DisjointEstimator, EmpiricalSubrangeEstimator, HighCorrelationEstimator,
        PrevMethodEstimator, SubrangeEstimator, Usefulness, UsefulnessCurve, UsefulnessEstimator,
    };
    pub use seu_corpus::{CollectionSpec, QueryLogSpec, SyntheticCorpus};
    pub use seu_engine::{CollectionBuilder, Query, SearchEngine, WeightingScheme};
    pub use seu_metasearch::{Allocation, Broker, SelectionPolicy};
    pub use seu_repr::{
        QuantizedRepresentative, Representative, RepresentativeAccumulator, SubrangeScheme,
    };
    pub use seu_text::{Analyzer, AnalyzerConfig};
}
