//! Document allocation: "give me the 20 best documents overall" —
//! decided from representatives alone.
//!
//! The paper contrasts its threshold-aware usefulness measure with
//! rank-only methods that need "a separate method … to convert these
//! measures to the number of documents to retrieve from each search
//! engine". Here the conversion is direct: the broker locates the global
//! similarity level at which the engines jointly hold the requested
//! documents and splits the budget by each engine's estimated share.
//! The usefulness *curve* of a single engine is shown first.
//!
//! ```text
//! cargo run --release --example document_allocation
//! ```

use seu::metasearch::Broker;
use seu::prelude::*;

fn main() {
    println!("generating three synthetic newsgroup databases (seed 42)...");
    let ds = seu::corpus::paper_datasets(42);

    // --- One engine's usefulness curve -----------------------------------
    let repr = Representative::build(&ds.d1);
    let est = SubrangeEstimator::paper_six_subrange();
    let query = ds.d1.query_from_text("tp0x40 tp0x41 tp0x55");
    let curve = est.curve(&repr, &query);
    println!("\nD1 usefulness curve for a 3-term topical query:");
    for t in [0.1, 0.2, 0.3, 0.4, 0.5] {
        println!(
            "  T={t:.1}  est NoDoc {:>7.2}   est AvgSim {:.3}",
            curve.no_doc_above(t),
            curve.avg_sim_above(t)
        );
    }
    for k in [1.0, 5.0, 20.0] {
        match curve.similarity_for_count(k) {
            Some(s) => println!("  {k:>4.0} docs expected down to similarity {s:.3}"),
            None => println!("  {k:>4.0} docs: not expected at any positive similarity"),
        }
    }

    // --- Allocation across engines ---------------------------------------
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register("D1", SearchEngine::new(ds.d1.clone()));
    broker.register("D2", SearchEngine::new(ds.d2.clone()));
    broker.register("D3", SearchEngine::new(ds.d3.clone()));

    // A background-vocabulary query reaches all three databases.
    let query_text = "bg120 bg77";
    for k in [5u64, 20, 100] {
        let alloc = broker.allocate_documents(query_text, k);
        let total: u64 = alloc.iter().map(|a| a.k).sum();
        println!("\nrequest {k:>3} docs for {query_text:?} -> allocated {total}:");
        for a in &alloc {
            println!(
                "  {:<4} k = {:>3}   (estimated NoDoc at chosen level: {:.2})",
                a.engine, a.k, a.estimated
            );
        }
    }
}
