//! The paper's scenario at workload scale: 53-topic synthetic newsgroup
//! universe, the D1/D2/D3 snapshot databases, and a SIFT-style query log.
//! Measures how often usefulness-based selection agrees with the oracle
//! and how much engine traffic it saves versus broadcasting every query.
//!
//! ```text
//! cargo run --release --example newsgroup_selection
//! ```

use seu::corpus::queries::query_text;
use seu::metasearch::Broker;
use seu::prelude::*;

fn main() {
    println!("generating synthetic newsgroup universe (seed 42)...");
    let ds = seu::corpus::paper_datasets(42);
    let n_queries = 800; // a slice of the 6 234-query log keeps this quick
    let threshold = 0.2;

    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register("D1", SearchEngine::new(ds.d1.clone()));
    broker.register("D2", SearchEngine::new(ds.d2.clone()));
    broker.register("D3", SearchEngine::new(ds.d3.clone()));

    let mut invoked = 0usize;
    let mut oracle_invoked = 0usize;
    let mut exact = 0usize;
    let mut missed_engines = 0usize;
    let mut extra_engines = 0usize;

    for tokens in ds.queries.iter().take(n_queries) {
        let text = query_text(tokens);
        let selected = broker.select(&text, threshold, SelectionPolicy::EstimatedUseful);
        let oracle = broker.oracle_select(&text, threshold);
        invoked += selected.len();
        oracle_invoked += oracle.len();
        if selected == oracle {
            exact += 1;
        }
        missed_engines += oracle.iter().filter(|e| !selected.contains(e)).count();
        extra_engines += selected.iter().filter(|e| !oracle.contains(e)).count();
    }

    let broadcast = n_queries * broker.len();
    println!("\n{n_queries} queries at threshold {threshold} against 3 engines:");
    println!("  broadcast policy would invoke {broadcast} engines");
    println!(
        "  estimated-useful policy invoked   {invoked} ({:.1} % of broadcast)",
        100.0 * invoked as f64 / broadcast as f64
    );
    println!("  oracle would invoke              {oracle_invoked}");
    println!(
        "  exact selections: {exact}/{n_queries} ({:.1} %)",
        100.0 * exact as f64 / n_queries as f64
    );
    println!(
        "  useful engines missed: {missed_engines}   useless engines invoked: {extra_engines}"
    );

    // Show a few concrete selections.
    println!("\nsample selections:");
    for tokens in ds.queries.iter().take(8) {
        let text = query_text(tokens);
        let selected = broker.select(&text, threshold, SelectionPolicy::EstimatedUseful);
        println!("  {text:<40} -> {selected:?}");
    }
}
