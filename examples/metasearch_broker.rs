//! A full metasearch deployment in miniature: engines ship serialized
//! (and optionally one-byte-quantized) representatives to a broker, the
//! broker selects engines per query with the subrange estimator, searches
//! them in parallel, and merges the results.
//!
//! ```text
//! cargo run --example metasearch_broker
//! ```

use seu::metasearch::Broker;
use seu::prelude::*;
use seu::repr::QuantizedRepresentative;

fn engine(topic_docs: &[&str]) -> SearchEngine {
    let mut builder = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, text) in topic_docs.iter().enumerate() {
        builder.add_document(&format!("msg-{i}"), text);
    }
    SearchEngine::new(builder.build())
}

fn main() {
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());

    let engines = [
        (
            "comp.databases",
            engine(&[
                "tuning postgres query plans with partial indexes",
                "comparing btree and hash indexes for point lookups",
                "write amplification in log structured storage engines",
                "metasearch brokers and database selection research",
            ]),
        ),
        (
            "rec.food",
            engine(&[
                "slow roasted tomato sauce for winter pasta",
                "which mushrooms work best in a cream soup",
                "trouble shooting dense sourdough crumb",
            ]),
        ),
        (
            "sci.space",
            engine(&[
                "delta v budgets for lunar transfer orbits",
                "storage tanks boiloff rates for cryogenic propellant",
                "selecting landing sites from orbital imagery databases",
            ]),
        ),
    ];

    for (name, engine) in engines {
        // The engine serializes its representative (what would cross the
        // network), optionally quantizing every number to one byte first.
        let repr = Representative::build(engine.collection());
        let quantized = QuantizedRepresentative::from_representative(&repr);
        let shipped = repr.to_bytes();
        println!(
            "{name}: representative {} bytes serialized, {} bytes quantized",
            shipped.len(),
            quantized.size_bytes()
        );
        let received = Representative::from_bytes(shipped).expect("intact representative");
        broker.register_with_representative(name, engine, received);
    }

    let threshold = 0.15;
    for query in ["database indexes", "mushroom soup", "orbital databases"] {
        println!("\nquery {query:?}");
        let estimates = broker.estimate_all(query, threshold);
        for e in &estimates {
            println!(
                "  {:<15} est NoDoc {:.2}  AvgSim {:.3}",
                e.engine, e.usefulness.no_doc, e.usefulness.avg_sim
            );
        }
        let selected = broker.select(query, threshold, SelectionPolicy::EstimatedUseful);
        println!(
            "  selected: {selected:?}  (oracle: {:?})",
            broker.oracle_select(query, threshold)
        );
        for hit in broker.search(query, threshold, SelectionPolicy::EstimatedUseful) {
            println!("    {:<15} {:<8} sim {:.3}", hit.engine, hit.doc, hit.sim);
        }
    }
}
