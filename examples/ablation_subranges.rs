//! Ablation: how estimation quality depends on the subrange scheme — the
//! design choice at the heart of the paper. Runs the D1 workload under
//! one-subrange (the basic method), equal-subrange schemes with and
//! without the singleton max subrange, and the paper's six-subrange
//! scheme.
//!
//! ```text
//! cargo run --release --example ablation_subranges
//! ```

use seu::core::Expansion;
use seu::eval::render_side_by_side;
use seu::eval::runner::{evaluate, EvalConfig};
use seu::prelude::*;
use seu::repr::MaxWeightMode;
use seu::repr::SubrangeScheme;
use seu_core::UsefulnessEstimator;

fn main() {
    println!("generating synthetic D1 + query log (seed 42)...");
    let ds = seu::corpus::paper_datasets(42);
    let repr = Representative::build(&ds.d1);
    let mut queries = ds.queries;
    queries.truncate(1500);
    let config = EvalConfig::default();

    let variants: Vec<(&str, SubrangeEstimator)> = vec![
        (
            "1 subrange (= basic method)",
            SubrangeEstimator::new(
                SubrangeScheme::single(),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        (
            "4 equal subranges, no max",
            SubrangeEstimator::new(
                SubrangeScheme::four_equal(),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        (
            "4 equal + singleton max",
            SubrangeEstimator::new(
                SubrangeScheme::equal(4, true),
                MaxWeightMode::Stored,
                Expansion::Exact,
            ),
        ),
        (
            "paper six-subrange",
            SubrangeEstimator::paper_six_subrange(),
        ),
        (
            "six-subrange, triplet (estimated max)",
            SubrangeEstimator::paper_triplet(),
        ),
    ];

    for (label, est) in &variants {
        let res = evaluate(
            &ds.d1,
            &repr,
            &queries,
            &[est as &(dyn UsefulnessEstimator + Sync)],
            &config,
        );
        println!("{}", render_side_by_side(label, &res[0]));
    }
    println!(
        "reading: the singleton max subrange is what rescues match rates at high \
         thresholds; extra subranges then shave d-N/d-S (the paper's claim)."
    );
}
