//! Working with *real* text instead of the synthetic workload: three
//! newsgroup-style mbox spools are parsed, indexed, persisted, and
//! served through a broker whose representatives travel as bytes —
//! the same flow the `seu` command-line tool wraps.
//!
//! ```text
//! cargo run --example real_corpus
//! ```

use seu::corpus::loader::load_mbox;
use seu::engine::Collection;
use seu::metasearch::Broker;
use seu::prelude::*;

/// Tiny inline stand-ins for on-disk spools.
const COMP_DATABASES: &str = "\
From alice@example.com Tue Jan 5 10:00:00 1999
Subject: btree vs hash indexes

for range scans a btree index wins every time, hash indexes
only help point lookups

From bob@example.com Tue Jan 5 12:30:00 1999
Subject: re: btree vs hash indexes

also consider covering indexes to skip heap fetches entirely

From carol@example.com Wed Jan 6 09:00:00 1999
Subject: query planner statistics

stale statistics make the planner choose terrible join orders,
analyze your tables after bulk loads
";

const REC_FOOD: &str = "\
From dave@example.com Tue Jan 5 11:00:00 1999
Subject: sourdough starter rescue

my starter smells like acetone, feed it twice daily at warmer
room temperature and it recovers

From erin@example.com Wed Jan 6 14:00:00 1999
Subject: mushroom soup depth

roast the mushrooms before simmering, deglaze with sherry
";

const SCI_SPACE: &str = "\
From frank@example.com Tue Jan 5 16:00:00 1999
Subject: aerobraking passes

each aerobraking pass trims apoapsis cheaply compared to a
propulsive burn

From grace@example.com Thu Jan 7 08:00:00 1999
Subject: cryogenic boiloff

zero boiloff storage needs active cooling, passive insulation
only slows the loss
";

fn main() {
    let analyzer = Analyzer::new(AnalyzerConfig {
        remove_stopwords: true,
        stem: true, // real text benefits from stemming
    });

    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    for (name, spool) in [
        ("comp.databases", COMP_DATABASES),
        ("rec.food", REC_FOOD),
        ("sci.space", SCI_SPACE),
    ] {
        let collection = load_mbox(name, spool, analyzer.clone(), WeightingScheme::CosineTf);
        println!(
            "{name}: {} messages, {} distinct stems, {} tokens",
            collection.len(),
            collection.vocab().len(),
            collection.total_tokens()
        );

        // Persist + reload (what `seu index` does), then register with a
        // wire-shipped representative (what a remote engine would send).
        let restored = Collection::from_bytes(collection.to_bytes()).expect("round trip");
        let engine = SearchEngine::new(restored);
        let repr = Representative::build(engine.collection());
        let shipped = Representative::from_bytes(repr.to_bytes()).expect("wire ok");
        broker.register_with_representative(name, engine, shipped);
    }

    // Each collection remembers its analysis pipeline, so the broker's
    // per-engine query analysis stems these queries to match the stemmed
    // indexes automatically.
    for query in ["mushroom soup", "hash indexes", "boiloff storage"] {
        println!("\nquery {query:?}");
        let estimates = broker.estimate_all(query, 0.1);
        for e in &estimates {
            println!(
                "  {:<16} est NoDoc {:.2}  AvgSim {:.3}",
                e.engine, e.usefulness.no_doc, e.usefulness.avg_sim
            );
        }
        for hit in broker.search(query, 0.1, SelectionPolicy::EstimatedUseful) {
            println!("    {:<16} {:<22} sim {:.3}", hit.engine, hit.doc, hit.sim);
        }
    }
}
