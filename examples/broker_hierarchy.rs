//! A broker of brokers — the paper's "more than two levels"
//! generalization. Eight regional brokers front the 53 newsgroup
//! databases; a super-broker holds only eight *merged* group summaries
//! and routes queries down the tree.
//!
//! ```text
//! cargo run --release --example broker_hierarchy
//! ```

use seu::corpus::many_databases;
use seu::corpus::queries::query_text;
use seu::metasearch::{Broker, SuperBroker};
use seu::prelude::*;
use std::sync::Arc;

fn main() {
    println!("generating 53 newsgroup databases (seed 42)...");
    let dbs = many_databases(42, 220);
    let n_dbs = dbs.len();

    let superb = SuperBroker::new(SubrangeEstimator::paper_six_subrange());
    let regions = 8;
    let region_brokers: Vec<Broker<SubrangeEstimator>> = (0..regions)
        .map(|_| Broker::new(SubrangeEstimator::paper_six_subrange()))
        .collect();
    for (i, (name, coll)) in dbs.into_iter().enumerate() {
        region_brokers[i * regions / n_dbs].register(&name, SearchEngine::new(coll));
    }
    for (g, broker) in region_brokers.into_iter().enumerate() {
        let summary = broker.portable_summary();
        println!(
            "region{g}: {} engines, {} docs, {} distinct terms in its group summary",
            broker.len(),
            summary.n_docs(),
            summary.distinct_terms()
        );
        superb.register_broker(&format!("region{g}"), Arc::new(broker));
    }

    let corpus = seu::corpus::SyntheticCorpus::standard();
    let queries = corpus.generate_query_log(&QueryLogSpec {
        n_queries: 6,
        single_term_fraction: 0.2,
        max_terms: 4,
        on_topic_prob: 0.8,
        seed: 77,
    });

    for tokens in &queries {
        let text = query_text(tokens);
        let groups = superb.select(&text, 0.15, SelectionPolicy::EstimatedUseful);
        println!("\nquery {text:?}\n  groups selected: {groups:?}");
        let hits = superb.search(&text, 0.15, SelectionPolicy::EstimatedUseful);
        for hit in hits.iter().take(3) {
            println!("    {:<22} {:<12} sim {:.3}", hit.engine, hit.doc, hit.sim);
        }
        if hits.is_empty() {
            println!("    (no documents above the threshold anywhere)");
        }
    }
}
