//! Quickstart: build two tiny search engines, summarize them into
//! representatives, and let the subrange estimator decide which one is
//! worth querying — without ever touching their documents.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use seu::prelude::*;

fn engine(texts: &[(&str, &str)]) -> SearchEngine {
    let mut builder = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (name, text) in texts {
        builder.add_document(name, text);
    }
    SearchEngine::new(builder.build())
}

fn main() {
    // Two "local search engines" with different subject matter.
    let db_systems = engine(&[
        ("vldb", "query optimization in distributed database systems"),
        (
            "sigmod",
            "transaction concurrency control for relational databases",
        ),
        (
            "icde",
            "estimating the usefulness of search engines for metasearch",
        ),
        (
            "tods",
            "cost models for database query processing and indexes",
        ),
    ]);
    let cooking = engine(&[
        ("soup", "creamy mushroom soup with garlic and thyme"),
        ("bread", "sourdough bread baking with a rye starter"),
        ("pasta", "fresh pasta dough and tomato sauce basics"),
    ]);

    // The broker sees only the compact statistical representatives.
    let r_systems = Representative::build(db_systems.collection());
    let r_cooking = Representative::build(cooking.collection());
    println!(
        "representatives: systems = {} terms ({} bytes), cooking = {} terms ({} bytes)",
        r_systems.distinct_terms(),
        r_systems.size_bytes_quadruplet(),
        r_cooking.distinct_terms(),
        r_cooking.size_bytes_quadruplet(),
    );

    let estimator = SubrangeEstimator::paper_six_subrange();
    let threshold = 0.2;

    for query_text in ["database query", "mushroom soup", "search engines"] {
        println!("\nquery: {query_text:?} (threshold {threshold})");
        for (name, engine, repr) in [
            ("db-systems", &db_systems, &r_systems),
            ("cooking", &cooking, &r_cooking),
        ] {
            let query = engine.collection().query_from_text(query_text);
            let est = estimator.estimate(repr, &query, threshold);
            let truth = engine.true_usefulness(&query, threshold);
            println!(
                "  {name:<10} est NoDoc {:.2} (AvgSim {:.3})   true NoDoc {} (AvgSim {:.3})",
                est.no_doc, est.avg_sim, truth.no_doc, truth.avg_sim
            );
        }
    }
}
