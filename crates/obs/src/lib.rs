//! `seu-obs`: lightweight observability for the seu workspace.
//!
//! Zero heavy dependencies: counters and gauges are single atomics,
//! histograms are fixed-bucket atomic arrays with p50/p95/p99 readout,
//! and [`SpanTimer`] measures wall-clock spans RAII-style. Metrics live
//! in a [`MetricsRegistry`] — either the process-wide [`global`] one the
//! seu crates instrument by default, or a caller-owned instance for
//! isolation. A [`Snapshot`] freezes the registry and renders as
//! Prometheus text ([`Snapshot::to_prometheus`]), JSON
//! ([`Snapshot::to_json`], machine-readable and parsed back by
//! [`Snapshot::from_json`]), or aligned text for terminals
//! ([`Snapshot::to_text`]).
//!
//! Naming follows Prometheus conventions: `<subsystem>_<what>_<unit>`
//! with `_total` for counters, e.g. `broker_query_latency_seconds`,
//! `estimator_poly_terms_pruned_total`.
//!
//! Hot-path discipline: instruments are `Arc`s — look them up once
//! outside a loop (`let c = obs::counter("x"); ... c.add(n)`), and
//! accumulate per-call tallies locally so each operation costs a few
//! relaxed atomic adds, not a registry lookup per document.

pub mod json;
mod metrics;
mod registry;
mod snapshot;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, SpanTimer, DEFAULT_BUCKETS};
pub use registry::{counter, gauge, global, histogram, histogram_with_buckets, MetricsRegistry};
pub use snapshot::{sanitize_label_name, sanitize_metric_name, HistogramSnapshot, Snapshot};
pub use trace::{
    new_span_id, tracer, unix_now_ns, ActiveTrace, FinishedTrace, SpanGuard, SpanId, SpanRecord,
    TraceContext, TraceHandle, TraceId, TraceStore, Tracer,
};

/// Bucket bounds for size-like histograms (result-set sizes, polynomial
/// term counts): powers of two from 1 to 65536.
pub const SIZE_BUCKETS: [f64; 17] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_snapshot_round_trip() {
        counter("obs_selftest_total").add(3);
        histogram("obs_selftest_seconds").observe(0.002);
        let snap = global().snapshot();
        assert!(snap.counters["obs_selftest_total"] >= 3);
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(
            parsed.counters["obs_selftest_total"],
            snap.counters["obs_selftest_total"]
        );
        assert!(parsed.histograms["obs_selftest_seconds"].count >= 1);
    }

    #[test]
    fn size_buckets_are_ascending() {
        assert!(SIZE_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        let h = Histogram::with_buckets(&SIZE_BUCKETS);
        h.observe(100.0);
        assert_eq!(h.bucket_counts()[7], 1);
    }
}
