//! A minimal JSON value model with parser and writer helpers.
//!
//! The workspace has no serde_json; snapshots are emitted by hand and
//! this parser exists so tools (and the integration tests) can read them
//! back. It covers the full JSON grammar except `\u` surrogate pairs
//! beyond the BMP.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `obj[key]`, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> String {
        format!("json parse error at byte {}: {message}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape outside BMP"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("invalid number"))
    }
}

/// Appends `text` to `out` as a quoted JSON string.
pub fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float so it parses back to the same value (`{:?}` is
/// Rust's shortest round-trip formatting), mapping non-finite values to
/// `null` since JSON has no representation for them.
pub fn write_num(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = r#"{"a": [1, -2.5e3, true, null], "b": {"c": "x\ny"}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(-2500.0));
        assert_eq!(
            v.get("b").unwrap().get("c"),
            Some(&Json::Str("x\ny".into()))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_round_trip() {
        let original = "quote\" slash\\ tab\t newline\n unicode\u{1}é🦀";
        let mut encoded = String::new();
        write_escaped(&mut encoded, original);
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn float_round_trip() {
        for v in [0.0, 1.5, 0.1, 1e-9, 123456.789, f64::MAX] {
            let mut s = String::new();
            write_num(&mut s, v);
            assert_eq!(parse(&s).unwrap().as_num(), Some(v));
        }
        let mut s = String::new();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }
}
