//! Point-in-time registry snapshots and their two expositions:
//! Prometheus text format and a JSON document that round-trips through
//! [`Snapshot::from_json`].

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub max: f64,
    pub p50: Option<f64>,
    pub p95: Option<f64>,
    pub p99: Option<f64>,
    /// `(upper_bound, count)` per bucket; `None` is the +Inf bucket.
    /// Counts are per-bucket (not cumulative).
    pub buckets: Vec<(Option<f64>, u64)>,
}

/// Frozen state of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes to a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        first = true;
        for (name, value) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            out.push_str(": ");
            json::write_num(&mut out, *value);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            let _ = write!(out, ": {{\"count\": {}, \"sum\": ", h.count);
            json::write_num(&mut out, h.sum);
            out.push_str(", \"max\": ");
            json::write_num(&mut out, h.max);
            for (label, q) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                let _ = write!(out, ", \"{label}\": ");
                match q {
                    Some(v) => json::write_num(&mut out, v),
                    None => out.push_str("null"),
                }
            }
            out.push_str(", \"buckets\": [");
            for (i, (bound, count)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                match bound {
                    Some(b) => json::write_num(&mut out, *b),
                    None => out.push_str("null"),
                }
                let _ = write!(out, ", {count}]");
            }
            out.push_str("]}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push('}');
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`].
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        let doc = json::parse(input)?;
        let mut snap = Snapshot::default();
        let section = |key: &str| -> Result<BTreeMap<String, Json>, String> {
            doc.get(key)
                .and_then(Json::as_obj)
                .cloned()
                .ok_or_else(|| format!("snapshot is missing the {key:?} object"))
        };
        for (name, value) in section("counters")? {
            let n = value
                .as_num()
                .filter(|n| *n >= 0.0)
                .ok_or_else(|| format!("counter {name:?} is not a non-negative number"))?;
            snap.counters.insert(name, n as u64);
        }
        for (name, value) in section("gauges")? {
            let n = value
                .as_num()
                .ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            snap.gauges.insert(name, n);
        }
        for (name, value) in section("histograms")? {
            let num = |key: &str| -> Result<f64, String> {
                value
                    .get(key)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("histogram {name:?} is missing {key:?}"))
            };
            let quantile = |key: &str| -> Result<Option<f64>, String> {
                match value.get(key) {
                    Some(Json::Null) | None => Ok(None),
                    Some(Json::Num(n)) => Ok(Some(*n)),
                    Some(_) => Err(format!("histogram {name:?} has non-numeric {key:?}")),
                }
            };
            let mut buckets = Vec::new();
            for pair in value
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histogram {name:?} is missing \"buckets\""))?
            {
                match pair.as_arr() {
                    Some([bound, count]) => {
                        let bound = match bound {
                            Json::Null => None,
                            Json::Num(b) => Some(*b),
                            _ => return Err(format!("histogram {name:?} has a bad bound")),
                        };
                        let count = count
                            .as_num()
                            .filter(|n| *n >= 0.0)
                            .ok_or_else(|| format!("histogram {name:?} has a bad count"))?;
                        buckets.push((bound, count as u64));
                    }
                    _ => return Err(format!("histogram {name:?} bucket is not a pair")),
                }
            }
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count: num("count")? as u64,
                    sum: num("sum")?,
                    max: num("max")?,
                    p50: quantile("p50")?,
                    p95: quantile("p95")?,
                    p99: quantile("p99")?,
                    buckets,
                },
            );
        }
        Ok(snap)
    }

    /// Renders Prometheus text exposition format (untyped timestamps,
    /// cumulative `_bucket` series, `_sum` and `_count`). Metric names
    /// are sanitized to the Prometheus grammar on the way out.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in &h.buckets {
                cumulative += count;
                match bound {
                    Some(b) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }

    /// A compact human-oriented rendering for `--stats` output.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<52} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<52} {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let quantiles = match (h.p50, h.p95, h.p99) {
                    (Some(p50), Some(p95), Some(p99)) => {
                        format!("p50={p50:.3e} p95={p95:.3e} p99={p99:.3e}")
                    }
                    _ => String::from("(empty)"),
                };
                let _ = writeln!(
                    out,
                    "  {name:<52} count={} sum={:.3e} {quantiles}",
                    h.count, h.sum
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Rewrites `name` into the Prometheus metric-name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_` and a
/// leading digit gains a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    sanitize(name, true)
}

/// Rewrites `name` into the Prometheus label-name grammar
/// (`[a-zA-Z_][a-zA-Z0-9_]*`): like metric names, but `:` is not
/// allowed either.
pub fn sanitize_label_name(name: &str) -> String {
    sanitize(name, false)
}

fn sanitize(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("queries_total".into(), 42);
        snap.gauges.insert("engines".into(), 3.0);
        snap.histograms.insert(
            "latency_seconds".into(),
            HistogramSnapshot {
                count: 3,
                sum: 0.125,
                max: 0.1,
                p50: Some(0.01),
                p95: Some(0.09),
                p99: Some(0.099),
                buckets: vec![(Some(0.01), 1), (Some(0.1), 2), (None, 0)],
            },
        );
        snap
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let snap = sample();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let empty = Snapshot::default();
        assert_eq!(Snapshot::from_json(&empty.to_json()).unwrap(), empty);
        assert!(empty.is_empty());
        assert!(empty.to_text().contains("no metrics"));
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{}").is_err());
        assert!(
            Snapshot::from_json(r#"{"counters": {"a": -1}, "gauges": {}, "histograms": {}}"#)
                .is_err()
        );
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE queries_total counter"));
        assert!(text.contains("queries_total 42"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.01\"} 1"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.1\"} 3"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_seconds_count 3"));
    }

    #[test]
    fn text_rendering_shows_quantiles() {
        let text = sample().to_text();
        assert!(text.contains("queries_total"));
        assert!(text.contains("p95="));
    }

    #[test]
    fn prometheus_sanitizes_metric_names() {
        let mut snap = Snapshot::default();
        snap.counters.insert("seu.broker/queries-total".into(), 1);
        snap.gauges.insert("0weird gauge".into(), 2.0);
        snap.histograms.insert(
            "lätency—seconds".into(),
            HistogramSnapshot {
                count: 0,
                sum: 0.0,
                max: 0.0,
                p50: None,
                p95: None,
                p99: None,
                buckets: vec![(Some(1.0), 0), (None, 0)],
            },
        );
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE seu_broker_queries_total counter"));
        assert!(text.contains("seu_broker_queries_total 1"));
        assert!(text.contains("# TYPE _0weird_gauge gauge"));
        assert!(text.contains("l_tency_seconds_bucket{le=\"+Inf\"} 0"));
        // No raw invalid characters survive anywhere in the exposition.
        assert!(!text.contains('.') || !text.contains('/'));
        for line in text.lines() {
            let name = line.strip_prefix("# TYPE ").unwrap_or(line);
            let metric = name.split([' ', '{']).next().unwrap();
            assert!(
                metric
                    .chars()
                    .enumerate()
                    .all(|(i, c)| c.is_ascii_alphabetic()
                        || c == '_'
                        || c == ':'
                        || (i > 0 && c.is_ascii_digit())),
                "invalid exposition name {metric:?}"
            );
        }
    }

    #[test]
    fn sanitize_edge_cases() {
        assert_eq!(
            sanitize_metric_name("already_fine_total"),
            "already_fine_total"
        );
        assert_eq!(sanitize_metric_name("ns:metric"), "ns:metric");
        assert_eq!(sanitize_label_name("ns:metric"), "ns_metric");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_label_name("le gume"), "le_gume");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn inf_bucket_is_cumulative_total_even_with_overflow() {
        let mut snap = Snapshot::default();
        snap.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 7,
                sum: 99.0,
                max: 50.0,
                p50: Some(1.0),
                p95: Some(50.0),
                p99: Some(50.0),
                buckets: vec![(Some(1.0), 4), (Some(2.0), 0), (None, 3)],
            },
        );
        let text = snap.to_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 4"));
        assert!(text.contains("h_bucket{le=\"2\"} 4"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("h_count 7"));
    }

    #[test]
    fn zero_observation_histogram_renders_everywhere() {
        let mut snap = Snapshot::default();
        snap.histograms.insert(
            "empty_seconds".into(),
            HistogramSnapshot {
                count: 0,
                sum: 0.0,
                max: 0.0,
                p50: None,
                p95: None,
                p99: None,
                buckets: vec![(Some(0.1), 0), (None, 0)],
            },
        );
        // Prometheus: series exist with zero counts, +Inf included.
        let prom = snap.to_prometheus();
        assert!(prom.contains("empty_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(prom.contains("empty_seconds_count 0"));
        // Text: quantiles collapse to the (empty) marker.
        assert!(snap.to_text().contains("(empty)"));
        // JSON: percentiles are null and survive a round trip as None.
        let json = snap.to_json();
        assert!(json.contains("\"p50\": null"));
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed.histograms["empty_seconds"].p50, None);
        assert_eq!(parsed, snap);
    }
}
