//! The metric registry: named get-or-create access to counters, gauges,
//! and histograms, with a process-wide default instance.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named family of metrics. Cheap to share: instruments are `Arc`s and
/// callers are expected to cache them outside hot loops.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, creating it on first use. Panics if the
    /// name is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.metrics.read().get(name) {
            return Arc::clone(c);
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.metrics.read().get(name) {
            return Arc::clone(g);
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// The histogram named `name` with default (latency) buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_buckets(name, &crate::metrics::DEFAULT_BUCKETS)
    }

    /// The histogram named `name`; `bounds` applies only on first
    /// registration.
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.metrics.read().get(name) {
            return Arc::clone(h);
        }
        let mut metrics = self.metrics.write();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_buckets(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.read().keys().cloned().collect()
    }

    /// A point-in-time copy of every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            max: h.max(),
                            p50: h.quantile(0.50),
                            p95: h.quantile(0.95),
                            p99: h.quantile(0.99),
                            buckets: h
                                .bounds()
                                .iter()
                                .map(|&b| Some(b))
                                .chain([None])
                                .zip(counts)
                                .collect(),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Resets the registry to empty. Existing `Arc` handles keep working
    /// but are no longer reported.
    pub fn clear(&self) {
        self.metrics.write().clear();
    }
}

/// The process-wide default registry, used by the instrumentation hooks
/// in the seu crates. Library users wanting isolation can construct and
/// thread their own [`MetricsRegistry`] instead.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// `global().counter(name)`, as a free function for terse call sites.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// `global().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// `global().histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// `global().histogram_with_buckets(name, bounds)`.
pub fn histogram_with_buckets(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    global().histogram_with_buckets(name, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        assert_eq!(reg.counter("a").get(), 5);
        assert_eq!(reg.names(), vec!["a"]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(1.25);
        reg.histogram_with_buckets("h", &[1.0, 2.0]).observe(1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 7);
        assert_eq!(snap.gauges["g"], 1.25);
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets.len(), 3);
        assert_eq!(h.buckets[1], (Some(2.0), 1));
        assert_eq!(h.buckets[2].0, None);
    }

    #[test]
    fn concurrent_get_or_create_single_instrument() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..500 {
                        reg.counter("shared").inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("shared").get(), 4000);
    }
}
