//! `seu-trace`: lock-cheap per-request tracing.
//!
//! A [`Tracer`] starts one trace per request ([`Tracer::start_trace`])
//! and makes a **head-based** sampling decision at that moment: a trace
//! is sampled when the caller forces it (the HTTP `explain` option), or
//! when the rate sampler fires (1-in-N requests, [`Tracer::set_sample_rate`]).
//! Sampled traces record every span; unsampled traces keep only the root
//! timer, so the steady-state cost of an unsampled request is one
//! allocation and two clock reads.
//!
//! Spans are RAII guards ([`SpanGuard`]) carrying explicit parent links
//! and string attributes. Guards record on drop — including during a
//! panic unwind, in which case the span is tagged `panicked=true` — so a
//! crashing worker-pool job still closes its span exactly once.
//!
//! Finished traces are retained in a bounded ring buffer
//! ([`TraceStore`]) when they were sampled **or** when their total
//! duration crossed the slow threshold ([`Tracer::set_slow_threshold`]) —
//! the "always sample slow" half of the policy. A slow trace that was
//! not head-sampled retains its root span plus whatever coarse spans the
//! caller back-filled (the broker synthesizes per-engine spans from
//! dispatch stats), so over-budget requests are never invisible.
//!
//! Trace context crosses process boundaries as a
//! `(trace_id, parent_span_id, sampled)` triple ([`TraceContext`]);
//! seu-net carries it in a dedicated frame kind and remote engines
//! return their spans in the reply, where they are grafted into the
//! caller's trace ([`TraceHandle::adopt_spans`]).

use crate::json;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// Identifies one end-to-end request across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Renders as 16 lowercase hex digits (the form used in URLs and
    /// logs).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`TraceId::to_hex`] form.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// SplitMix64 finalizer: decorrelates sequential counter values into
/// well-spread ids.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Process-unique, well-spread, nonzero 64-bit id. Zero is reserved to
/// mean "absent" on the wire.
fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        mix(nanos ^ (std::process::id() as u64) << 32)
    });
    loop {
        let id = mix(seed ^ COUNTER.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

/// A fresh process-unique span id, for code that authors
/// [`SpanRecord`]s directly — e.g. an engine server recording spans
/// under a propagated [`TraceContext`].
pub fn new_span_id() -> SpanId {
    SpanId(next_id())
}

/// The current wall clock in Unix nanoseconds (0 if the clock is before
/// the epoch), for directly authored [`SpanRecord`]s.
pub fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// The portable part of a trace: what crosses the wire to a remote
/// engine so its spans land in the same tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// The span on the caller's side that the remote work nests under.
    pub parent_span: SpanId,
    /// Head-based sampling decision; unsampled contexts are not
    /// propagated (callers send the plain message instead).
    pub sampled: bool,
}

impl TraceContext {
    /// A context that samples nothing; used where a context is required
    /// but no trace is active.
    pub fn disabled() -> TraceContext {
        TraceContext {
            trace_id: TraceId(0),
            parent_span: SpanId(0),
            sampled: false,
        }
    }
}

/// One finished span: explicit parent link, wall-clock start, duration,
/// and free-form string attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Parent span id; `SpanId(0)` marks the root.
    pub parent: SpanId,
    /// Operation name, e.g. `plan`, `dispatch:engine-3`.
    pub name: String,
    /// Wall-clock start in Unix nanoseconds.
    pub start_unix_ns: u64,
    /// Elapsed nanoseconds.
    pub duration_ns: u64,
    /// `(key, value)` attributes in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// Mutable innards of an in-flight trace.
#[derive(Debug)]
struct TraceInner {
    trace_id: TraceId,
    root_span: SpanId,
    sampled: bool,
    epoch: Instant,
    epoch_unix_ns: u64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceInner {
    fn now_unix_ns(&self) -> u64 {
        self.epoch_unix_ns + self.epoch.elapsed().as_nanos() as u64
    }
}

/// Cheap, cloneable handle to an in-flight trace. Pass it (or clones)
/// down the request path; every method is a no-op when the trace is
/// disabled, and child-span recording is additionally gated on the
/// head sampling decision.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<TraceInner>>,
}

impl TraceHandle {
    /// A handle that records nothing; for code paths without a trace.
    pub fn disabled() -> TraceHandle {
        TraceHandle { inner: None }
    }

    /// Whether span recording is active (trace present **and** sampled).
    pub fn is_sampled(&self) -> bool {
        self.inner.as_ref().is_some_and(|t| t.sampled)
    }

    /// The trace id, if a trace is active.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|t| t.trace_id)
    }

    /// The root span id, if a trace is active.
    pub fn root_span(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|t| t.root_span)
    }

    /// Starts a span parented to the trace root. Returns a recording
    /// guard only when sampled.
    pub fn span(&self, name: &str) -> SpanGuard {
        let parent = self.root_span().unwrap_or(SpanId(0));
        self.child_span(name, parent)
    }

    /// Starts a span under an explicit parent.
    pub fn child_span(&self, name: &str, parent: SpanId) -> SpanGuard {
        match &self.inner {
            Some(t) if t.sampled => SpanGuard {
                inner: Some(SpanGuardInner {
                    trace: Arc::clone(t),
                    id: SpanId(next_id()),
                    parent,
                    name: name.to_string(),
                    start_unix_ns: t.now_unix_ns(),
                    start: Instant::now(),
                    attrs: Vec::new(),
                }),
            },
            _ => SpanGuard { inner: None },
        }
    }

    /// The wire context for remote work nested under `parent`.
    pub fn context(&self, parent: SpanId) -> TraceContext {
        match &self.inner {
            Some(t) => TraceContext {
                trace_id: t.trace_id,
                parent_span: parent,
                sampled: t.sampled,
            },
            None => TraceContext::disabled(),
        }
    }

    /// Grafts externally produced spans (a remote engine's reply, or
    /// back-filled coarse spans) into this trace. Works even when the
    /// trace is unsampled so slow traces can be reconstructed.
    pub fn adopt_spans(&self, spans: impl IntoIterator<Item = SpanRecord>) {
        if let Some(t) = &self.inner {
            t.spans.lock().extend(spans);
        }
    }
}

#[derive(Debug)]
struct SpanGuardInner {
    trace: Arc<TraceInner>,
    id: SpanId,
    parent: SpanId,
    name: String,
    start_unix_ns: u64,
    start: Instant,
    attrs: Vec<(String, String)>,
}

/// RAII span: records into its trace exactly once, on drop or via
/// [`SpanGuard::finish`]. Dropping during a panic unwind still records,
/// tagged with `panicked=true`.
#[derive(Debug, Default)]
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    /// This span's id (to parent children under); `SpanId(0)` when
    /// disabled.
    pub fn id(&self) -> SpanId {
        self.inner.as_ref().map_or(SpanId(0), |g| g.id)
    }

    /// Whether this guard will record a span.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a `(key, value)` attribute.
    pub fn attr(&mut self, key: &str, value: impl fmt::Display) {
        if let Some(g) = &mut self.inner {
            g.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Closes the span now, returning elapsed seconds (0.0 when
    /// disabled).
    pub fn finish(mut self) -> f64 {
        match self.inner.take() {
            Some(g) => record_guard(g, false),
            None => 0.0,
        }
    }
}

fn record_guard(g: SpanGuardInner, panicking: bool) -> f64 {
    let elapsed = g.start.elapsed();
    let mut attrs = g.attrs;
    if panicking {
        attrs.push(("panicked".to_string(), "true".to_string()));
    }
    g.trace.spans.lock().push(SpanRecord {
        id: g.id,
        parent: g.parent,
        name: g.name,
        start_unix_ns: g.start_unix_ns,
        duration_ns: elapsed.as_nanos() as u64,
        attrs,
    });
    elapsed.as_secs_f64()
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            record_guard(g, std::thread::panicking());
        }
    }
}

/// A trace owned by the request entry point; finishing it closes the
/// root span and offers the trace to the store.
#[derive(Debug)]
pub struct ActiveTrace {
    inner: Arc<TraceInner>,
    name: String,
    root_attrs: Vec<(String, String)>,
    tracer: &'static Tracer,
}

impl ActiveTrace {
    /// A cheap handle for instrumenting downstream code.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle {
            inner: Some(Arc::clone(&self.inner)),
        }
    }

    /// The trace id.
    pub fn trace_id(&self) -> TraceId {
        self.inner.trace_id
    }

    /// The root span id.
    pub fn root_span(&self) -> SpanId {
        self.inner.root_span
    }

    /// Whether child spans are being recorded.
    pub fn is_sampled(&self) -> bool {
        self.inner.sampled
    }

    /// Attaches an attribute to the root span (recorded even when
    /// unsampled, so slow traces keep their request context).
    pub fn root_attr(&mut self, key: &str, value: impl fmt::Display) {
        self.root_attrs.push((key.to_string(), value.to_string()));
    }

    /// Elapsed time since the trace started.
    pub fn elapsed(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Closes the root span and retains the trace in the store if it
    /// was sampled or crossed the slow threshold. Returns the finished
    /// trace whenever it was retained.
    pub fn finish(self) -> Option<Arc<FinishedTrace>> {
        let elapsed = self.inner.epoch.elapsed();
        let slow_ns = self.tracer.slow_ns.load(Ordering::Relaxed);
        let slow = slow_ns > 0 && elapsed.as_nanos() as u64 >= slow_ns;
        if !self.inner.sampled && !slow {
            return None;
        }
        let mut spans = std::mem::take(&mut *self.inner.spans.lock());
        spans.push(SpanRecord {
            id: self.inner.root_span,
            parent: SpanId(0),
            name: self.name.clone(),
            start_unix_ns: self.inner.epoch_unix_ns,
            duration_ns: elapsed.as_nanos() as u64,
            attrs: self.root_attrs,
        });
        // Root first, children in completion order after it.
        spans.rotate_right(1);
        let finished = Arc::new(FinishedTrace {
            trace_id: self.inner.trace_id,
            root_span: self.inner.root_span,
            name: self.name,
            start_unix_ns: self.inner.epoch_unix_ns,
            duration_ns: elapsed.as_nanos() as u64,
            sampled: self.inner.sampled,
            slow,
            spans,
        });
        self.tracer.store.insert(Arc::clone(&finished));
        Some(finished)
    }
}

/// An immutable, completed trace as retained by the [`TraceStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// Id of the root span (always `spans[0]`).
    pub root_span: SpanId,
    /// Root operation name.
    pub name: String,
    /// Wall-clock start in Unix nanoseconds.
    pub start_unix_ns: u64,
    /// Total elapsed nanoseconds.
    pub duration_ns: u64,
    /// Whether the head sampler selected this trace (false: retained
    /// only because it was slow).
    pub sampled: bool,
    /// Whether the trace crossed the slow threshold.
    pub slow: bool,
    /// All spans, root first.
    pub spans: Vec<SpanRecord>,
}

impl FinishedTrace {
    /// Renders the span tree as a JSON object (flat span list with
    /// explicit parent links; consumers rebuild the tree from
    /// `parent_span_id`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Appends the JSON rendering to `out`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"trace_id\": \"{}\", \"name\": ",
            self.trace_id.to_hex()
        );
        json::write_escaped(out, &self.name);
        let _ = write!(
            out,
            ", \"start_unix_ns\": {}, \"duration_ns\": {}, \"sampled\": {}, \"slow\": {}, \"spans\": [",
            self.start_unix_ns, self.duration_ns, self.sampled, self.slow
        );
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"span_id\": \"{:016x}\", \"parent_span_id\": \"{:016x}\", \"name\": ",
                span.id.0, span.parent.0
            );
            json::write_escaped(out, &span.name);
            let _ = write!(
                out,
                ", \"start_unix_ns\": {}, \"duration_ns\": {}, \"attrs\": {{",
                span.start_unix_ns, span.duration_ns
            );
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_escaped(out, key);
                out.push_str(": ");
                json::write_escaped(out, value);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }

    /// One-line summary object (no spans) for trace listings.
    pub fn summary_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace_id\": \"{}\", \"name\": ",
            self.trace_id.to_hex()
        );
        json::write_escaped(&mut out, &self.name);
        let _ = write!(
            out,
            ", \"start_unix_ns\": {}, \"duration_ns\": {}, \"sampled\": {}, \"slow\": {}, \"span_count\": {}}}",
            self.start_unix_ns, self.duration_ns, self.sampled, self.slow,
            self.spans.len()
        );
        out
    }
}

/// Bounded ring buffer of finished traces, newest first on readout.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    ring: Mutex<VecDeque<Arc<FinishedTrace>>>,
}

impl TraceStore {
    /// A store retaining at most `capacity` traces.
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Inserts a trace, evicting the oldest when full.
    pub fn insert(&self, trace: Arc<FinishedTrace>) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// All retained traces, newest first.
    pub fn recent(&self) -> Vec<Arc<FinishedTrace>> {
        self.ring.lock().iter().rev().cloned().collect()
    }

    /// Looks up a trace by id (newest match wins).
    pub fn get(&self, id: TraceId) -> Option<Arc<FinishedTrace>> {
        self.ring
            .lock()
            .iter()
            .rev()
            .find(|t| t.trace_id == id)
            .cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Drops all retained traces.
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

/// Default 1-in-N head sampling rate.
pub const DEFAULT_SAMPLE_RATE: u64 = 64;
/// Default slow threshold (also gates the slow-query log).
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(500);
/// Default [`TraceStore`] capacity.
pub const DEFAULT_STORE_CAPACITY: usize = 256;

/// The tracing front door: owns the store, the sampling policy, and the
/// slow-query-log sink.
#[derive(Debug)]
pub struct Tracer {
    store: Arc<TraceStore>,
    /// 1-in-N rate; 0 disables rate sampling entirely.
    rate: AtomicU64,
    /// Slow threshold in nanoseconds; 0 disables slow retention/logging.
    slow_ns: AtomicU64,
    requests: AtomicU64,
    slow_log: Mutex<Option<std::fs::File>>,
}

impl Tracer {
    fn new() -> Tracer {
        Tracer {
            store: Arc::new(TraceStore::new(DEFAULT_STORE_CAPACITY)),
            rate: AtomicU64::new(DEFAULT_SAMPLE_RATE),
            slow_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD.as_nanos() as u64),
            requests: AtomicU64::new(0),
            slow_log: Mutex::new(None),
        }
    }

    /// The trace ring buffer (shared with admin surfaces).
    pub fn store(&self) -> &Arc<TraceStore> {
        &self.store
    }

    /// Sets the 1-in-N head sampling rate (`0` = never rate-sample,
    /// `1` = sample everything).
    pub fn set_sample_rate(&self, rate: u64) {
        self.rate.store(rate, Ordering::Relaxed);
    }

    /// The current 1-in-N sampling rate.
    pub fn sample_rate(&self) -> u64 {
        self.rate.load(Ordering::Relaxed)
    }

    /// Sets the slow threshold; `Duration::ZERO` disables slow
    /// retention and the slow-query log.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.slow_ns
            .store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The current slow threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_nanos(self.slow_ns.load(Ordering::Relaxed))
    }

    /// Redirects the slow-query log from stderr to a file (append
    /// mode). `None` reverts to stderr.
    pub fn set_slow_log_file(&self, file: Option<std::fs::File>) {
        *self.slow_log.lock() = file;
    }

    /// Whether `elapsed` crosses the slow threshold.
    pub fn is_slow(&self, elapsed: Duration) -> bool {
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        slow_ns > 0 && elapsed.as_nanos() as u64 >= slow_ns
    }

    /// Emits one structured line to the slow-query log (the configured
    /// file, else stderr). `line` should be a complete JSON object.
    pub fn slow_log_line(&self, line: &str) {
        use std::io::Write as _;
        let mut sink = self.slow_log.lock();
        match sink.as_mut() {
            Some(file) => {
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
            }
            None => eprintln!("{line}"),
        }
    }

    /// Starts a trace named `name`. The head sampling decision is made
    /// here: `force` (explain requests) or the 1-in-N rate sampler.
    pub fn start_trace(&'static self, name: &str, force: bool) -> ActiveTrace {
        let rate = self.rate.load(Ordering::Relaxed);
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        let sampled = force || (rate > 0 && n.is_multiple_of(rate));
        let epoch_unix_ns = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        ActiveTrace {
            inner: Arc::new(TraceInner {
                trace_id: TraceId(next_id()),
                root_span: SpanId(next_id()),
                sampled,
                epoch: Instant::now(),
                epoch_unix_ns,
                spans: Mutex::new(Vec::new()),
            }),
            name: name.to_string(),
            root_attrs: Vec::new(),
            tracer: self,
        }
    }
}

/// The process-wide tracer used by the seu crates' instrumentation.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isolated_tracer() -> &'static Tracer {
        // Leak a fresh tracer so tests don't race on the global one's
        // sampling counters.
        Box::leak(Box::new(Tracer::new()))
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn trace_id_hex_round_trips() {
        let id = TraceId(0x00ab_cdef_1234_5678);
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(TraceId::from_hex("nope"), None);
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("11112222333344445"), None);
    }

    #[test]
    fn forced_trace_records_span_tree() {
        let tracer = isolated_tracer();
        tracer.set_sample_rate(0);
        let mut trace = tracer.start_trace("search", true);
        trace.root_attr("query", "alpha beta");
        let handle = trace.handle();
        assert!(handle.is_sampled());
        let plan = handle.span("plan");
        let plan_id = plan.id();
        {
            let mut child = handle.child_span("analyze", plan_id);
            child.attr("terms", 2);
        }
        plan.finish();
        let finished = trace.finish().expect("forced traces are retained");
        assert!(finished.sampled);
        assert_eq!(finished.spans.len(), 3);
        assert_eq!(finished.spans[0].name, "search");
        assert_eq!(finished.spans[0].parent, SpanId(0));
        let analyze = finished.spans.iter().find(|s| s.name == "analyze").unwrap();
        assert_eq!(analyze.parent, plan_id);
        assert_eq!(analyze.attrs, vec![("terms".into(), "2".into())]);
        let root = finished.spans[0].id;
        let plan_span = finished.spans.iter().find(|s| s.name == "plan").unwrap();
        assert_eq!(plan_span.parent, root);
        assert_eq!(tracer.store().get(finished.trace_id).unwrap(), finished);
    }

    #[test]
    fn unsampled_fast_trace_is_dropped() {
        let tracer = isolated_tracer();
        tracer.set_sample_rate(0);
        let trace = tracer.start_trace("search", false);
        let handle = trace.handle();
        assert!(!handle.is_sampled());
        let span = handle.span("plan");
        assert!(!span.is_recording());
        drop(span);
        assert!(trace.finish().is_none());
        assert!(tracer.store().is_empty());
    }

    #[test]
    fn slow_trace_is_always_retained() {
        let tracer = isolated_tracer();
        tracer.set_sample_rate(0);
        tracer.set_slow_threshold(Duration::from_nanos(1));
        let trace = tracer.start_trace("search", false);
        trace.handle().adopt_spans([SpanRecord {
            id: SpanId(7),
            parent: trace.root_span(),
            name: "dispatch:e0".into(),
            start_unix_ns: 0,
            duration_ns: 42,
            attrs: vec![],
        }]);
        std::thread::sleep(Duration::from_millis(1));
        let finished = trace.finish().expect("slow traces are retained");
        assert!(finished.slow);
        assert!(!finished.sampled);
        assert_eq!(finished.spans.len(), 2);
        assert_eq!(finished.spans[1].name, "dispatch:e0");
    }

    #[test]
    fn rate_sampler_fires_one_in_n() {
        let tracer = isolated_tracer();
        tracer.set_sample_rate(4);
        tracer.set_slow_threshold(Duration::ZERO);
        let mut sampled = 0;
        for _ in 0..16 {
            let trace = tracer.start_trace("q", false);
            if trace.is_sampled() {
                sampled += 1;
            }
            trace.finish();
        }
        assert_eq!(sampled, 4);
        assert_eq!(tracer.store().len(), 4);
    }

    #[test]
    fn span_guard_records_on_panic_unwind() {
        let tracer = isolated_tracer();
        let trace = tracer.start_trace("search", true);
        let handle = trace.handle();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = handle.span("doomed");
            panic!("job exploded");
        }));
        assert!(result.is_err());
        let finished = trace.finish().unwrap();
        let doomed = finished.spans.iter().find(|s| s.name == "doomed").unwrap();
        assert!(doomed
            .attrs
            .iter()
            .any(|(k, v)| k == "panicked" && v == "true"));
    }

    #[test]
    fn store_ring_is_bounded() {
        let store = TraceStore::new(2);
        for i in 0..5u64 {
            store.insert(Arc::new(FinishedTrace {
                trace_id: TraceId(i + 1),
                root_span: SpanId(1),
                name: "t".into(),
                start_unix_ns: i,
                duration_ns: 1,
                sampled: true,
                slow: false,
                spans: vec![],
            }));
        }
        assert_eq!(store.len(), 2);
        let recent = store.recent();
        assert_eq!(recent[0].trace_id, TraceId(5));
        assert_eq!(recent[1].trace_id, TraceId(4));
        assert!(store.get(TraceId(1)).is_none());
        assert!(store.get(TraceId(5)).is_some());
    }

    #[test]
    fn trace_json_is_parseable_and_complete() {
        let trace = FinishedTrace {
            trace_id: TraceId(0xabcd),
            root_span: SpanId(1),
            name: "search".into(),
            start_unix_ns: 100,
            duration_ns: 5000,
            sampled: true,
            slow: false,
            spans: vec![
                SpanRecord {
                    id: SpanId(1),
                    parent: SpanId(0),
                    name: "search".into(),
                    start_unix_ns: 100,
                    duration_ns: 5000,
                    attrs: vec![("query".into(), "a \"quoted\" term".into())],
                },
                SpanRecord {
                    id: SpanId(2),
                    parent: SpanId(1),
                    name: "plan".into(),
                    start_unix_ns: 150,
                    duration_ns: 1000,
                    attrs: vec![],
                },
            ],
        };
        let doc = json::parse(&trace.to_json()).unwrap();
        assert_eq!(
            doc.get("trace_id").and_then(json::Json::as_str),
            Some("000000000000abcd")
        );
        let spans = doc.get("spans").and_then(json::Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[1].get("parent_span_id").and_then(json::Json::as_str),
            Some("0000000000000001")
        );
        assert_eq!(
            spans[0]
                .get("attrs")
                .and_then(|a| a.get("query"))
                .and_then(json::Json::as_str),
            Some("a \"quoted\" term")
        );
        let summary = json::parse(&trace.summary_json()).unwrap();
        assert_eq!(
            summary.get("span_count").and_then(json::Json::as_num),
            Some(2.0)
        );
    }

    #[test]
    fn context_carries_sampling_decision() {
        let tracer = isolated_tracer();
        let trace = tracer.start_trace("search", true);
        let handle = trace.handle();
        let span = handle.span("dispatch");
        let ctx = handle.context(span.id());
        assert!(ctx.sampled);
        assert_eq!(ctx.trace_id, trace.trace_id());
        assert_eq!(ctx.parent_span, span.id());
        assert_eq!(TraceContext::disabled().trace_id, TraceId(0));
    }
}
