//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! histograms with quantile readout, plus the RAII `SpanTimer`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions, stored as `f64` bits.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        self.bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            })
            .expect("fetch_update closure never returns None");
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds, in seconds: a 1-2.5-5 ladder
/// from 1µs to 10s. Suits both query latencies and dimensionless sizes
/// when callers pass their own bounds instead.
pub const DEFAULT_BUCKETS: [f64; 22] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
];

/// Fixed-bucket histogram. Observations are cumulative-bucketed on read,
/// not on write: each `observe` increments exactly one bucket counter, a
/// count, and a bit-CAS'd sum, so the hot path is a few relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds (inclusive) of the finite buckets, ascending.
    bounds: Vec<f64>,
    /// One slot per finite bucket plus a final overflow (+Inf) slot.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::with_buckets(&DEFAULT_BUCKETS)
    }

    /// `bounds` must be finite, positive, and strictly ascending.
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite and strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            })
            .expect("fetch_update closure never returns None");
        self.max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value > f64::from_bits(bits)).then(|| value.to_bits())
            })
            .ok();
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Bucket upper bounds (the final +Inf bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank. Returns `None` while
    /// empty. The overflow bucket interpolates toward the observed max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (idx, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if (next as f64) >= target {
                let lower = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max().max(lower)
                };
                let fraction = (target - cumulative as f64) / n as f64;
                return Some(lower + (upper - lower) * fraction);
            }
            cumulative = next;
        }
        Some(self.max())
    }

    /// Starts a timer that observes its elapsed seconds into `self` when
    /// dropped.
    pub fn start_timer(self: &Arc<Self>) -> SpanTimer {
        SpanTimer {
            histogram: Arc::clone(self),
            start: Instant::now(),
            recorded: false,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// RAII span guard: records wall-clock seconds into its histogram on
/// drop (or earlier via [`SpanTimer::stop`]).
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    start: Instant,
    recorded: bool,
}

impl SpanTimer {
    /// Records now and returns the elapsed seconds; the drop is then a
    /// no-op.
    pub fn stop(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.histogram.observe(elapsed);
        self.recorded = true;
        elapsed
    }

    /// Discards the span without recording it.
    pub fn cancel(mut self) {
        self.recorded = true;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.recorded {
            self.histogram.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn observations_land_in_correct_buckets() {
        let h = Histogram::with_buckets(&[1.0, 10.0, 100.0]);
        // Bucket bounds are inclusive: 1.0 goes to the first bucket.
        for v in [0.5, 1.0, 5.0, 100.0, 1e6] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 1_000_106.5).abs() < 1e-6);
        assert!((h.max() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(1.5);
        }
        // Median sits exactly at the edge of the first bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!((0.9..=1.0).contains(&p50), "{p50}");
        // p99 falls inside the (1, 2] bucket.
        let p99 = h.quantile(0.99).unwrap();
        assert!((1.9..=2.0).contains(&p99), "{p99}");
        assert!(h.quantile(0.0).unwrap() <= p50);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn overflow_bucket_uses_observed_max() {
        let h = Histogram::with_buckets(&[1.0]);
        h.observe(50.0);
        h.observe(90.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 90.0 && p99 > 1.0, "{p99}");
    }

    #[test]
    fn span_timer_records_on_drop_and_stop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        let elapsed = h.start_timer().stop();
        assert!(elapsed >= 0.0);
        assert_eq!(h.count(), 2);
        h.start_timer().cancel();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe((t * 1000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8000);
    }
}
