//! Fault injection against the TCP transport: refused connections,
//! mid-frame drops, stalled reads, and corrupted frames. Every failure
//! must surface as a *typed* per-engine error — never a panic, never a
//! poisoned broker.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{
    Broker, DispatchOutcome, RemoteTransport, SearchRequest, SelectionPolicy, TransportErrorKind,
};
use seu_net::frame::{read_frame, write_frame};
use seu_net::wire::Message;
use seu_net::{EngineServer, RemoteEngine, RemoteEngineConfig};
use seu_text::Analyzer;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("d{i}"), t);
    }
    SearchEngine::new(b.build())
}

/// No-retry client config so each fault maps to exactly one observed
/// error, with a tight deadline so tests stay fast.
fn strict() -> RemoteEngineConfig {
    RemoteEngineConfig {
        connect_timeout: Duration::from_millis(500),
        call_timeout: Duration::from_millis(300),
        retries: 0,
        backoff: Duration::from_millis(1),
    }
}

/// Binds an ephemeral port and runs `behavior` on the first accepted
/// connection.
fn fake_server(behavior: impl FnOnce(TcpStream) + Send + 'static) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            behavior(stream);
        }
    });
    addr
}

/// Answers the Hello handshake like a real engine server, then hands the
/// stream to `then` for the sabotage.
fn handshake_then(mut stream: TcpStream, then: impl FnOnce(TcpStream)) {
    let hello = read_frame(&mut stream).unwrap();
    assert!(matches!(
        Message::decode(hello.kind, &hello.payload),
        Ok(Message::Hello { .. })
    ));
    let (kind, payload) = Message::HelloAck {
        name: "saboteur".into(),
    }
    .encode();
    write_frame(&mut stream, kind, &payload).unwrap();
    then(stream);
}

#[test]
fn refused_connection_is_a_typed_refused_error() {
    // Bind then immediately drop: the port is known-dead.
    let addr = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Refused, "{err}");
}

#[test]
fn mid_frame_drop_is_connection_lost() {
    let addr = fake_server(|stream| {
        handshake_then(stream, |mut s| {
            let _ = read_frame(&mut s).unwrap();
            // A header promising 64 payload bytes, followed by 5 — then
            // the socket closes mid-frame.
            let mut partial = Vec::new();
            partial.extend_from_slice(&seu_net::frame::MAGIC.to_be_bytes());
            partial.push(seu_net::frame::PROTOCOL_VERSION);
            partial.push(4);
            partial.extend_from_slice(&64u32.to_be_bytes());
            partial.extend_from_slice(b"stub!");
            s.write_all(&partial).unwrap();
        });
    });
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::ConnectionLost, "{err}");
}

#[test]
fn stalled_read_hits_the_call_deadline() {
    let addr = fake_server(|stream| {
        handshake_then(stream, |s| {
            // Accept the request and answer nothing until well past the
            // client's deadline.
            std::thread::sleep(Duration::from_secs(5));
            drop(s);
        });
    });
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let start = Instant::now();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Timeout, "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "deadline must bound the stall, took {:?}",
        start.elapsed()
    );
}

#[test]
fn corrupted_frame_is_a_protocol_error() {
    let addr = fake_server(|mut stream| {
        let _ = read_frame(&mut stream).unwrap();
        stream.write_all(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
    });
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Protocol, "{err}");
}

#[test]
fn transient_failures_are_retried_and_hard_ones_are_not() {
    // A server that drops the first connection cold, then serves the
    // retry for real: the call must succeed on attempt two.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((first, _)) = listener.accept() {
            drop(first);
        }
        if let Ok((stream, _)) = listener.accept() {
            handshake_then(stream, |mut s| {
                let _ = read_frame(&mut s).unwrap();
                let (kind, payload) = Message::SearchResults { hits: vec![] }.encode();
                write_frame(&mut s, kind, &payload).unwrap();
            });
        }
    });
    let retries = seu_obs::counter("net_client_retries_total");
    let before = retries.get();
    let client = RemoteEngine::with_config(
        addr,
        RemoteEngineConfig {
            retries: 2,
            ..strict()
        },
    )
    .unwrap();
    assert_eq!(client.search("anything", 0.0, None).unwrap().0, vec![]);
    assert!(retries.get() > before, "the retry counter must move");
}

/// The broker-level contract: a remote engine dying after registration
/// turns into a per-engine `Failed` with a typed error; the local engine
/// still answers, the pool is not poisoned, and the next query works.
#[test]
fn dead_remote_engine_degrades_to_a_typed_per_engine_failure() {
    let server =
        EngineServer::bind("doomed", engine(&["mushroom soup recipes"]), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register("survivor", engine(&["mushroom soup and stock"]));
    broker
        .register_remote(Arc::new(RemoteEngine::with_config(addr, strict()).unwrap()))
        .unwrap();
    server.shutdown();

    for round in 0..2 {
        let response = broker.execute(
            &SearchRequest::new("mushroom soup")
                .threshold(0.05)
                .policy(SelectionPolicy::All),
        );
        assert!(
            response.hits.iter().all(|h| h.engine == "survivor"),
            "round {round}: {:?}",
            response.hits
        );
        assert!(!response.hits.is_empty(), "round {round}");
        let doomed = response
            .per_engine_stats
            .iter()
            .find(|s| s.engine == "doomed")
            .expect("doomed engine was dispatched");
        assert_eq!(doomed.outcome, DispatchOutcome::Failed, "round {round}");
        let error = doomed.error.as_ref().expect("typed error captured");
        assert_eq!(error.kind, TransportErrorKind::Refused, "{error}");
        let survivor = response
            .per_engine_stats
            .iter()
            .find(|s| s.engine == "survivor")
            .unwrap();
        assert_eq!(survivor.outcome, DispatchOutcome::Completed);
    }
}

/// A transport that stalls at snapshot-fetch time must fail registration
/// with a typed error and leave the broker registry untouched.
#[test]
fn failed_registration_leaves_the_broker_empty() {
    let addr = fake_server(|stream| {
        handshake_then(stream, |s| {
            std::thread::sleep(Duration::from_secs(5));
            drop(s);
        });
    });
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    let err = broker
        .register_remote(Arc::new(RemoteEngine::with_config(addr, strict()).unwrap()))
        .unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Timeout, "{err}");
    assert!(broker.engine_statuses().is_empty());
}
