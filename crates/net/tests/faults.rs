//! Fault injection against the TCP transport: refused connections,
//! mid-frame drops, stalled reads, and corrupted frames. Every failure
//! must surface as a *typed* per-engine error — never a panic, never a
//! poisoned broker.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{
    Broker, DispatchOutcome, RemoteTransport, SearchRequest, SelectionPolicy, TransportErrorKind,
};
use seu_net::frame::{read_frame, write_frame};
use seu_net::wire::Message;
use seu_net::{EngineServer, RemoteEngine, RemoteEngineConfig};
use seu_text::Analyzer;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("d{i}"), t);
    }
    SearchEngine::new(b.build())
}

/// No-retry client config so each fault maps to exactly one observed
/// error, with a tight deadline so tests stay fast.
fn strict() -> RemoteEngineConfig {
    RemoteEngineConfig {
        connect_timeout: Duration::from_millis(500),
        call_timeout: Duration::from_millis(300),
        retries: 0,
        backoff: Duration::from_millis(1),
    }
}

/// Binds an ephemeral port and runs `behavior` on the first accepted
/// connection.
fn fake_server(behavior: impl FnOnce(TcpStream) + Send + 'static) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            behavior(stream);
        }
    });
    addr
}

/// Answers the Hello handshake like a real engine server, then hands the
/// stream to `then` for the sabotage.
fn handshake_then(mut stream: TcpStream, then: impl FnOnce(TcpStream)) {
    let hello = read_frame(&mut stream).unwrap();
    assert!(matches!(
        Message::decode(hello.kind, &hello.payload),
        Ok(Message::Hello { .. })
    ));
    let (kind, payload) = Message::HelloAck {
        name: "saboteur".into(),
    }
    .encode();
    write_frame(&mut stream, kind, &payload).unwrap();
    then(stream);
}

#[test]
fn refused_connection_is_a_typed_refused_error() {
    // Bind then immediately drop: the port is known-dead.
    let addr = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Refused, "{err}");
}

#[test]
fn mid_frame_drop_is_connection_lost() {
    let addr = fake_server(|stream| {
        handshake_then(stream, |mut s| {
            let _ = read_frame(&mut s).unwrap();
            // A header promising 64 payload bytes, followed by 5 — then
            // the socket closes mid-frame.
            let mut partial = Vec::new();
            partial.extend_from_slice(&seu_net::frame::MAGIC.to_be_bytes());
            partial.push(seu_net::frame::PROTOCOL_VERSION);
            partial.push(4);
            partial.extend_from_slice(&64u32.to_be_bytes());
            partial.extend_from_slice(b"stub!");
            s.write_all(&partial).unwrap();
        });
    });
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::ConnectionLost, "{err}");
}

#[test]
fn stalled_read_hits_the_call_deadline() {
    let addr = fake_server(|stream| {
        handshake_then(stream, |s| {
            // Accept the request and answer nothing until well past the
            // client's deadline.
            std::thread::sleep(Duration::from_secs(5));
            drop(s);
        });
    });
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let start = Instant::now();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Timeout, "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "deadline must bound the stall, took {:?}",
        start.elapsed()
    );
}

#[test]
fn corrupted_frame_is_a_protocol_error() {
    let addr = fake_server(|mut stream| {
        let _ = read_frame(&mut stream).unwrap();
        stream.write_all(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
    });
    let client = RemoteEngine::with_config(addr, strict()).unwrap();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Protocol, "{err}");
}

#[test]
fn transient_failures_are_retried_and_hard_ones_are_not() {
    // A server that drops the first connection cold, then serves the
    // retry for real: the call must succeed on attempt two.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((first, _)) = listener.accept() {
            drop(first);
        }
        if let Ok((stream, _)) = listener.accept() {
            handshake_then(stream, |mut s| {
                let _ = read_frame(&mut s).unwrap();
                let (kind, payload) = Message::SearchResults { hits: vec![] }.encode();
                write_frame(&mut s, kind, &payload).unwrap();
            });
        }
    });
    let retries = seu_obs::counter("net_client_retries_total");
    let before = retries.get();
    let client = RemoteEngine::with_config(
        addr,
        RemoteEngineConfig {
            retries: 2,
            ..strict()
        },
    )
    .unwrap();
    assert_eq!(client.search("anything", 0.0, None).unwrap().0, vec![]);
    assert!(retries.get() > before, "the retry counter must move");
}

/// The broker-level contract: a remote engine dying after registration
/// turns into a per-engine `Failed` with a typed error; the local engine
/// still answers, the pool is not poisoned, and the next query works.
#[test]
fn dead_remote_engine_degrades_to_a_typed_per_engine_failure() {
    let server =
        EngineServer::bind("doomed", engine(&["mushroom soup recipes"]), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register("survivor", engine(&["mushroom soup and stock"]));
    broker
        .register_remote(Arc::new(RemoteEngine::with_config(addr, strict()).unwrap()))
        .unwrap();
    server.shutdown();

    for round in 0..2 {
        let response = broker.execute(
            &SearchRequest::new("mushroom soup")
                .threshold(0.05)
                .policy(SelectionPolicy::All),
        );
        assert!(
            response.hits.iter().all(|h| h.engine == "survivor"),
            "round {round}: {:?}",
            response.hits
        );
        assert!(!response.hits.is_empty(), "round {round}");
        let doomed = response
            .per_engine_stats
            .iter()
            .find(|s| s.engine == "doomed")
            .expect("doomed engine was dispatched");
        assert_eq!(doomed.outcome, DispatchOutcome::Failed, "round {round}");
        let error = doomed.error.as_ref().expect("typed error captured");
        assert_eq!(error.kind, TransportErrorKind::Refused, "{error}");
        let survivor = response
            .per_engine_stats
            .iter()
            .find(|s| s.engine == "survivor")
            .unwrap();
        assert_eq!(survivor.outcome, DispatchOutcome::Completed);
    }
}

/// An HTTP client declaring a body over the 32 MiB frame cap must get a
/// `413` without the server allocating (or reading) the body; a sane
/// request on a fresh connection still works afterwards.
#[test]
fn oversized_http_body_is_rejected_with_413_before_allocation() {
    use std::io::{BufRead, BufReader};

    let broker: Arc<Broker<SubrangeEstimator>> =
        Arc::new(Broker::new(SubrangeEstimator::paper_six_subrange()));
    broker.register("local", engine(&["mushroom soup recipes"]));
    let admin = seu_net::AdminServer::bind(broker, "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(admin.addr()).unwrap();
    // 33 MiB declared, zero bytes actually sent: a liar header must be
    // refused from the Content-Length alone.
    stream
        .write_all(
            b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 34603008\r\n\
              Content-Type: application/json\r\n\r\n",
        )
        .unwrap();
    let mut status = String::new();
    BufReader::new(&stream).read_line(&mut status).unwrap();
    assert!(
        status.starts_with("HTTP/1.1 413"),
        "expected 413, got {status:?}"
    );

    let mut stream = TcpStream::connect(admin.addr()).unwrap();
    let body = br#"{"query":"mushroom soup"}"#;
    stream
        .write_all(
            format!(
                "POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    stream.write_all(body).unwrap();
    let mut status = String::new();
    BufReader::new(&stream).read_line(&mut status).unwrap();
    assert!(
        status.starts_with("HTTP/1.1 200"),
        "expected 200 after the rejection, got {status:?}"
    );
}

/// Exponential backoff against a dead port must saturate at the
/// configured ceiling: six retries at base 50ms would sleep 3.15s
/// uncapped (50·(1+2+4+8+16+32)), but capped at 100ms the whole call
/// stays well under that.
#[test]
fn retry_backoff_saturates_at_the_ceiling() {
    let addr = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let client = RemoteEngine::with_config(
        addr,
        RemoteEngineConfig {
            retries: 6,
            backoff: Duration::from_millis(50),
            ..strict()
        },
    )
    .unwrap()
    .max_backoff(Duration::from_millis(100));
    let start = Instant::now();
    let err = client.search("anything", 0.0, None).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Refused, "{err}");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "capped backoff should sleep ~550ms total, took {elapsed:?}"
    );
}

/// A name resolving to several addresses must fall through dead ones:
/// connecting to [dead, live] lands on the live engine instead of
/// failing on the first candidate.
#[test]
fn connect_falls_through_dead_addresses_to_a_live_one() {
    let dead = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let server =
        EngineServer::bind("backup", engine(&["mushroom soup recipes"]), "127.0.0.1:0").unwrap();
    let candidates = [dead, server.addr()];
    let client = RemoteEngine::with_config(&candidates[..], strict()).unwrap();
    let (hits, _) = client.search("mushroom soup", 0.0, None).unwrap();
    assert!(!hits.is_empty(), "the live fallback address must answer");
}

/// Two requests pipelined on ONE connection, answered out of order: the
/// correlation ids must route each reply to its caller. The fake server
/// accepts a single connection, reads both requests before answering
/// either, and replies in reverse — so this deadlocks (and times out)
/// unless the client both multiplexes and reassembles by id.
#[test]
fn interleaved_replies_reassemble_by_correlation_id() {
    use seu_net::frame::write_frame_corr;

    let addr = fake_server(|mut stream| {
        let hello = read_frame(&mut stream).unwrap();
        assert!(matches!(
            Message::decode(hello.kind, &hello.payload),
            Ok(Message::Hello { .. })
        ));
        let (kind, payload) = Message::HelloAck {
            name: "reverser".into(),
        }
        .encode();
        // Echoing the nonzero hello corr negotiates multiplexing.
        write_frame_corr(&mut stream, hello.corr, kind, &payload).unwrap();
        let first = read_frame(&mut stream).unwrap();
        let second = read_frame(&mut stream).unwrap();
        for frame in [second, first] {
            let Ok(Message::Estimate { query, .. }) = Message::decode(frame.kind, &frame.payload)
            else {
                panic!("expected Estimate");
            };
            let (kind, payload) = Message::Usefulness {
                no_doc: query.len() as u64,
                avg_sim: 0.0,
                max_sim: 0.0,
            }
            .encode();
            write_frame_corr(&mut stream, frame.corr, kind, &payload).unwrap();
        }
        // Keep the socket open until the clients are done reading.
        std::thread::sleep(Duration::from_millis(500));
    });
    let client = RemoteEngine::with_config(
        addr,
        RemoteEngineConfig {
            call_timeout: Duration::from_secs(2),
            ..strict()
        },
    )
    .unwrap()
    .pool_connections(1);
    let a = client.clone();
    let t = std::thread::spawn(move || a.true_usefulness("ab", 0.0).unwrap());
    let u_b = client.true_usefulness("wxyz", 0.0).unwrap();
    let u_a = t.join().unwrap();
    assert_eq!(u_a.no_doc, 2, "caller A must get the reply for \"ab\"");
    assert_eq!(u_b.no_doc, 4, "caller B must get the reply for \"wxyz\"");
}

/// A transport that stalls at snapshot-fetch time must fail registration
/// with a typed error and leave the broker registry untouched.
#[test]
fn failed_registration_leaves_the_broker_empty() {
    let addr = fake_server(|stream| {
        handshake_then(stream, |s| {
            std::thread::sleep(Duration::from_secs(5));
            drop(s);
        });
    });
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    let err = broker
        .register_remote(Arc::new(RemoteEngine::with_config(addr, strict()).unwrap()))
        .unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Timeout, "{err}");
    assert!(broker.engine_statuses().is_empty());
}
