//! Lifecycle stress over the network stack with a *sharded* broker:
//! loopback engine servers push `InvalidateNotice` frames while sweeps
//! and strict-mode searches run concurrently on other threads.
//!
//! The contract under test: whatever interleaving the scheduler picks,
//! a `StaleMode::Error` execution either answers completely from a
//! fresh plan or fails with the typed `StalePlanError` — it never
//! silently serves results from a plan the registry has moved past,
//! and no shard's lifecycle traffic can wedge queries on another.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, SearchRequest, SelectionPolicy, StaleMode};
use seu_net::{register_and_subscribe, EngineServer, RemoteEngine};
use seu_text::Analyzer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("d{i}"), t);
    }
    SearchEngine::new(b.build())
}

/// Deterministic per-(server, round) collection variant so pushes keep
/// changing the fingerprint.
fn variant(server: usize, round: usize) -> SearchEngine {
    let texts = [
        format!("relational databases round {round} server {server}"),
        format!("query optimization pass {} of run {server}", round % 5),
        format!("distributed transaction log entry {}", round * 7 + server),
    ];
    engine(&[&texts[0], &texts[1], &texts[2]])
}

const LOCALS: &[(&str, &[&str])] = &[
    ("local-news", &["mushroom foraging in autumn forests"]),
    ("local-img", &["neural networks for image recognition"]),
    ("local-db", &["indexing structures for text retrieval"]),
];

#[test]
fn sharded_broker_survives_push_invalidation_storm() {
    let broker = Arc::new(
        Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(4)
            .worker_threads(4)
            .build(),
    );
    for (name, texts) in LOCALS {
        broker.register(name, engine(texts));
    }

    let servers: Vec<Arc<EngineServer>> = (0..3)
        .map(|i| {
            Arc::new(EngineServer::bind(format!("srv-{i}"), variant(i, 0), "127.0.0.1:0").unwrap())
        })
        .collect();
    let mut subscriptions = Vec::new();
    for server in &servers {
        let (name, sub) =
            register_and_subscribe(&broker, RemoteEngine::new(server.addr()).unwrap()).unwrap();
        assert_eq!(name, server.name());
        subscriptions.push(sub);
    }

    let pushes = seu_obs::counter("broker_push_invalidations_total");
    let pushes_before = pushes.get();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Mutators: each server replaces its collection repeatedly,
        // pushing an InvalidateNotice to the subscribed broker.
        for (i, server) in servers.iter().enumerate() {
            let server = Arc::clone(server);
            scope.spawn(move || {
                for round in 1..=40usize {
                    assert_eq!(server.replace_engine(variant(i, round)), 1);
                    if round % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            });
        }

        // Sweeper: staleness sweeps race the pushes; both paths refresh
        // and both bump shard epochs.
        {
            let broker = Arc::clone(&broker);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    broker.refresh_if_stale();
                    assert!(broker.refresh_representative("local-news"));
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        // Strict searchers: every outcome must be a complete answer or
        // the typed stale-plan error. An incomplete Ok, a panic, or a
        // wedged pool all fail the test.
        let mut searchers = Vec::new();
        for t in 0..2usize {
            let broker = Arc::clone(&broker);
            searchers.push(scope.spawn(move || {
                let mut stale_seen = 0usize;
                let mut last_epoch = 0u64;
                for k in 0..80usize {
                    let query =
                        ["relational databases", "neural networks", "mushroom soup"][(t + k) % 3];
                    let req = SearchRequest::new(query)
                        .threshold(0.0)
                        .policy(SelectionPolicy::All)
                        .stale_mode(StaleMode::Error);
                    let plan = broker.plan(&req, None);
                    // Every tenth round, advance the registry between
                    // plan and execute on purpose: the strict path MUST
                    // surface the typed error, deterministically.
                    let forced = k % 10 == 9;
                    if forced {
                        assert!(broker.refresh_representative("local-db"));
                    }
                    match broker.execute_plan(&req, &plan) {
                        Ok(resp) => {
                            assert!(!forced, "stale plan executed silently");
                            assert!(resp.is_complete(), "{:?}", resp.per_engine_stats)
                        }
                        Err(e) => {
                            assert!(
                                e.registry_epoch > e.plan_epoch,
                                "stale error without an epoch advance: {e}"
                            );
                            stale_seen += 1;
                        }
                    }
                    let epoch = broker.registry_epoch();
                    assert!(epoch >= last_epoch, "epoch regressed");
                    last_epoch = epoch;
                }
                stale_seen
            }));
        }

        let stale_total: usize = searchers.into_iter().map(|h| h.join().unwrap()).sum();
        // Eight forced races per searcher, plus however many the
        // scheduler produced on its own.
        assert!(stale_total >= 16, "only {stale_total} stale errors seen");
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesce: wait for in-flight pushes to land, then drain staleness.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        broker.refresh_if_stale();
        let snap = broker.registry_snapshot();
        if snap.statuses.iter().all(|s| !s.stale) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(pushes.get() > pushes_before, "no push ever arrived");

    let snap = broker.registry_snapshot();
    assert_eq!(snap.statuses.len(), LOCALS.len() + servers.len());
    assert!(
        snap.statuses.iter().all(|s| !s.stale),
        "{:?}",
        snap.statuses
    );
    assert_eq!(snap.epoch, snap.shard_epochs.iter().sum::<u64>());

    // The quiescent broker answers completely and matches a fresh local
    // broker over the servers' final collections.
    let req = SearchRequest::new("relational databases")
        .threshold(0.0)
        .policy(SelectionPolicy::All);
    let resp = broker.execute(&req);
    assert!(resp.is_complete(), "{:?}", resp.per_engine_stats);

    for sub in subscriptions {
        sub.close();
    }
    for server in &servers {
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.subscriber_count() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.subscriber_count(), 0, "{}", server.name());
    }
}
