//! Loopback integration: real engine servers on ephemeral ports, a
//! broker mixing local and remote engines, push invalidation, and the
//! HTTP admin server — all over 127.0.0.1.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, SearchRequest, SelectionPolicy};
use seu_net::{register_and_subscribe, AdminServer, EngineServer, RemoteEngine};
use seu_obs::json;
use seu_text::Analyzer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("d{i}"), t);
    }
    SearchEngine::new(b.build())
}

const DB0: &[&str] = &[
    "relational databases and query optimization",
    "transaction processing in distributed databases",
    "indexing structures for text retrieval",
];
const DB1: &[&str] = &[
    "neural networks for image recognition",
    "training deep networks with gradient descent",
    "databases of labelled images",
];
const DB2: &[&str] = &[
    "mushroom foraging in autumn forests",
    "soup recipes with wild mushrooms",
    "identifying poisonous mushrooms",
];

const QUERIES: &[&str] = &[
    "query optimization in databases",
    "deep neural networks",
    "wild mushroom soup",
    "distributed transaction processing",
    "unrelated zebra hovercraft",
];

fn broker() -> Broker<SubrangeEstimator> {
    Broker::new(SubrangeEstimator::paper_six_subrange())
}

/// The acceptance bar for the transport: a broker reaching two of its
/// three engines over TCP produces byte-identical estimates, selections,
/// and merged results to a broker holding all three in process.
#[test]
fn mixed_broker_is_byte_identical_to_all_local() {
    let local = broker();
    local.register("db0", engine(DB0));
    local.register("db1", engine(DB1));
    local.register("db2", engine(DB2));

    let s1 = EngineServer::bind("db1", engine(DB1), "127.0.0.1:0").unwrap();
    let s2 = EngineServer::bind("db2", engine(DB2), "127.0.0.1:0").unwrap();
    let mixed = broker();
    mixed.register("db0", engine(DB0));
    for server in [&s1, &s2] {
        let name = mixed
            .register_remote(Arc::new(RemoteEngine::new(server.addr()).unwrap()))
            .unwrap();
        assert_eq!(name, server.name());
    }

    for &query in QUERIES {
        for policy in [
            SelectionPolicy::All,
            SelectionPolicy::EstimatedUseful,
            SelectionPolicy::TopK(2),
        ] {
            let request = SearchRequest::new(query)
                .threshold(0.05)
                .policy(policy)
                .with_estimates(true);
            let want = local.execute(&request);
            let got = mixed.execute(&request);

            assert_eq!(want.estimates.len(), got.estimates.len(), "{query}");
            for (w, g) in want.estimates.iter().zip(&got.estimates) {
                assert_eq!(w.engine, g.engine);
                assert_eq!(
                    w.usefulness.no_doc.to_bits(),
                    g.usefulness.no_doc.to_bits(),
                    "NoDoc for {} on {query:?}",
                    w.engine
                );
                assert_eq!(
                    w.usefulness.avg_sim.to_bits(),
                    g.usefulness.avg_sim.to_bits(),
                    "AvgSim for {} on {query:?}",
                    w.engine
                );
            }
            assert_eq!(want.selected(), got.selected(), "{query} {policy:?}");
            assert_eq!(want.hits.len(), got.hits.len(), "{query} {policy:?}");
            for (w, g) in want.hits.iter().zip(&got.hits) {
                assert_eq!((&w.engine, &w.doc), (&g.engine, &g.doc), "{query}");
                assert_eq!(w.sim.to_bits(), g.sim.to_bits(), "{query} {}", w.doc);
            }
            assert!(got.is_complete(), "{query}: {:?}", got.per_engine_stats);
        }
    }
}

/// A collection change on the engine side must reach the broker as a
/// *pushed* invalidation — observable as a refreshed representative and
/// a `broker_push_invalidations_total` increment, with no staleness
/// sweep (`refresh_if_stale`) in sight.
#[test]
fn push_invalidation_refreshes_the_broker_without_a_sweep() {
    let server = EngineServer::bind("news", engine(DB0), "127.0.0.1:0").unwrap();
    let broker = Arc::new(broker());
    let pushes = seu_obs::counter("broker_push_invalidations_total");
    let refreshes = seu_obs::counter("broker_representative_refreshes_total");
    let (pushes_before, refreshes_before) = (pushes.get(), refreshes.get());

    let (name, subscription) =
        register_and_subscribe(&broker, RemoteEngine::new(server.addr()).unwrap()).unwrap();
    assert_eq!(name, "news");
    assert_eq!(server.subscriber_count(), 1);
    let epoch_before = broker.engine_statuses()[0].epoch;

    let notified = server.replace_engine(engine(DB2));
    assert_eq!(notified, 1);

    // The push arrives on the subscription's reader thread; give it a
    // bounded moment rather than sweeping.
    let deadline = Instant::now() + Duration::from_secs(5);
    while broker.engine_statuses()[0].epoch == epoch_before {
        assert!(
            Instant::now() < deadline,
            "push invalidation never reached the broker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let status = broker.engine_statuses().remove(0);
    assert!(!status.stale, "push refresh must leave the entry fresh");
    assert!(pushes.get() > pushes_before, "push counter must move");
    assert!(refreshes.get() > refreshes_before, "refetch is a refresh");

    // After the push, estimates match a local broker over the *new*
    // collection — the representative really was refetched.
    let reference = broker_with("news", engine(DB2));
    let request = SearchRequest::new("wild mushroom soup")
        .threshold(0.05)
        .policy(SelectionPolicy::All)
        .with_estimates(true);
    let want = reference.execute(&request);
    let got = broker.execute(&request);
    assert_eq!(want.estimates.len(), got.estimates.len());
    for (w, g) in want.estimates.iter().zip(&got.estimates) {
        assert_eq!(w.usefulness.no_doc.to_bits(), g.usefulness.no_doc.to_bits());
        assert_eq!(
            w.usefulness.avg_sim.to_bits(),
            g.usefulness.avg_sim.to_bits()
        );
    }

    subscription.close();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.subscriber_count() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.subscriber_count(), 0);
}

/// The query cache must never serve a response cached before a pushed
/// `InvalidateNotice`. The push refreshes the representative through
/// the subscription's reader thread, which bumps the registry epoch —
/// and the epoch lives in every cache key, so the warm entry simply
/// stops matching.
#[test]
fn cache_hit_is_never_served_across_a_pushed_invalidation() {
    use seu_metasearch::CacheTier;

    let server = EngineServer::bind("news", engine(DB0), "127.0.0.1:0").unwrap();
    let broker = Arc::new(broker());
    let (_, subscription) =
        register_and_subscribe(&broker, RemoteEngine::new(server.addr()).unwrap()).unwrap();

    let request = SearchRequest::new("query optimization in databases")
        .threshold(0.05)
        .policy(SelectionPolicy::All)
        .with_estimates(true);
    let warm = broker.execute(&request);
    assert!(!warm.hits.is_empty(), "old collection must answer");
    assert_eq!(
        broker.execute(&request).served_from,
        Some(CacheTier::Results),
        "repeat must be served from the results tier"
    );

    let epoch_before = broker.registry_epoch();
    assert_eq!(server.replace_engine(engine(DB2)), 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while broker.registry_epoch() == epoch_before {
        assert!(
            Instant::now() < deadline,
            "push invalidation never reached the broker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The entry cached at the old epoch is unreachable: the response is
    // cold and matches a local broker over the *new* collection bit for
    // bit (the old hits are gone).
    let after = broker.execute(&request);
    assert_eq!(
        after.served_from, None,
        "stale response served across a pushed invalidation"
    );
    let reference = broker_with("news", engine(DB2)).execute(&request);
    assert_eq!(after.hits.len(), reference.hits.len());
    for (w, g) in reference.hits.iter().zip(&after.hits) {
        assert_eq!((&w.engine, &w.doc), (&g.engine, &g.doc));
        assert_eq!(w.sim.to_bits(), g.sim.to_bits());
    }
    for (w, g) in reference.estimates.iter().zip(&after.estimates) {
        assert_eq!(w.usefulness.no_doc.to_bits(), g.usefulness.no_doc.to_bits());
    }

    // And the cache re-warms at the post-push epoch.
    assert_eq!(
        broker.execute(&request).served_from,
        Some(CacheTier::Results)
    );

    subscription.close();
}

fn broker_with(name: &str, e: SearchEngine) -> Broker<SubrangeEstimator> {
    let b = broker();
    b.register(name, e);
    b
}

/// Plain-text HTTP client good enough for testing our own server.
fn http(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn admin_server_serves_health_engines_search_and_metrics() {
    let remote = EngineServer::bind("db2", engine(DB2), "127.0.0.1:0").unwrap();
    let b = Arc::new(broker());
    b.register("db0", engine(DB0));
    b.register_remote(Arc::new(RemoteEngine::new(remote.addr()).unwrap()))
        .unwrap();
    let admin = AdminServer::bind(b.clone(), "127.0.0.1:0").unwrap();

    let (status, body) = http_get(admin.addr(), "/healthz");
    assert!(status.contains("200"), "{status}");
    let health = json::parse(&body).expect("healthz JSON parses");
    assert_eq!(
        health.get("status").and_then(json::Json::as_str),
        Some("ok")
    );
    assert_eq!(
        health.get("engines").and_then(json::Json::as_num),
        Some(2.0)
    );
    assert!(
        health.get("shards").and_then(json::Json::as_num).unwrap() >= 1.0,
        "{body}"
    );
    assert!(
        health
            .get("registry_epoch")
            .and_then(json::Json::as_num)
            .is_some(),
        "{body}"
    );

    let (status, body) = http_get(admin.addr(), "/engines");
    assert!(status.contains("200"), "{status}");
    let engines = json::parse(&body).expect("engines JSON parses");
    let rows = engines.as_arr().expect("array");
    assert_eq!(rows.len(), 2);
    let remote_row = rows
        .iter()
        .find(|r| r.get("name").and_then(json::Json::as_str) == Some("db2"))
        .expect("remote row");
    assert_eq!(remote_row.get("remote"), Some(&json::Json::Bool(true)));
    assert_eq!(
        remote_row.get("endpoint").and_then(json::Json::as_str),
        Some(remote.addr().to_string().as_str())
    );

    let (status, body) = http_post(
        admin.addr(),
        "/search",
        "{\"query\": \"wild mushroom soup\", \"threshold\": 0.05, \"all\": true}",
    );
    assert!(status.contains("200"), "{status}: {body}");
    let response = json::parse(&body).expect("search JSON parses");
    let hits = response.get("hits").and_then(json::Json::as_arr).unwrap();
    assert!(!hits.is_empty(), "{body}");
    assert!(hits
        .iter()
        .all(|h| h.get("engine").and_then(json::Json::as_str) == Some("db2")));
    let estimates = response
        .get("estimates")
        .and_then(json::Json::as_arr)
        .unwrap();
    assert_eq!(estimates.len(), 2);

    let (status, _) = http_get(admin.addr(), "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, body) = http_post(admin.addr(), "/search", "{\"threshold\": 1}");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("query"), "{body}");

    let (status, body) = http_get(admin.addr(), "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(
        body.contains("# TYPE broker_queries_total counter"),
        "{body}"
    );
    assert!(body.contains("net_http_requests_total"), "{body}");
}

/// `GET /metrics` must stay valid Prometheus exposition while searches
/// are executing — the scrape path shares no locks with dispatch.
#[test]
fn metrics_scrape_is_valid_while_searches_are_in_flight() {
    let remote = EngineServer::bind("db1", engine(DB1), "127.0.0.1:0").unwrap();
    let b = Arc::new(broker());
    b.register("db0", engine(DB0));
    b.register_remote(Arc::new(RemoteEngine::new(remote.addr()).unwrap()))
        .unwrap();
    let admin = AdminServer::bind(b.clone(), "127.0.0.1:0").unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let searcher = {
        let (b, stop) = (Arc::clone(&b), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut queries = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let request = SearchRequest::new("deep neural networks for databases")
                    .threshold(0.05)
                    .policy(SelectionPolicy::All);
                let response = b.execute(&request);
                assert!(response.is_complete());
                queries += 1;
            }
            queries
        })
    };

    for _ in 0..5 {
        let (status, body) = http_get(admin.addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        for line in body.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "unparseable exposition line: {line}"
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let queries = searcher.join().unwrap();
    assert!(queries > 0, "searches must actually have been in flight");
}
