//! Federation fault injection over real sockets: kill a replica
//! mid-run and watch the front-door degrade the way the design says it
//! must.
//!
//! The in-process conformance suite (`seu-metasearch
//! tests/federation_conformance.rs`) proves the bit-identity invariant;
//! this suite proves the *wire* half of the tentpole:
//!
//! - the engine-lifecycle orders (install / export / remove) round-trip
//!   through a [`ReplicaServer`], idempotently, with typed errors;
//! - killing a replica's process (its server and every live socket)
//!   makes the next federated query fail over to the ring successor
//!   and still answer **bit-identically** to a flat control broker,
//!   with the failure captured per replica as a typed
//!   [`TransportError`];
//! - per-replica circuit breakers open after `failure_threshold`
//!   consecutive failures and half-open after the cooldown — driven by
//!   a [`ManualClock`], so the test never sleeps;
//! - replica joins and leaves (rebalances shipping engines over TCP)
//!   keep the federated answer bit-identical throughout.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::federation::{
    BreakerState, EngineSource, FrontDoor, FrontDoorConfig, InstallSpec, ManualClock, ReplicaClient,
};
use seu_metasearch::{
    Broker, RemoteTransport, SearchRequest, SearchResponse, SelectionPolicy, TransportErrorKind,
};
use seu_net::{EngineServer, RemoteEngine, RemoteReplica, ReplicaServer};
use seu_text::Analyzer;
use std::sync::Arc;

const SEED: u64 = 0xFA11_0BE8;

/// xorshift64* — tiny, seedable, stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const WORDS: &[&str] = &[
    "database",
    "query",
    "index",
    "vector",
    "soup",
    "mushroom",
    "bread",
    "forest",
    "network",
    "gradient",
    "retrieval",
    "estimate",
    "shard",
    "broker",
    "epoch",
    "cosine",
    "socket",
    "frame",
];

fn engine_of(rng: &mut Rng) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for i in 0..2 + rng.below(4) {
        let len = 4 + rng.below(6);
        let text = (0..len)
            .map(|_| WORDS[rng.below(WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        b.add_document(&format!("d{i}"), &text);
    }
    SearchEngine::new(b.build())
}

fn queries(n: usize) -> Vec<String> {
    let mut rng = Rng::new(SEED ^ 0x9E37_79B9);
    (0..n)
        .map(|_| {
            let len = 1 + rng.below(3);
            (0..len)
                .map(|_| WORDS[rng.below(WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// `n` engines, each on its own [`EngineServer`] socket.
fn engine_fleet(n: usize) -> Vec<(String, EngineServer)> {
    let mut rng = Rng::new(SEED);
    (0..n)
        .map(|i| {
            let name = format!("engine-{i:03}");
            let server = EngineServer::bind(&name, engine_of(&mut rng), "127.0.0.1:0")
                .expect("bind engine server");
            (name, server)
        })
        .collect()
}

fn replica_broker() -> Arc<Broker<SubrangeEstimator>> {
    Arc::new(Broker::new(SubrangeEstimator::paper_six_subrange()))
}

/// A replica on a socket plus its front-door-side client.
fn replica(id: &str) -> (ReplicaServer, RemoteReplica) {
    let server = ReplicaServer::bind(id, replica_broker(), "127.0.0.1:0").expect("bind replica");
    let client = RemoteReplica::new(server.addr()).expect("dial replica");
    (server, client)
}

/// A flat control broker over the same engine servers, registered in
/// the same global order.
fn control_broker(fleet: &[(String, EngineServer)]) -> Broker<SubrangeEstimator> {
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    for (name, server) in fleet {
        let registered = broker
            .register_remote(Arc::new(RemoteEngine::new(server.addr()).expect("dial")))
            .expect("register control engine");
        assert_eq!(&registered, name);
    }
    broker
}

fn register_fleet(fd: &FrontDoor, fleet: &[(String, EngineServer)]) {
    for (name, server) in fleet {
        fd.register_engine(
            name,
            EngineSource::Remote {
                endpoint: server.addr().to_string(),
            },
        )
        .expect("register on front door");
    }
}

fn request(query: &str, policy: SelectionPolicy) -> SearchRequest {
    SearchRequest::new(query)
        .threshold(0.1)
        .policy(policy)
        .with_estimates(true)
}

const POLICIES: &[SelectionPolicy] = &[SelectionPolicy::All, SelectionPolicy::TopK(3)];

fn assert_responses_identical(control: &SearchResponse, fed: &SearchResponse, ctx: &str) {
    assert_eq!(
        control.estimates.len(),
        fed.estimates.len(),
        "{ctx}: estimate count"
    );
    for (c, f) in control.estimates.iter().zip(&fed.estimates) {
        assert_eq!(c.engine, f.engine, "{ctx}: estimate order");
        assert_eq!(
            c.usefulness.no_doc.to_bits(),
            f.usefulness.no_doc.to_bits(),
            "{ctx}: est_NoDoc for {}",
            c.engine
        );
        assert_eq!(
            c.usefulness.avg_sim.to_bits(),
            f.usefulness.avg_sim.to_bits(),
            "{ctx}: est_AvgSim for {}",
            c.engine
        );
    }
    assert_eq!(control.hits.len(), fed.hits.len(), "{ctx}: hit count");
    for (c, f) in control.hits.iter().zip(&fed.hits) {
        assert_eq!((&c.engine, &c.doc), (&f.engine, &f.doc), "{ctx}: hit order");
        assert_eq!(
            c.sim.to_bits(),
            f.sim.to_bits(),
            "{ctx}: sim for {}/{}",
            c.engine,
            c.doc
        );
    }
}

/// Full conformance sweep: every query × policy, no degradation
/// allowed.
fn assert_clean_conformance(control: &Broker<SubrangeEstimator>, fd: &FrontDoor, label: &str) {
    for query in queries(4) {
        for &policy in POLICIES {
            let req = request(&query, policy);
            let (fed, report) = fd.execute_with_report(&req);
            assert!(
                report.failures.is_empty() && report.unresolved.is_empty(),
                "{label}, query={query:?}: unexpected degradation: {report:?}"
            );
            assert_responses_identical(
                &control.execute(&req),
                &fed,
                &format!("{label}, query={query:?}, policy={policy:?}"),
            );
        }
    }
}

#[test]
fn engine_lifecycle_round_trips_over_the_wire() {
    let fleet = engine_fleet(1);
    let (name, server) = &fleet[0];
    let broker = replica_broker();
    let replica_server =
        ReplicaServer::bind("r0", broker.clone(), "127.0.0.1:0").expect("bind replica");
    let client = RemoteReplica::new(replica_server.addr()).expect("dial replica");

    client.ping().expect("ping");

    // Install by endpoint: the replica dials the engine itself.
    let spec = InstallSpec {
        name: name.clone(),
        source: Some(EngineSource::Remote {
            endpoint: server.addr().to_string(),
        }),
        snapshot: None,
    };
    client.install(&spec).expect("install");
    assert_eq!(broker.engine_names(), vec![name.clone()]);
    // Idempotent: a second identical install is a no-op, not an error.
    client.install(&spec).expect("re-install");
    assert_eq!(broker.engine_names().len(), 1);

    // The exported snapshot is the engine's own statistics, bit for
    // bit — what makes a post-rebalance replica answer identically.
    let exported = client.export_engine(name).expect("export");
    let direct = RemoteEngine::new(server.addr())
        .expect("dial engine")
        .fetch_snapshot()
        .expect("fetch snapshot");
    assert_eq!(
        exported.fingerprint, direct.fingerprint,
        "snapshot fingerprint drifted"
    );

    // Estimates served through the replica match a flat broker's over
    // the same engine server.
    let estimates = client
        .estimate_subset("database query soup", 0.1, std::slice::from_ref(name))
        .expect("estimate");
    let local = Broker::new(SubrangeEstimator::paper_six_subrange());
    local
        .register_remote(Arc::new(RemoteEngine::new(server.addr()).expect("dial")))
        .expect("register control engine");
    let control = local.execute(&request("database query soup", SelectionPolicy::All));
    assert_eq!(estimates.len(), 1);
    assert_eq!(
        estimates[0].usefulness.no_doc.to_bits(),
        control.estimates[0].usefulness.no_doc.to_bits(),
        "wire estimate drifted from local"
    );

    // A name/advertisement mismatch is refused and leaves nothing
    // behind.
    let err = client
        .install(&InstallSpec {
            name: "imposter".to_string(),
            source: Some(EngineSource::Remote {
                endpoint: server.addr().to_string(),
            }),
            snapshot: None,
        })
        .expect_err("mismatched install must fail");
    assert_eq!(err.kind, TransportErrorKind::Remote, "{err}");
    assert_eq!(
        broker.engine_names(),
        vec![name.clone()],
        "imposter left residue"
    );

    // Removal round-trips and is idempotent in the Ok(false) sense.
    assert!(client.remove_engine(name).expect("remove"));
    assert!(!client.remove_engine(name).expect("re-remove"));
    let err = client
        .export_engine(name)
        .expect_err("export after removal");
    assert_eq!(err.kind, TransportErrorKind::Remote, "{err}");
}

#[test]
fn killed_replica_fails_over_to_the_ring_successor() {
    let fleet = engine_fleet(8);
    let control = control_broker(&fleet);
    let fd = FrontDoor::new(FrontDoorConfig::default());
    let (server0, client0) = replica("replica-0");
    let (server1, client1) = replica("replica-1");
    fd.add_replica("replica-0", Arc::new(client0));
    fd.add_replica("replica-1", Arc::new(client1));
    register_fleet(&fd, &fleet);

    // Both replicas must be primary for something, or the kill proves
    // nothing; with 8 names on a 192-vnode ring this holds.
    let placements = fd.placements();
    let primaries = |id: &str| placements.iter().filter(|(_, h)| h[0] == id).count();
    assert!(
        primaries("replica-0") > 0,
        "replica-0 owns nothing: {placements:?}"
    );
    assert!(
        primaries("replica-1") > 0,
        "replica-1 owns nothing: {placements:?}"
    );

    assert_clean_conformance(&control, &fd, "both replicas up");

    // Kill replica-1: listener closed, every live connection severed.
    server1.shutdown();

    for query in queries(4) {
        for &policy in POLICIES {
            let req = request(&query, policy);
            let ctx = format!("replica-1 dead, query={query:?}, policy={policy:?}");
            let (fed, report) = fd.execute_with_report(&req);
            // Failover serves every engine from the surviving holder —
            // the answer stays bit-identical, not just "close".
            assert_responses_identical(&control.execute(&req), &fed, &ctx);
            assert!(
                report.unresolved.is_empty(),
                "{ctx}: unresolved {:?}",
                report.unresolved
            );
            assert!(report.failovers >= 1, "{ctx}: no failover recorded");
            assert!(!report.failures.is_empty(), "{ctx}: failure not captured");
            for failure in &report.failures {
                assert_eq!(failure.replica, "replica-1", "{ctx}: wrong replica blamed");
                assert!(
                    matches!(
                        failure.error.kind,
                        TransportErrorKind::ConnectionLost
                            | TransportErrorKind::Refused
                            | TransportErrorKind::Timeout
                    ),
                    "{ctx}: untyped failure {:?}",
                    failure.error
                );
                assert!(
                    !failure.engines.is_empty(),
                    "{ctx}: failure names no engines"
                );
            }
        }
    }
    drop(server0);
}

#[test]
fn breaker_opens_after_failures_and_half_opens_on_cooldown() {
    let fleet = engine_fleet(6);
    let control = control_broker(&fleet);
    let clock = ManualClock::new();
    let config = FrontDoorConfig::default();
    let threshold = config.breaker.failure_threshold;
    let cooldown = config.breaker.cooldown_ms;
    let fd = FrontDoor::with_clock(config, clock.clone());
    let (server0, client0) = replica("replica-0");
    let (server1, client1) = replica("replica-1");
    fd.add_replica("replica-0", Arc::new(client0));
    fd.add_replica("replica-1", Arc::new(client1));
    register_fleet(&fd, &fleet);
    assert_clean_conformance(&control, &fd, "breaker warm-up");

    server1.shutdown();

    let state_of = |fd: &FrontDoor, id: &str| {
        fd.replica_states()
            .into_iter()
            .find(|(r, _)| r == id)
            .map(|(_, s)| s)
            .expect("replica listed")
    };

    // Dead-replica connects fail fast (connection refused), so queries
    // charge the breaker without any timeout sleeps. A single query can
    // record several failures against the dead replica (estimate and
    // search phases fail independently), so the breaker needs at most
    // `failure_threshold` queries — every one still answering
    // bit-identically off the standby.
    let req = request(&queries(1)[0], SelectionPolicy::All);
    let mut failing_queries = 0u32;
    while state_of(&fd, "replica-1") == BreakerState::Closed {
        assert!(
            failing_queries < threshold,
            "breaker still closed after {failing_queries} failing queries"
        );
        let (fed, report) = fd.execute_with_report(&req);
        failing_queries += 1;
        assert_responses_identical(
            &control.execute(&req),
            &fed,
            &format!("failing query {failing_queries}"),
        );
        assert!(report.failures.iter().all(|f| f.replica == "replica-1"));
        assert!(
            !report.failures.is_empty(),
            "dead replica produced no failures"
        );
    }
    assert_eq!(
        state_of(&fd, "replica-1"),
        BreakerState::Open,
        "breaker did not open"
    );
    assert_eq!(
        state_of(&fd, "replica-0"),
        BreakerState::Closed,
        "healthy breaker tripped"
    );

    // While open, the replica is skipped up front: the failure capture
    // says Refused/"breaker open", no socket is dialed, and the query
    // still answers bit-identically from the standby.
    let (fed, report) = fd.execute_with_report(&req);
    assert_responses_identical(&control.execute(&req), &fed, "breaker open");
    let refusal = report
        .failures
        .iter()
        .find(|f| f.replica == "replica-1")
        .expect("open breaker must be reported");
    assert_eq!(
        refusal.error.kind,
        TransportErrorKind::Refused,
        "{refusal:?}"
    );
    assert!(
        refusal.error.to_string().contains("breaker open"),
        "refusal detail lost: {}",
        refusal.error
    );

    // Cooldown elapses on the injected clock — no sleeping.
    clock.advance(cooldown + 1);
    assert_eq!(
        state_of(&fd, "replica-1"),
        BreakerState::HalfOpen,
        "no half-open trial"
    );

    // The half-open probe fails (the replica is still dead) and the
    // breaker snaps back open.
    let probes = fd.probe_once();
    let dead = probes
        .iter()
        .find(|(id, _)| id == "replica-1")
        .expect("probed");
    assert!(!dead.1, "probe of a dead replica reported healthy");
    assert_eq!(
        state_of(&fd, "replica-1"),
        BreakerState::Open,
        "failed probe left breaker ajar"
    );
    let live = probes
        .iter()
        .find(|(id, _)| id == "replica-0")
        .expect("probed");
    assert!(live.1, "probe of a live replica reported dead");
    drop(server0);
}

#[test]
fn rebalance_over_tcp_keeps_answers_bit_identical() {
    let fleet = engine_fleet(8);
    let control = control_broker(&fleet);
    let fd = FrontDoor::new(FrontDoorConfig::default());
    let (server0, client0) = replica("replica-0");
    let (server1, client1) = replica("replica-1");
    fd.add_replica("replica-0", Arc::new(client0));
    fd.add_replica("replica-1", Arc::new(client1));
    register_fleet(&fd, &fleet);
    assert_clean_conformance(&control, &fd, "2 replicas");

    // A third replica joins: the rebalance ships its share of engines
    // over the wire (snapshot + endpoint installs).
    let (server2, client2) = replica("replica-2");
    let report = fd
        .add_replica("replica-2", Arc::new(client2))
        .expect("join rebalances");
    assert!(
        report.moves.iter().any(|m| m.to == "replica-2"),
        "join moved nothing onto the new replica: {report:?}"
    );
    assert!(
        fd.placements()
            .iter()
            .any(|(_, h)| h.contains(&"replica-2".to_string())),
        "replica-2 holds nothing"
    );
    assert_clean_conformance(&control, &fd, "after join");

    // A graceful leave moves its engines back to the survivors.
    fd.remove_replica("replica-2").expect("leave rebalances");
    server2.shutdown();
    assert!(
        fd.placements()
            .iter()
            .all(|(_, h)| !h.contains(&"replica-2".to_string())),
        "departed replica still holds engines"
    );
    assert_clean_conformance(&control, &fd, "after leave");
    drop(server0);
    drop(server1);
}
