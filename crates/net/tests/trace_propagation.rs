//! End-to-end trace propagation over the wire: an explained search
//! against a broker mixing local and remote engines must produce one
//! connected span tree whose remote-engine spans were authored on the
//! server side and carry the same trace id — and a legacy peer that
//! predates the traced message kind must degrade to the plain protocol
//! without failing the query.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, EngineSnapshot, RemoteHit, SearchRequest, SelectionPolicy};
use seu_net::frame::{read_frame, write_frame};
use seu_net::wire::Message;
use seu_net::{EngineServer, RemoteEngine};
use seu_text::Analyzer;
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

fn engine(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("d{i}"), t);
    }
    SearchEngine::new(b.build())
}

const DB0: &[&str] = &[
    "relational databases and query optimization",
    "indexing structures for text retrieval",
];
const DB1: &[&str] = &[
    "neural networks for image recognition",
    "databases of labelled images",
];
const DB2: &[&str] = &[
    "mushroom foraging in autumn forests",
    "identifying poisonous mushrooms in databases",
];

fn broker() -> Broker<SubrangeEstimator> {
    Broker::new(SubrangeEstimator::paper_six_subrange())
}

/// The tentpole acceptance test: one explained request through a mixed
/// local/remote broker yields a single connected span tree, and every
/// server-authored remote span carries the request's trace id.
#[test]
fn explained_mixed_search_yields_one_connected_trace() {
    let s1 = EngineServer::bind("db1", engine(DB1), "127.0.0.1:0").unwrap();
    let s2 = EngineServer::bind("db2", engine(DB2), "127.0.0.1:0").unwrap();
    let b = broker();
    b.register("db0", engine(DB0));
    for server in [&s1, &s2] {
        b.register_remote(Arc::new(RemoteEngine::new(server.addr()).unwrap()))
            .unwrap();
    }

    let request = SearchRequest::new("databases")
        .threshold(0.01)
        .policy(SelectionPolicy::All)
        .explain(true);
    let response = b.execute(&request);
    assert!(response.is_complete(), "{:?}", response.per_engine_stats);

    let trace = response.trace.as_ref().expect("explain returns a trace");
    assert!(trace.sampled, "explain forces sampling");

    // One connected tree: every span's parent is another span in the
    // trace (or the root), reachable from the root.
    let ids: HashSet<u64> = trace
        .spans
        .iter()
        .map(|s| s.id.0)
        .chain(std::iter::once(trace.root_span.0))
        .collect();
    for span in &trace.spans {
        if span.id == trace.root_span {
            continue;
        }
        assert!(
            ids.contains(&span.parent.0),
            "orphan span {:?} (parent {:016x})",
            span.name,
            span.parent.0
        );
    }

    // The remote engines' spans were authored server-side and shipped
    // back: same trace id end-to-end, parented under their dispatch
    // spans.
    let remote_spans: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name == "remote_search")
        .collect();
    assert_eq!(remote_spans.len(), 2, "one span per remote engine");
    let mut engines_seen = HashSet::new();
    for span in &remote_spans {
        let attr = |k: &str| {
            span.attrs
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(
            attr("trace_id"),
            Some(trace.trace_id.to_hex().as_str()),
            "remote span must carry the caller's trace id"
        );
        engines_seen.insert(attr("engine").unwrap_or_default().to_string());
        let parent = trace
            .spans
            .iter()
            .find(|s| s.id == span.parent)
            .expect("remote span parents into the caller's tree");
        assert!(
            parent.name.starts_with("dispatch:"),
            "remote span hangs under its dispatch span, not {:?}",
            parent.name
        );
    }
    assert_eq!(
        engines_seen,
        HashSet::from(["db1".to_string(), "db2".to_string()])
    );

    // The local engine's dispatch span exists too — same tree.
    assert!(
        trace.spans.iter().any(|s| s.name == "dispatch:db0"),
        "local dispatch span present"
    );

    // And the trace is retained in the store, addressable by id.
    let stored = seu_obs::tracer()
        .store()
        .get(trace.trace_id)
        .expect("explained trace retained in the store");
    assert_eq!(stored.trace_id, trace.trace_id);
}

/// A stub engine speaking the pre-trace protocol: answers Hello,
/// GetRepresentative, Ping, and plain SearchDocs, and replies with a
/// typed Error to any message kind it does not know — exactly what an
/// old `serve_requests` loop does with an undecodable frame.
fn legacy_engine_server(name: &'static str, texts: &'static [&'static str]) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let engine = engine(texts);
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let Ok(frame) = read_frame(&mut stream) else {
                continue;
            };
            if !matches!(
                Message::decode(frame.kind, &frame.payload),
                Ok(Message::Hello { .. })
            ) {
                continue;
            }
            let (kind, payload) = Message::HelloAck {
                name: name.to_string(),
            }
            .encode();
            if write_frame(&mut stream, kind, &payload).is_err() {
                continue;
            }
            while let Ok(frame) = read_frame(&mut stream) {
                // A legacy decoder knows nothing of kinds > 12.
                let reply = if frame.kind > 12 {
                    Message::Error {
                        detail: format!("undecodable request: unknown message kind {}", frame.kind),
                    }
                } else {
                    match Message::decode(frame.kind, &frame.payload) {
                        Ok(Message::SearchDocs { query, threshold }) => {
                            let c = engine.collection();
                            let q = c.query_from_text(&query);
                            let hits = engine
                                .search_threshold(&q, threshold)
                                .into_iter()
                                .map(|h| RemoteHit {
                                    doc: c.doc(h.doc).name.clone(),
                                    sim: h.sim,
                                })
                                .collect();
                            Message::SearchResults { hits }
                        }
                        Ok(Message::GetRepresentative) => Message::Representative {
                            snapshot: EngineSnapshot::of_engine(name, &engine),
                        },
                        Ok(Message::Ping) => Message::Pong,
                        _ => Message::Error {
                            detail: "unexpected request".to_string(),
                        },
                    }
                };
                let fatal = matches!(reply, Message::Error { .. });
                let (kind, payload) = reply.encode();
                if write_frame(&mut stream, kind, &payload).is_err() || fatal {
                    break;
                }
            }
        }
    });
    addr
}

/// Old peers must still interop: the first traced search against a
/// legacy engine falls back to the plain message (query still answered,
/// no remote spans), and the fallback is remembered so later sampled
/// searches skip the probe entirely.
#[test]
fn legacy_peer_falls_back_to_plain_search() {
    let addr = legacy_engine_server("oldies", DB2);
    let b = broker();
    b.register("db0", engine(DB0));
    let client = RemoteEngine::new(addr).unwrap();
    assert_eq!(b.register_remote(Arc::new(client)).unwrap(), "oldies");

    let fallbacks = seu_obs::counter("net_client_trace_fallbacks_total");
    let before = fallbacks.get();

    let request = SearchRequest::new("poisonous mushrooms in databases")
        .threshold(0.01)
        .policy(SelectionPolicy::All)
        .explain(true);
    let response = b.execute(&request);
    assert!(response.is_complete(), "{:?}", response.per_engine_stats);
    assert!(
        response.hits.iter().any(|h| h.engine == "oldies"),
        "legacy engine still answers: {:?}",
        response.hits
    );
    assert_eq!(fallbacks.get(), before + 1, "exactly one probe fallback");

    let trace = response.trace.as_ref().expect("trace still produced");
    assert!(
        trace.spans.iter().all(|s| s.name != "remote_search"),
        "no server-authored spans from a legacy peer"
    );
    assert!(
        trace.spans.iter().any(|s| s.name == "dispatch:oldies"),
        "the client-side dispatch span still covers the legacy engine"
    );

    // Second explained search: the fallback is memoized, no new probe.
    let response = b.execute(&request);
    assert!(response.is_complete());
    assert_eq!(fallbacks.get(), before + 1, "fallback probed at most once");
}
