//! A hashed timer wheel for the server's readiness event loop.
//!
//! The event loop needs two kinds of deadlines — per-connection idle
//! timeouts and per-request compute deadlines — without a sorted
//! structure or one OS timer per entry. A classic timer wheel gives
//! O(1) insert and cancel: time is quantized into ticks, each tick
//! hashes to one of `slots.len()` buckets, and [`TimerWheel::advance`]
//! only touches the buckets the cursor passes over. Entries whose
//! absolute deadline tick lies a full revolution (or more) ahead stay
//! in their bucket until the cursor has wrapped far enough — the
//! absolute tick comparison stands in for the usual "rounds remaining"
//! counter.
//!
//! The wheel is deliberately coarse: a deadline may fire up to one tick
//! late (and never early, because insertion rounds the deadline up).
//! For 25 ms ticks against multi-second timeouts that slack is noise.

use std::time::{Duration, Instant};

struct Entry<T> {
    id: u64,
    deadline_tick: u64,
    value: T,
}

/// Handle returned by [`TimerWheel::insert`]; lets the owner cancel the
/// timer in O(bucket) when the awaited event happens first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimerKey {
    id: u64,
    slot: usize,
}

pub(crate) struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    tick: Duration,
    origin: Instant,
    /// Next tick index [`advance`] will process.
    cursor: u64,
    next_id: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    pub fn new(tick: Duration, slots: usize) -> Self {
        assert!(tick > Duration::ZERO && slots > 0);
        let origin = Instant::now();
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            origin,
            cursor: 0,
            next_id: 0,
            len: 0,
        }
    }

    fn tick_index(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Arms a timer `after` from `now`. The deadline is rounded **up**
    /// to the next tick boundary so it can never fire early.
    pub fn insert(&mut self, now: Instant, after: Duration, value: T) -> TimerKey {
        let deadline_tick = self.tick_index(now + after) + 1;
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        let id = self.next_id;
        self.next_id += 1;
        self.slots[slot].push(Entry {
            id,
            deadline_tick,
            value,
        });
        self.len += 1;
        TimerKey { id, slot }
    }

    /// Disarms a timer, returning its value if it had not fired yet.
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        let bucket = &mut self.slots[key.slot];
        let at = bucket.iter().position(|e| e.id == key.id)?;
        self.len -= 1;
        Some(bucket.swap_remove(at).value)
    }

    /// Collects every timer whose deadline is at or before `now` into
    /// `expired`, sweeping only the buckets between the last call and
    /// `now` (capped at one full revolution — beyond that every bucket
    /// has been visited once already).
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<T>) {
        let target = self.tick_index(now);
        if target < self.cursor {
            return;
        }
        let nslots = self.slots.len() as u64;
        let steps = (target - self.cursor + 1).min(nslots);
        let mut tick = target + 1 - steps;
        while tick <= target {
            let bucket = &mut self.slots[(tick % nslots) as usize];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline_tick <= target {
                    expired.push(bucket.swap_remove(i).value);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
            tick += 1;
        }
        self.cursor = target + 1;
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let mut wheel: TimerWheel<&str> = TimerWheel::new(ms(10), 8);
        let t0 = Instant::now();
        wheel.insert(t0, ms(35), "a");
        let mut out = Vec::new();
        wheel.advance(t0 + ms(30), &mut out);
        assert!(out.is_empty(), "fired {out:?} before the deadline");
        wheel.advance(t0 + ms(60), &mut out);
        assert_eq!(out, ["a"]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(ms(10), 8);
        let t0 = Instant::now();
        let keep = wheel.insert(t0, ms(20), 1);
        let drop = wheel.insert(t0, ms(20), 2);
        assert_eq!(wheel.cancel(drop), Some(2));
        assert_eq!(wheel.cancel(drop), None, "double cancel");
        let mut out = Vec::new();
        wheel.advance(t0 + ms(200), &mut out);
        assert_eq!(out, [1]);
        assert_eq!(wheel.cancel(keep), None, "already fired");
    }

    #[test]
    fn deadlines_beyond_one_revolution_wait_for_the_wrap() {
        // 8 slots x 10ms = 80ms per revolution; a 250ms timer hashes to
        // a bucket the cursor passes three times before it matures.
        let mut wheel: TimerWheel<&str> = TimerWheel::new(ms(10), 8);
        let t0 = Instant::now();
        wheel.insert(t0, ms(250), "slow");
        let mut out = Vec::new();
        for step in 1..=24 {
            wheel.advance(t0 + ms(step * 10), &mut out);
            assert!(out.is_empty(), "fired after only {}ms", step * 10);
        }
        wheel.advance(t0 + ms(270), &mut out);
        assert_eq!(out, ["slow"]);
    }

    #[test]
    fn large_gap_sweeps_every_bucket_once() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(ms(1), 4);
        let t0 = Instant::now();
        for i in 0..32 {
            wheel.insert(t0, ms(i), i as u32);
        }
        // One advance far past every deadline must drain all 32 even
        // though the cursor skipped thousands of ticks.
        let mut out = Vec::new();
        wheel.advance(t0 + ms(10_000), &mut out);
        out.sort_unstable();
        assert_eq!(out, (0..32).collect::<Vec<u32>>());
        assert_eq!(wheel.len(), 0);
    }
}
