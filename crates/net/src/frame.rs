//! The length-prefixed frame layer under every message.
//!
//! Every frame is `magic:u32 version:u8 kind:u8 corr:u64 len:u32
//! payload:[u8; len]` (big-endian). `corr` is the **correlation id**:
//! the client stamps each request with a fresh nonzero id and the server
//! echoes it on the reply, so one connection can carry many in-flight
//! requests and the replies reassemble in any order. Frames that are not
//! part of a request/response pair (pushed invalidation notices,
//! legacy-style sequential exchanges) carry `corr = 0`.
//!
//! The reader is **byte-capped**: a peer announcing a payload larger
//! than [`MAX_FRAME_BYTES`] is a protocol violation and the frame is
//! rejected before a single payload byte is allocated — the same
//! untrusted-length hardening as `FrozenSummary::from_bytes` applies
//! inside representative payloads.
//!
//! Errors are typed at this layer already: truncated reads are
//! [`TransportErrorKind::ConnectionLost`], socket deadline misses are
//! [`TransportErrorKind::Timeout`], and anything that violates the
//! framing (bad magic, unsupported version, oversized length) is
//! [`TransportErrorKind::Protocol`].
//!
//! Two read paths exist: the blocking [`read_frame`] for dedicated
//! reader threads, and the incremental [`parse_frame`] the server's
//! readiness event loop uses against its per-connection read buffer
//! (nonblocking sockets never get to block in `read_exact`).

use crate::metrics::metrics;
use seu_metasearch::{TransportError, TransportErrorKind};
use std::io::{Read, Write};

/// Frame magic — "SEUN".
pub const MAGIC: u32 = 0x5345_554E;

/// Protocol version carried in every frame header. Version 2 added the
/// 8-byte correlation id to the header. A peer speaking a different
/// version is rejected with a typed protocol error rather than
/// misparsed.
pub const PROTOCOL_VERSION: u8 = 2;

/// Largest payload a reader accepts (32 MiB) — comfortably above any
/// real snapshot, far below an allocation-of-death.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Frame header size on the wire: magic, version, kind, correlation id,
/// payload length.
pub const HEADER_BYTES: usize = 4 + 1 + 1 + 8 + 4;

/// One decoded frame: the correlation id, the message kind byte, and
/// its raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlation id (0 for pushed / unpipelined frames).
    pub corr: u64,
    /// Message discriminant (see [`crate::wire::Message`]).
    pub kind: u8,
    /// Raw message payload.
    pub payload: Vec<u8>,
}

/// Maps a socket-level I/O error to the transport error it evidences.
pub(crate) fn io_error(err: &std::io::Error, context: &str) -> TransportError {
    use std::io::ErrorKind;
    let kind = match err.kind() {
        ErrorKind::ConnectionRefused | ErrorKind::AddrNotAvailable => TransportErrorKind::Refused,
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportErrorKind::Timeout,
        _ => TransportErrorKind::ConnectionLost,
    };
    TransportError::new(kind, format!("{context}: {err}"))
}

fn header_bytes(corr: u64, kind: u8, payload_len: usize) -> [u8; HEADER_BYTES] {
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&MAGIC.to_be_bytes());
    header[4] = PROTOCOL_VERSION;
    header[5] = kind;
    header[6..14].copy_from_slice(&corr.to_be_bytes());
    header[14..].copy_from_slice(&(payload_len as u32).to_be_bytes());
    header
}

/// Appends one encoded frame to `out` (for the event loop's buffered
/// write path). Counts toward the `net_frames_sent` / `net_bytes_sent`
/// instruments exactly like [`write_frame_corr`].
pub fn encode_frame_into(out: &mut Vec<u8>, corr: u64, kind: u8, payload: &[u8]) {
    out.extend_from_slice(&header_bytes(corr, kind, payload.len()));
    out.extend_from_slice(payload);
    let m = metrics();
    m.frames_sent.inc();
    m.bytes_sent.add((HEADER_BYTES + payload.len()) as u64);
}

/// Writes one frame (header + payload) with `corr = 0` and flushes.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), TransportError> {
    write_frame_corr(w, 0, kind, payload)
}

/// Writes one frame carrying an explicit correlation id, and flushes.
pub fn write_frame_corr(
    w: &mut impl Write,
    corr: u64,
    kind: u8,
    payload: &[u8],
) -> Result<(), TransportError> {
    let header = header_bytes(corr, kind, payload.len());
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| io_error(&e, "writing frame"))?;
    let m = metrics();
    m.frames_sent.inc();
    m.bytes_sent.add((HEADER_BYTES + payload.len()) as u64);
    Ok(())
}

/// Validates a complete header slice, returning `(corr, kind, len)`.
fn parse_header(header: &[u8], cap: usize) -> Result<(u64, u8, usize), TransportError> {
    let magic = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("bad frame magic {magic:#010x}"),
        ));
    }
    let version = header[4];
    if version != PROTOCOL_VERSION {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("unsupported protocol version {version} (this side speaks {PROTOCOL_VERSION})"),
        ));
    }
    let kind = header[5];
    let corr = u64::from_be_bytes(header[6..14].try_into().expect("8 bytes"));
    let len = u32::from_be_bytes(header[14..HEADER_BYTES].try_into().expect("4 bytes")) as usize;
    if len > cap {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("frame of {len} bytes exceeds the {cap}-byte cap"),
        ));
    }
    Ok((corr, kind, len))
}

/// Incremental (nonblocking) frame parser: returns `Ok(None)` when `buf`
/// does not yet hold a complete frame, `Ok(Some((frame, consumed)))`
/// when it does, and a typed protocol error on invalid framing. The
/// length cap is checked as soon as the header is complete, before any
/// payload accumulates.
pub fn parse_frame(buf: &[u8], cap: usize) -> Result<Option<(Frame, usize)>, TransportError> {
    if buf.len() < HEADER_BYTES {
        return Ok(None);
    }
    let (corr, kind, len) = parse_header(&buf[..HEADER_BYTES], cap)?;
    if buf.len() < HEADER_BYTES + len {
        return Ok(None);
    }
    let payload = buf[HEADER_BYTES..HEADER_BYTES + len].to_vec();
    let m = metrics();
    m.frames_received.inc();
    m.bytes_received.add((HEADER_BYTES + len) as u64);
    Ok(Some((
        Frame {
            corr,
            kind,
            payload,
        },
        HEADER_BYTES + len,
    )))
}

/// Reads one frame, rejecting bad magic, version mismatches, and
/// payloads over `cap` bytes before allocating for them.
pub fn read_frame_capped(r: &mut impl Read, cap: usize) -> Result<Frame, TransportError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)
        .map_err(|e| io_error(&e, "reading frame header"))?;
    let (corr, kind, len) = parse_header(&header, cap)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io_error(&e, "reading frame payload"))?;
    let m = metrics();
    m.frames_received.inc();
    m.bytes_received.add((HEADER_BYTES + len) as u64);
    Ok(Frame {
        corr,
        kind,
        payload,
    })
}

/// [`read_frame_capped`] at the default [`MAX_FRAME_BYTES`] cap.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, TransportError> {
    read_frame_capped(r, MAX_FRAME_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"payload").unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.kind, 7);
        assert_eq!(frame.corr, 0);
        assert_eq!(frame.payload, b"payload");
    }

    #[test]
    fn correlation_id_round_trips() {
        let mut wire = Vec::new();
        write_frame_corr(&mut wire, 0xfeed_beef_1234, 9, b"x").unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.corr, 0xfeed_beef_1234);
        assert_eq!(frame.kind, 9);
    }

    #[test]
    fn bad_magic_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"x").unwrap();
        wire[0] ^= 0xff;
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }

    #[test]
    fn version_mismatch_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"x").unwrap();
        wire[4] = PROTOCOL_VERSION + 1;
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        assert!(err.detail.contains("version"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        // Header announcing a 3 GiB payload with nothing behind it: the
        // cap must reject it without trying to read (or allocate) it.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_be_bytes());
        wire.push(PROTOCOL_VERSION);
        wire.push(1);
        wire.extend_from_slice(&0u64.to_be_bytes());
        wire.extend_from_slice(&(3u32 << 30).to_be_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        assert!(err.detail.contains("cap"), "{err}");
        // The incremental parser applies the cap at the same point.
        let err = parse_frame(&wire, MAX_FRAME_BYTES).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }

    #[test]
    fn truncation_is_connection_lost() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"hello world").unwrap();
        // Mid-payload cut.
        let err = read_frame(&mut &wire[..wire.len() - 4]).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectionLost);
        // Mid-header cut.
        let err = read_frame(&mut &wire[..3]).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectionLost);
    }

    #[test]
    fn incremental_parse_waits_for_complete_frames() {
        let mut wire = Vec::new();
        write_frame_corr(&mut wire, 3, 5, b"abcdef").unwrap();
        write_frame_corr(&mut wire, 4, 6, b"").unwrap();
        // No prefix short of the first full frame parses.
        for cut in 0..HEADER_BYTES + 6 {
            assert_eq!(parse_frame(&wire[..cut], MAX_FRAME_BYTES).unwrap(), None);
        }
        let (first, used) = parse_frame(&wire, MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(
            (first.corr, first.kind, first.payload.as_slice()),
            (3, 5, &b"abcdef"[..])
        );
        let (second, used2) = parse_frame(&wire[used..], MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!((second.corr, second.kind), (4, 6));
        assert_eq!(used + used2, wire.len());
    }
}
