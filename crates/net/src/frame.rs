//! The length-prefixed frame layer under every message.
//!
//! Every frame is `magic:u32 version:u8 kind:u8 len:u32 payload:[u8; len]`
//! (big-endian). The reader is **byte-capped**: a peer announcing a
//! payload larger than [`MAX_FRAME_BYTES`] is a protocol violation and
//! the frame is rejected before a single payload byte is allocated —
//! the same untrusted-length hardening as
//! `FrozenSummary::from_bytes` applies inside representative payloads.
//!
//! Errors are typed at this layer already: truncated reads are
//! [`TransportErrorKind::ConnectionLost`], socket deadline misses are
//! [`TransportErrorKind::Timeout`], and anything that violates the
//! framing (bad magic, unsupported version, oversized length) is
//! [`TransportErrorKind::Protocol`].

use crate::metrics::metrics;
use seu_metasearch::{TransportError, TransportErrorKind};
use std::io::{Read, Write};

/// Frame magic — "SEUN".
pub const MAGIC: u32 = 0x5345_554E;

/// Protocol version carried in every frame header. A peer speaking a
/// different version is rejected with a typed protocol error rather
/// than misparsed.
pub const PROTOCOL_VERSION: u8 = 1;

/// Largest payload a reader accepts (32 MiB) — comfortably above any
/// real snapshot, far below an allocation-of-death.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Frame header size on the wire.
const HEADER_BYTES: usize = 4 + 1 + 1 + 4;

/// One decoded frame: the message kind byte and its raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant (see [`crate::wire::Message`]).
    pub kind: u8,
    /// Raw message payload.
    pub payload: Vec<u8>,
}

/// Maps a socket-level I/O error to the transport error it evidences.
pub(crate) fn io_error(err: &std::io::Error, context: &str) -> TransportError {
    use std::io::ErrorKind;
    let kind = match err.kind() {
        ErrorKind::ConnectionRefused | ErrorKind::AddrNotAvailable => TransportErrorKind::Refused,
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportErrorKind::Timeout,
        _ => TransportErrorKind::ConnectionLost,
    };
    TransportError::new(kind, format!("{context}: {err}"))
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), TransportError> {
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&MAGIC.to_be_bytes());
    header[4] = PROTOCOL_VERSION;
    header[5] = kind;
    header[6..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| io_error(&e, "writing frame"))?;
    let m = metrics();
    m.frames_sent.inc();
    m.bytes_sent.add((HEADER_BYTES + payload.len()) as u64);
    Ok(())
}

/// Reads one frame, rejecting bad magic, version mismatches, and
/// payloads over `cap` bytes before allocating for them.
pub fn read_frame_capped(r: &mut impl Read, cap: usize) -> Result<Frame, TransportError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)
        .map_err(|e| io_error(&e, "reading frame header"))?;
    let magic = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("bad frame magic {magic:#010x}"),
        ));
    }
    let version = header[4];
    if version != PROTOCOL_VERSION {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("unsupported protocol version {version} (this side speaks {PROTOCOL_VERSION})"),
        ));
    }
    let kind = header[5];
    let len = u32::from_be_bytes(header[6..].try_into().expect("4 bytes")) as usize;
    if len > cap {
        return Err(TransportError::new(
            TransportErrorKind::Protocol,
            format!("frame of {len} bytes exceeds the {cap}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io_error(&e, "reading frame payload"))?;
    let m = metrics();
    m.frames_received.inc();
    m.bytes_received.add((HEADER_BYTES + len) as u64);
    Ok(Frame { kind, payload })
}

/// [`read_frame_capped`] at the default [`MAX_FRAME_BYTES`] cap.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, TransportError> {
    read_frame_capped(r, MAX_FRAME_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"payload").unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.kind, 7);
        assert_eq!(frame.payload, b"payload");
    }

    #[test]
    fn bad_magic_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"x").unwrap();
        wire[0] ^= 0xff;
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }

    #[test]
    fn version_mismatch_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"x").unwrap();
        wire[4] = PROTOCOL_VERSION + 1;
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        assert!(err.detail.contains("version"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        // Header announcing a 3 GiB payload with nothing behind it: the
        // cap must reject it without trying to read (or allocate) it.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_be_bytes());
        wire.push(PROTOCOL_VERSION);
        wire.push(1);
        wire.extend_from_slice(&(3u32 << 30).to_be_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        assert!(err.detail.contains("cap"), "{err}");
    }

    #[test]
    fn truncation_is_connection_lost() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"hello world").unwrap();
        // Mid-payload cut.
        let err = read_frame(&mut &wire[..wire.len() - 4]).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectionLost);
        // Mid-header cut.
        let err = read_frame(&mut &wire[..3]).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::ConnectionLost);
    }
}
