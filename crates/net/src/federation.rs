//! Federation over the wire: the back-end [`ReplicaServer`] and the
//! front-door-side [`RemoteReplica`] client.
//!
//! `seu_metasearch::FrontDoor` speaks to its back-end broker replicas
//! through the [`ReplicaClient`] trait. In process that is
//! `LocalReplica`; this module makes the split literal with the same
//! frame protocol the engine transport uses — message kinds 17–25 of
//! [`crate::wire`]:
//!
//! * **[`ReplicaServer`]** puts one broker on a socket as a federation
//!   replica: it answers subset estimates and subset searches for the
//!   engines it holds, and the engine-lifecycle orders (install /
//!   remove / export) the front-door's rebalance path sends. Installs
//!   that ship an [`EngineSnapshot`] hydrate planning state without
//!   re-registration; installs that name an engine endpoint make the
//!   replica dial the engine itself (a [`RemoteEngine`] transport), so
//!   its estimates stay **bit-identical** to every other replica's —
//!   both paths plan from the same shipped full-precision statistics.
//!   Estimate and search compute runs under a counting **worker
//!   semaphore** ([`ReplicaServerConfig::workers`]), which models
//!   per-replica capacity: the federated benchmark pins it to 1 so a
//!   4-replica cluster has exactly 4× the compute of one replica.
//! * **[`RemoteReplica`]** implements [`ReplicaClient`] over a small
//!   pool of multiplex-handshaken TCP connections, so a front-door
//!   treats a process across the wire exactly like an in-process
//!   replica: same placement, same failover, same typed
//!   [`TransportError`] capture when the replica dies mid-dispatch.
//!
//! The module also wires [`FrontDoor`] into the HTTP admin server by
//! implementing [`BrokerAdmin`] for it, so `seu front-door` serves the
//! same `/healthz`, `/engines`, `/metrics`, and `/search` routes a
//! single broker does.

use crate::client::RemoteEngine;
use crate::frame::{io_error, read_frame, write_frame_corr};
use crate::http::BrokerAdmin;
use crate::metrics::metrics;
use crate::wire::Message;
use parking_lot::Mutex;
use seu_core::UsefulnessEstimator;
use seu_metasearch::federation::{InstallSpec, LocalReplica, ReplicaClient, SubsetResults};
use seu_metasearch::{
    Broker, CacheStats, EngineEstimate, EngineSnapshot, EngineStatus, FrontDoor, RegistrySnapshot,
    SearchRequest, SearchResponse, TransportError, TransportErrorKind,
};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A counting semaphore bounding concurrent compute on a replica
/// (std `Condvar`; the vendored `parking_lot` has no condvar).
struct Semaphore {
    permits: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: std::sync::Mutex::new(permits.max(1)),
            cv: std::sync::Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *permits == 0 {
            permits = self.cv.wait(permits).unwrap_or_else(|e| e.into_inner());
        }
        *permits -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.permits.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.0.cv.notify_one();
    }
}

/// Tuning for a [`ReplicaServer`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicaServerConfig {
    /// Concurrent estimate/search computations the replica runs; further
    /// requests queue on the worker semaphore. This is the replica's
    /// capacity model: the federated benchmark pins it to 1 per replica
    /// so cluster throughput scales with replica count, not with the
    /// host's cores.
    pub workers: usize,
}

impl Default for ReplicaServerConfig {
    fn default() -> Self {
        ReplicaServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// One broker on a socket as a federation replica (kinds 17–25);
/// serving stops when dropped.
pub struct ReplicaServer {
    id: String,
    addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ReplicaServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `broker` as the
    /// replica advertised as `id`, with default capacity.
    pub fn bind<E>(
        id: &str,
        broker: Arc<Broker<E>>,
        addr: impl ToSocketAddrs,
    ) -> Result<ReplicaServer, TransportError>
    where
        E: UsefulnessEstimator + Send + Sync + 'static,
    {
        ReplicaServer::bind_with(id, broker, addr, ReplicaServerConfig::default())
    }

    /// [`ReplicaServer::bind`] with explicit capacity.
    pub fn bind_with<E>(
        id: &str,
        broker: Arc<Broker<E>>,
        addr: impl ToSocketAddrs,
        config: ReplicaServerConfig,
    ) -> Result<ReplicaServer, TransportError>
    where
        E: UsefulnessEstimator + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(|e| io_error(&e, "binding replica"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_error(&e, "resolving bound address"))?;
        let replica = Arc::new(LocalReplica::new(broker));
        let workers = Arc::new(Semaphore::new(config.workers));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let id_owned = id.to_string();
        let flag = Arc::clone(&shutting_down);
        let conn_table = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name(format!("seu-net-replica-{id}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Replies are written header-then-payload; without
                    // nodelay, Nagle + delayed ACK turns every RPC into
                    // a ~40ms stall.
                    let _ = stream.set_nodelay(true);
                    metrics().server_connections.inc();
                    if let Ok(clone) = stream.try_clone() {
                        let mut table = conn_table.lock();
                        // Drop handles of connections that already died
                        // so a long-lived replica does not accrete fds.
                        table.retain(|s: &TcpStream| s.take_error().is_ok_and(|e| e.is_none()));
                        table.push(clone);
                    }
                    let replica = Arc::clone(&replica);
                    let workers = Arc::clone(&workers);
                    let id = id_owned.clone();
                    let _ = std::thread::Builder::new()
                        .name("seu-net-replica-conn".to_string())
                        .spawn(move || {
                            let _ = serve_conn(&replica, &id, stream, &workers);
                        });
                }
            })
            .map_err(|e| io_error(&e, "spawning replica accept thread"))?;
        Ok(ReplicaServer {
            id: id.to_string(),
            addr,
            shutting_down,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The advertised replica id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs every live connection (in-flight calls on
    /// them fail with [`TransportErrorKind::ConnectionLost`] on the
    /// caller's side), and joins the accept thread. This is the "kill a
    /// replica" primitive the fault-injection suite uses.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ReplicaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaServer")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .finish()
    }
}

/// One connection: Hello/HelloAck (echoing the correlation id — the
/// multiplex capability signal), then sequential request/reply frames.
fn serve_conn<E>(
    replica: &LocalReplica<E>,
    id: &str,
    mut stream: TcpStream,
    workers: &Semaphore,
) -> Result<(), TransportError>
where
    E: UsefulnessEstimator + Send + Sync + 'static,
{
    let hello = read_frame(&mut stream)?;
    match Message::decode(hello.kind, &hello.payload)? {
        Message::Hello { .. } => {}
        other => {
            let (kind, payload) = Message::Error {
                detail: format!("expected Hello, got {other:?}"),
            }
            .encode();
            write_frame_corr(&mut stream, hello.corr, kind, &payload)?;
            return Ok(());
        }
    }
    let (kind, payload) = Message::HelloAck {
        name: id.to_string(),
    }
    .encode();
    write_frame_corr(&mut stream, hello.corr, kind, &payload)?;
    loop {
        let frame = read_frame(&mut stream)?;
        metrics().server_requests.inc();
        let reply = match Message::decode(frame.kind, &frame.payload) {
            Ok(message) => serve_message(replica, message, workers),
            // Unknown kinds and malformed payloads are answered, not
            // fatal: the peer learns the typed detail and decides.
            Err(e) => Message::Error {
                detail: e.to_string(),
            },
        };
        let (kind, payload) = reply.encode();
        write_frame_corr(&mut stream, frame.corr, kind, &payload)?;
    }
}

fn serve_message<E>(replica: &LocalReplica<E>, message: Message, workers: &Semaphore) -> Message
where
    E: UsefulnessEstimator + Send + Sync + 'static,
{
    let or_error = |r: Result<Message, TransportError>| match r {
        Ok(m) => m,
        Err(e) => Message::Error {
            detail: e.to_string(),
        },
    };
    match message {
        Message::Ping => Message::Pong,
        Message::ReplicaEstimate {
            query,
            threshold,
            engines,
        } => {
            metrics().replica_requests.inc();
            let _permit = workers.acquire();
            or_error(
                replica
                    .estimate_subset(&query, threshold, &engines)
                    .map(|estimates| Message::ReplicaEstimates { estimates }),
            )
        }
        Message::ReplicaSearch {
            query,
            threshold,
            engines,
        } => {
            metrics().replica_requests.inc();
            let _permit = workers.acquire();
            or_error(replica.search_subset(&query, threshold, &engines).map(|r| {
                Message::ReplicaSearchResults {
                    hits: r.hits,
                    stats: r.stats,
                }
            }))
        }
        Message::InstallEngine {
            name,
            snapshot,
            endpoint,
        } => {
            metrics().replica_requests.inc();
            or_error(
                install_engine(replica, &name, snapshot, endpoint)
                    .map(|()| Message::InstallAck { name }),
            )
        }
        Message::RemoveEngine { name } => {
            metrics().replica_requests.inc();
            or_error(
                replica
                    .remove_engine(&name)
                    .map(|removed| Message::RemoveAck { removed }),
            )
        }
        Message::ExportEngine { name } => {
            metrics().replica_requests.inc();
            or_error(
                replica
                    .export_engine(&name)
                    .map(|snapshot| Message::Representative { snapshot }),
            )
        }
        other => Message::Error {
            detail: format!(
                "a replica does not serve message kind {:?}",
                kind_of(&other)
            ),
        },
    }
}

/// The message's kind byte (for compact error text without debug-printing
/// snapshot-sized payloads).
fn kind_of(message: &Message) -> u8 {
    message.encode().0
}

/// The replica-side install: idempotent on the name. A shipped snapshot
/// hydrates planning state directly (the rebalance path — no
/// re-registration round trip to the engine); when the engine also has
/// a live endpoint the replica dials it so searches dispatch. An
/// endpoint alone falls back to full remote registration (the replica
/// fetches the snapshot from the engine itself — same bytes, since the
/// engine serves its snapshot full-precision).
fn install_engine<E>(
    replica: &LocalReplica<E>,
    name: &str,
    snapshot: Option<EngineSnapshot>,
    endpoint: Option<String>,
) -> Result<(), TransportError>
where
    E: UsefulnessEstimator + Send + Sync + 'static,
{
    let broker = replica.broker();
    if broker.engine_names().iter().any(|n| n == name) {
        return Ok(());
    }
    match (snapshot, endpoint) {
        (Some(snapshot), endpoint) => {
            if snapshot.name != name {
                return Err(TransportError::new(
                    TransportErrorKind::Protocol,
                    format!(
                        "install for {name:?} shipped a snapshot of {:?}",
                        snapshot.name
                    ),
                ));
            }
            broker.install_snapshot(snapshot, None, endpoint.clone())?;
            if let Some(endpoint) = endpoint {
                let transport = RemoteEngine::new(endpoint.as_str())?;
                broker.attach_remote(Arc::new(transport))?;
            }
            Ok(())
        }
        (None, Some(endpoint)) => {
            let transport = RemoteEngine::new(endpoint.as_str())?;
            let registered = broker.register_remote(Arc::new(transport))?;
            if registered != name {
                broker.deregister(&registered);
                return Err(TransportError::new(
                    TransportErrorKind::Protocol,
                    format!("engine at {endpoint} advertises {registered:?}, not {name:?}"),
                ));
            }
            Ok(())
        }
        (None, None) => Err(TransportError::new(
            TransportErrorKind::Protocol,
            "install needs a snapshot or an endpoint",
        )),
    }
}

/// Timeouts and pooling for a [`RemoteReplica`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteReplicaConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-call deadline from sending the request to seeing its reply.
    pub call_timeout: Duration,
    /// Pooled connections (each carries one call at a time; the
    /// front-door's failover fan-out makes one call per replica per
    /// phase, so a small pool suffices).
    pub pool: usize,
}

impl Default for RemoteReplicaConfig {
    fn default() -> Self {
        RemoteReplicaConfig {
            connect_timeout: Duration::from_secs(1),
            call_timeout: Duration::from_secs(5),
            pool: 2,
        }
    }
}

struct ReplicaPool {
    addrs: Vec<SocketAddr>,
    endpoint: String,
    config: RemoteReplicaConfig,
    slots: Vec<Mutex<Option<TcpStream>>>,
    next_slot: AtomicUsize,
    next_corr: AtomicU64,
}

/// A [`ReplicaClient`] for a [`ReplicaServer`] across the wire. Clones
/// share the connection pool. Calls are synchronous request/reply;
/// failures surface as typed [`TransportError`]s (the front-door's
/// breaker and failover logic consumes them as-is).
#[derive(Clone)]
pub struct RemoteReplica {
    pool: Arc<ReplicaPool>,
}

impl RemoteReplica {
    /// Creates a client for the replica at `addr` with default timeouts.
    /// Resolution happens here; connections are dialed lazily.
    pub fn new(
        addr: impl ToSocketAddrs + std::fmt::Display,
    ) -> Result<RemoteReplica, TransportError> {
        RemoteReplica::with_config(addr, RemoteReplicaConfig::default())
    }

    /// Creates a client with explicit timeouts and pool size.
    pub fn with_config(
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: RemoteReplicaConfig,
    ) -> Result<RemoteReplica, TransportError> {
        let endpoint = addr.to_string();
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| io_error(&e, "resolving replica address"))?
            .collect();
        if addrs.is_empty() {
            return Err(TransportError::new(
                TransportErrorKind::Refused,
                "address resolved to nothing",
            ));
        }
        Ok(RemoteReplica {
            pool: Arc::new(ReplicaPool {
                addrs,
                endpoint,
                config,
                slots: (0..config.pool.max(1)).map(|_| Mutex::new(None)).collect(),
                next_slot: AtomicUsize::new(0),
                next_corr: AtomicU64::new(1),
            }),
        })
    }

    /// The `host:port` this client dials.
    pub fn endpoint(&self) -> &str {
        &self.pool.endpoint
    }

    fn dial(&self) -> Result<TcpStream, TransportError> {
        let pool = &self.pool;
        let mut last: Option<TransportError> = None;
        let mut stream = None;
        for addr in &pool.addrs {
            match TcpStream::connect_timeout(addr, pool.config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(io_error(&e, &format!("connecting to {addr}"))),
            }
        }
        let mut stream = stream.ok_or_else(|| {
            last.unwrap_or_else(|| {
                TransportError::new(TransportErrorKind::Refused, "address resolved to nothing")
            })
        })?;
        stream
            .set_read_timeout(Some(pool.config.call_timeout))
            .and_then(|()| stream.set_write_timeout(Some(pool.config.call_timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_error(&e, "configuring socket"))?;
        let corr = pool.next_corr.fetch_add(1, Ordering::Relaxed);
        let (kind, payload) = Message::Hello { subscribe: false }.encode();
        write_frame_corr(&mut stream, corr, kind, &payload)?;
        let ack = read_frame(&mut stream)?;
        match Message::decode(ack.kind, &ack.payload)? {
            Message::HelloAck { .. } => {}
            other => return Err(unexpected("HelloAck", &other)),
        }
        metrics().client_connects.inc();
        Ok(stream)
    }

    /// One request/reply on `stream`. Replies carrying a foreign
    /// correlation id (a late answer to a call that already timed out on
    /// this socket) are skipped, not misdelivered.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        request: &Message,
    ) -> Result<Message, TransportError> {
        let corr = self.pool.next_corr.fetch_add(1, Ordering::Relaxed);
        let (kind, payload) = request.encode();
        write_frame_corr(stream, corr, kind, &payload)?;
        loop {
            let frame = read_frame(stream)?;
            if frame.corr == corr || frame.corr == 0 {
                return Message::decode(frame.kind, &frame.payload);
            }
            metrics().client_late_replies.inc();
        }
    }

    /// Sends `request` on a pooled connection (round-robin), dialing on
    /// demand. A connection lost on a *reused* pooled socket gets one
    /// transparent redial — pool staleness is a fact of pooling, not a
    /// replica failure. Remote-reported errors come back typed.
    fn call(&self, request: &Message) -> Result<Message, TransportError> {
        let m = metrics();
        let slot_index =
            self.pool.next_slot.fetch_add(1, Ordering::Relaxed) % self.pool.slots.len();
        let mut slot = self.pool.slots[slot_index].lock();
        let (mut stream, reused) = match slot.take() {
            Some(stream) => (stream, true),
            None => (self.dial()?, false),
        };
        let timer = m.rpc_latency.start_timer();
        let mut outcome = self.exchange(&mut stream, request);
        if let Err(e) = &outcome {
            let _ = stream.shutdown(Shutdown::Both);
            if reused && e.kind == TransportErrorKind::ConnectionLost {
                let mut fresh = self.dial()?;
                outcome = self.exchange(&mut fresh, request);
                if outcome.is_ok() {
                    *slot = Some(fresh);
                }
            }
        } else {
            *slot = Some(stream);
        }
        timer.stop();
        match outcome {
            Ok(Message::Error { detail }) => {
                m.client_failures.inc();
                Err(TransportError::new(TransportErrorKind::Remote, detail))
            }
            Ok(message) => Ok(message),
            Err(e) => {
                if e.kind == TransportErrorKind::Timeout {
                    m.client_timeouts.inc();
                } else {
                    m.client_failures.inc();
                }
                Err(e)
            }
        }
    }
}

impl std::fmt::Debug for RemoteReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteReplica")
            .field("endpoint", &self.pool.endpoint)
            .finish()
    }
}

fn unexpected(wanted: &str, got: &Message) -> TransportError {
    TransportError::new(
        TransportErrorKind::Protocol,
        format!("expected {wanted}, got kind {}", kind_of(got)),
    )
}

impl ReplicaClient for RemoteReplica {
    fn ping(&self) -> Result<(), TransportError> {
        match self.call(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    fn estimate_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<Vec<EngineEstimate>, TransportError> {
        match self.call(&Message::ReplicaEstimate {
            query: query.to_string(),
            threshold,
            engines: engines.to_vec(),
        })? {
            Message::ReplicaEstimates { estimates } => Ok(estimates),
            other => Err(unexpected("ReplicaEstimates", &other)),
        }
    }

    fn search_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<SubsetResults, TransportError> {
        match self.call(&Message::ReplicaSearch {
            query: query.to_string(),
            threshold,
            engines: engines.to_vec(),
        })? {
            Message::ReplicaSearchResults { hits, stats } => Ok(SubsetResults { hits, stats }),
            other => Err(unexpected("ReplicaSearchResults", &other)),
        }
    }

    fn install(&self, spec: &InstallSpec) -> Result<(), TransportError> {
        // In-process engine handles cannot cross the wire; ship their
        // snapshot instead (identical statistics, so estimates stay
        // bit-identical — the engine just cannot serve live searches
        // from that replica).
        use seu_metasearch::federation::EngineSource;
        let snapshot = match (&spec.snapshot, &spec.source) {
            (Some(snapshot), _) => Some(snapshot.clone()),
            (None, Some(EngineSource::Local(engine))) => {
                Some(EngineSnapshot::of_engine(&spec.name, engine))
            }
            _ => None,
        };
        let endpoint = spec
            .source
            .as_ref()
            .and_then(|s| s.endpoint())
            .map(String::from);
        if snapshot.is_none() && endpoint.is_none() {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                "install needs a snapshot or an endpoint",
            ));
        }
        match self.call(&Message::InstallEngine {
            name: spec.name.clone(),
            snapshot,
            endpoint,
        })? {
            Message::InstallAck { .. } => Ok(()),
            other => Err(unexpected("InstallAck", &other)),
        }
    }

    fn remove_engine(&self, name: &str) -> Result<bool, TransportError> {
        match self.call(&Message::RemoveEngine {
            name: name.to_string(),
        })? {
            Message::RemoveAck { removed } => Ok(removed),
            other => Err(unexpected("RemoveAck", &other)),
        }
    }

    fn export_engine(&self, name: &str) -> Result<EngineSnapshot, TransportError> {
        match self.call(&Message::ExportEngine {
            name: name.to_string(),
        })? {
            Message::Representative { snapshot } => Ok(snapshot),
            other => Err(unexpected("Representative", &other)),
        }
    }
}

impl BrokerAdmin for FrontDoor {
    fn engine_statuses(&self) -> Vec<EngineStatus> {
        FrontDoor::engine_statuses(self)
    }

    fn search(&self, request: &SearchRequest) -> SearchResponse {
        self.execute(request)
    }

    fn registry_snapshot(&self) -> RegistrySnapshot {
        FrontDoor::registry_snapshot(self)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        // The front-door owns no query cache; its replicas each run
        // their own.
        None
    }
}
