//! A minimal HTTP/1.1 admin server over a broker: Prometheus exposition,
//! health, engine inventory, and search.
//!
//! Hand-rolled on `std::net` (the workspace vendors no HTTP stack), and
//! deliberately small: one request per connection (`Connection: close`),
//! capped header and body sizes, four routes:
//!
//! | route | reply |
//! |-------|-------|
//! | `GET /metrics` | the process-global [`seu_obs`] registry in Prometheus text exposition |
//! | `GET /healthz` | JSON health: registry epoch, shard count, engine count, query-cache stats |
//! | `GET /engines` | JSON array of the broker's [`EngineStatus`] rows |
//! | `POST /search` | executes a JSON search request against the broker |
//! | `GET /traces` | JSON array of retained trace summaries, newest first |
//! | `GET /traces/<id>` | one retained trace as a full span tree (16-hex trace id) |
//!
//! `POST /search` takes `{"query": "...", "threshold": 0.2, "top_k": 10,
//! "all": true, "explain": true, "cache": "read_write"}` (only `query`
//! required; `all` selects every engine instead of the estimated-useful
//! policy; `cache` is one of `"read_write"`, `"read_only"`, `"bypass"`)
//! and answers with merged hits, per-engine estimates, per-engine
//! dispatch stats — including the typed transport error when a remote
//! engine failed — and `"served_from"` (`"analysis"`, `"plan"`,
//! `"results"`, or `null` for a cold execution). With `explain` the
//! request is force-sampled and the reply carries the complete span tree
//! inline under `"trace"`.
//!
//! The server is decoupled from the broker's estimator type through the
//! object-safe [`BrokerAdmin`] trait, blanket-implemented for every
//! `Broker<E>`.

use crate::metrics::metrics;
use seu_core::UsefulnessEstimator;
use seu_metasearch::{
    Broker, CacheMode, CacheStats, EngineStatus, RegistrySnapshot, SearchRequest, SearchResponse,
    SelectionPolicy,
};
use seu_obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head (request line + headers) accepted.
const MAX_HEAD_BYTES: usize = 8 << 10;
/// Largest request body accepted: the same 32 MiB cap the binary frame
/// layer enforces, checked against the declared `Content-Length`
/// *before* any buffer is allocated, so a liar header costs nothing.
const MAX_BODY_BYTES: usize = crate::frame::MAX_FRAME_BYTES;
/// Socket deadline for reading a request and writing its response.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// The slice of a broker the admin server needs, object-safe so one
/// server type works over any estimator. Blanket-implemented for every
/// [`Broker`].
pub trait BrokerAdmin: Send + Sync {
    /// Registry inventory, in registration order.
    fn engine_statuses(&self) -> Vec<EngineStatus>;
    /// Plans, selects, dispatches, and merges one request.
    fn search(&self, request: &SearchRequest) -> SearchResponse;
    /// A consistent epoch cut of the registry, for health reporting.
    fn registry_snapshot(&self) -> RegistrySnapshot;
    /// A point-in-time view of the query cache, `None` when the broker
    /// runs without one (for the `/healthz` `cache` block).
    fn cache_stats(&self) -> Option<CacheStats>;
}

impl<E: UsefulnessEstimator + Send + Sync> BrokerAdmin for Broker<E> {
    fn engine_statuses(&self) -> Vec<EngineStatus> {
        Broker::engine_statuses(self)
    }

    fn search(&self, request: &SearchRequest) -> SearchResponse {
        self.execute(request)
    }

    fn registry_snapshot(&self) -> RegistrySnapshot {
        Broker::registry_snapshot(self)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Broker::cache_stats(self)
    }
}

/// The admin/metrics HTTP server; serving stops when dropped.
pub struct AdminServer {
    addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (port 0 for ephemeral) and serves `broker`.
    pub fn bind(
        broker: Arc<dyn BrokerAdmin>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutting_down);
        let accept_thread = std::thread::Builder::new()
            .name("seu-net-http".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let broker = Arc::clone(&broker);
                    let _ = std::thread::Builder::new()
                        .name("seu-net-http-conn".to_string())
                        .spawn(move || {
                            let _ = serve_one(stream, &*broker);
                        });
                }
            })?;
        Ok(AdminServer {
            addr,
            shutting_down,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for AdminServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminServer")
            .field("addr", &self.addr)
            .finish()
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Why [`read_request`] produced no request.
enum ReadError {
    /// Malformed, truncated, or over the head cap → `400`.
    Invalid,
    /// Declared `Content-Length` over [`MAX_BODY_BYTES`] → `413`. The
    /// body is never allocated or read.
    BodyTooLarge,
}

/// Reads one HTTP request within the caps.
fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ReadError::Invalid);
        }
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return Err(ReadError::Invalid),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next().ok_or(ReadError::Invalid)?.split_whitespace();
    let method = request_line.next().ok_or(ReadError::Invalid)?.to_string();
    let path = request_line.next().ok_or(ReadError::Invalid)?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| ReadError::Invalid)?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|_| ReadError::Invalid)?;
    Ok(Request { method, path, body })
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn serve_one(mut stream: TcpStream, broker: &dyn BrokerAdmin) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_write_timeout(Some(REQUEST_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(ReadError::Invalid) => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "bad request\n",
            );
        }
        Err(ReadError::BodyTooLarge) => {
            return respond(
                &mut stream,
                "413 Payload Too Large",
                "text/plain",
                "body exceeds 33554432 bytes\n",
            );
        }
    };
    metrics().http_requests.inc();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => {
            let exposition = seu_obs::global().snapshot().to_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &exposition,
            )
        }
        ("GET", "/healthz") => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &healthz_json(&broker.registry_snapshot(), broker.cache_stats().as_ref()),
        ),
        ("GET", "/traces") => respond(&mut stream, "200 OK", "application/json", &traces_json()),
        ("GET", path) if path.starts_with("/traces/") => {
            match lookup_trace(&path["/traces/".len()..]) {
                Some(body) => respond(&mut stream, "200 OK", "application/json", &body),
                None => respond(
                    &mut stream,
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"no such trace\"}",
                ),
            }
        }
        ("GET", "/engines") => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &engines_json(&broker.engine_statuses()),
        ),
        ("POST", "/search") => match parse_search(&request.body) {
            Ok(req) => {
                let response = broker.search(&req);
                respond(
                    &mut stream,
                    "200 OK",
                    "application/json",
                    &search_json(&response),
                )
            }
            Err(detail) => {
                let mut body = String::from("{\"error\":");
                json::write_escaped(&mut body, &detail);
                body.push('}');
                respond(&mut stream, "400 Bad Request", "application/json", &body)
            }
        },
        ("GET" | "POST", _) => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        ),
    }
}

fn parse_search(body: &[u8]) -> Result<SearchRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = json::parse(text)?;
    let query = value
        .get("query")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"query\"".to_string())?;
    let mut request = SearchRequest::new(query).with_estimates(true);
    if let Some(t) = value.get("threshold").and_then(Json::as_num) {
        request = request.threshold(t);
    }
    if let Some(k) = value.get("top_k").and_then(Json::as_num) {
        request = request.top_k(k as usize);
    }
    if value.get("all") == Some(&Json::Bool(true)) {
        request = request.policy(SelectionPolicy::All);
    }
    if value.get("explain") == Some(&Json::Bool(true)) {
        request = request.explain(true);
    }
    if let Some(mode) = value.get("cache").and_then(Json::as_str) {
        request = request.cache(match mode {
            "read_write" => CacheMode::ReadWrite,
            "read_only" => CacheMode::ReadOnly,
            "bypass" => CacheMode::Bypass,
            other => return Err(format!("unknown cache mode {other:?}")),
        });
    }
    Ok(request)
}

fn healthz_json(snapshot: &RegistrySnapshot, cache: Option<&CacheStats>) -> String {
    let mut out = format!(
        "{{\"status\":\"ok\",\"registry_epoch\":{},\"shards\":{},\"engines\":{},\"cache\":",
        snapshot.epoch,
        snapshot.shard_epochs.len(),
        snapshot.statuses.len()
    );
    match cache {
        Some(c) => {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"policy\":\"{}\",\"budget_bytes\":{},\"bytes_resident\":{},\
                     \"entries\":{},\"hits\":{},\"misses\":{},\"stale_evictions\":{}}}",
                    c.policy.name(),
                    c.budget_bytes,
                    c.bytes_resident,
                    c.entries,
                    c.hits,
                    c.misses,
                    c.stale_evictions
                ),
            );
        }
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

fn traces_json() -> String {
    let mut out = String::from("[");
    for (i, trace) in seu_obs::tracer().store().recent().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&trace.summary_json());
    }
    out.push(']');
    out
}

fn lookup_trace(hex: &str) -> Option<String> {
    let id = seu_obs::TraceId::from_hex(hex)?;
    let trace = seu_obs::tracer().store().get(id)?;
    Some(trace.to_json())
}

fn engines_json(statuses: &[EngineStatus]) -> String {
    let mut out = String::from("[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_escaped(&mut out, &s.name);
        out.push_str(&format!(
            ",\"epoch\":{},\"stale\":{},\"repr_terms\":{},\"repr_bytes\":{},\"remote\":{},\"detached\":{},\"shard\":{}",
            s.epoch, s.stale, s.repr_terms, s.repr_bytes, s.remote, s.detached, s.shard
        ));
        out.push_str(",\"endpoint\":");
        match &s.endpoint {
            Some(e) => json::write_escaped(&mut out, e),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push(']');
    out
}

fn search_json(response: &SearchResponse) -> String {
    let mut out = String::from("{\"hits\":[");
    for (i, h) in response.hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"engine\":");
        json::write_escaped(&mut out, &h.engine);
        out.push_str(",\"doc\":");
        json::write_escaped(&mut out, &h.doc);
        out.push_str(",\"sim\":");
        json::write_num(&mut out, h.sim);
        out.push('}');
    }
    out.push_str("],\"estimates\":[");
    for (i, e) in response.estimates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"engine\":");
        json::write_escaped(&mut out, &e.engine);
        out.push_str(",\"no_doc\":");
        json::write_num(&mut out, e.usefulness.no_doc);
        out.push_str(",\"avg_sim\":");
        json::write_num(&mut out, e.usefulness.avg_sim);
        out.push('}');
    }
    out.push_str("],\"per_engine\":[");
    for (i, s) in response.per_engine_stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"engine\":");
        json::write_escaped(&mut out, &s.engine);
        out.push_str(&format!(",\"hits\":{},\"seconds\":", s.hits));
        json::write_num(&mut out, s.seconds);
        out.push_str(",\"outcome\":");
        let outcome = match s.outcome {
            seu_metasearch::DispatchOutcome::Completed => "completed",
            seu_metasearch::DispatchOutcome::Failed => "failed",
            seu_metasearch::DispatchOutcome::TimedOut => "timed_out",
        };
        json::write_escaped(&mut out, outcome);
        out.push_str(",\"error\":");
        match &s.error {
            Some(e) => json::write_escaped(&mut out, &e.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("],\"served_from\":");
    match response.served_from {
        Some(tier) => json::write_escaped(&mut out, tier.name()),
        None => out.push_str("null"),
    }
    if let Some(trace) = &response.trace {
        out.push_str(",\"trace\":");
        trace.write_json(&mut out);
    }
    out.push('}');
    out
}
