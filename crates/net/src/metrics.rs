//! The `net_*` instrument family: traffic, RPC latency, retries, and
//! push-invalidation counters for the TCP transport and the HTTP admin
//! server.
//!
//! Everything lives in the process-global [`seu_obs`] registry, so a
//! `GET /metrics` scrape of the admin server exposes the broker's
//! `broker_*` family and this crate's `net_*` family side by side.

use std::sync::{Arc, OnceLock};

/// Instrument handles cached once per process.
pub(crate) struct NetMetrics {
    /// Frame bytes written to sockets (header + payload), both sides.
    pub(crate) bytes_sent: Arc<seu_obs::Counter>,
    /// Frame bytes read from sockets (header + payload), both sides.
    pub(crate) bytes_received: Arc<seu_obs::Counter>,
    /// Frames written.
    pub(crate) frames_sent: Arc<seu_obs::Counter>,
    /// Frames read.
    pub(crate) frames_received: Arc<seu_obs::Counter>,
    /// Client-side wall-clock per remote call **attempt** (send to
    /// reply). Backoff sleeps between retries are excluded so the
    /// histogram measures the wire, not the retry policy.
    pub(crate) rpc_latency: Arc<seu_obs::Histogram>,
    /// Client call attempts that were retried after a transient failure.
    pub(crate) client_retries: Arc<seu_obs::Counter>,
    /// Client calls that ended in a deadline miss.
    pub(crate) client_timeouts: Arc<seu_obs::Counter>,
    /// Client calls that ended in any non-timeout transport failure.
    pub(crate) client_failures: Arc<seu_obs::Counter>,
    /// Invalidation notices pushed by engine servers.
    pub(crate) push_notices_sent: Arc<seu_obs::Counter>,
    /// Invalidation notices received by subscribed clients.
    pub(crate) push_notices_received: Arc<seu_obs::Counter>,
    /// Connections accepted by engine servers.
    pub(crate) server_connections: Arc<seu_obs::Counter>,
    /// Request frames served by engine servers.
    pub(crate) server_requests: Arc<seu_obs::Counter>,
    /// Live subscriber connections across all engine servers.
    pub(crate) server_subscribers: Arc<seu_obs::Gauge>,
    /// HTTP requests served by admin servers.
    pub(crate) http_requests: Arc<seu_obs::Counter>,
    /// Traced searches that fell back to the plain message because the
    /// peer predates the traced kind.
    pub(crate) client_trace_fallbacks: Arc<seu_obs::Counter>,
    /// Traced searches served by engine servers (spans shipped back).
    pub(crate) server_traced_searches: Arc<seu_obs::Counter>,
    /// Pooled connections dialed (TCP connect + handshake completed).
    pub(crate) client_connects: Arc<seu_obs::Counter>,
    /// Reply frames whose correlation id matched no waiting request
    /// (the request already timed out, or the peer misbehaved).
    pub(crate) client_late_replies: Arc<seu_obs::Counter>,
    /// Batched estimate calls that fell back to per-query requests
    /// because the peer predates the batch kind.
    pub(crate) client_batch_fallbacks: Arc<seu_obs::Counter>,
    /// Batched estimate requests served by engine servers.
    pub(crate) server_batch_requests: Arc<seu_obs::Counter>,
    /// Requests the server dropped because their deadline passed before
    /// a worker finished them.
    pub(crate) server_deadline_drops: Arc<seu_obs::Counter>,
    /// Live connections owned by event-loop servers (all kinds).
    pub(crate) server_active_connections: Arc<seu_obs::Gauge>,
    /// Federation frames served by replica servers (subset estimates,
    /// subset searches, engine lifecycle).
    pub(crate) replica_requests: Arc<seu_obs::Counter>,
}

pub(crate) fn metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| NetMetrics {
        bytes_sent: seu_obs::counter("net_bytes_sent_total"),
        bytes_received: seu_obs::counter("net_bytes_received_total"),
        frames_sent: seu_obs::counter("net_frames_sent_total"),
        frames_received: seu_obs::counter("net_frames_received_total"),
        rpc_latency: seu_obs::histogram("net_rpc_latency_seconds"),
        client_retries: seu_obs::counter("net_client_retries_total"),
        client_timeouts: seu_obs::counter("net_client_timeouts_total"),
        client_failures: seu_obs::counter("net_client_failures_total"),
        push_notices_sent: seu_obs::counter("net_push_notices_sent_total"),
        push_notices_received: seu_obs::counter("net_push_notices_received_total"),
        server_connections: seu_obs::counter("net_server_connections_total"),
        server_requests: seu_obs::counter("net_server_requests_total"),
        server_subscribers: seu_obs::gauge("net_server_subscribers"),
        http_requests: seu_obs::counter("net_http_requests_total"),
        client_trace_fallbacks: seu_obs::counter("net_client_trace_fallbacks_total"),
        server_traced_searches: seu_obs::counter("net_server_traced_searches_total"),
        client_connects: seu_obs::counter("net_client_connects_total"),
        client_late_replies: seu_obs::counter("net_client_late_replies_total"),
        client_batch_fallbacks: seu_obs::counter("net_client_batch_fallbacks_total"),
        server_batch_requests: seu_obs::counter("net_server_batch_requests_total"),
        server_deadline_drops: seu_obs::counter("net_server_request_deadline_drops_total"),
        server_active_connections: seu_obs::gauge("net_server_active_connections"),
        replica_requests: seu_obs::counter("net_replica_requests_total"),
    })
}

/// Forces creation of the crate's instruments so snapshots and
/// expositions include the whole `net_*` family — zero-valued if the
/// process never touched a socket — instead of a family that appears
/// only after the first frame moves.
pub fn register_metrics() {
    let _ = metrics();
}
