//! `seu-net`: the networked broker — remote engine transport, push
//! invalidation, and an HTTP admin/metrics server.
//!
//! The paper's metasearch architecture (Meng et al., ICDE 1999 §1) is a
//! broker *distinct from* the search engines it brokers: engines expose
//! only compact representatives and per-query results, and the broker
//! estimates usefulness from the representatives alone. Everything in
//! `seu-metasearch` keeps that split as an in-process abstraction; this
//! crate makes it literal with `std::net` TCP — no external
//! networking stack.
//!
//! Three pieces:
//!
//! * **[`EngineServer`]** puts one [`SearchEngine`](seu_engine::SearchEngine)
//!   on a socket behind a readiness event loop (one poll thread plus a
//!   small worker pool; [`ServerMode::ThreadPerConnection`] keeps the
//!   old scheduler as a baseline), serving search / true-usefulness
//!   (single or batched) / snapshot requests and pushing
//!   [invalidation notices](wire::Message::InvalidateNotice) to
//!   subscribed brokers when its collection changes.
//! * **[`RemoteEngine`]** is the broker-side client: it implements
//!   [`RemoteTransport`](seu_metasearch::RemoteTransport), so
//!   `Broker::register_remote` treats a process across the wire exactly
//!   like a local engine — same planning, same estimates (byte-identical,
//!   because snapshots ship full-precision f64 statistics), same
//!   dispatch, with transport failures captured per-engine instead of
//!   failing the query. Clones share a connection pool, and because
//!   every frame carries a correlation id, one connection pipelines
//!   many concurrent requests.
//! * **[`ReplicaServer`]** / **[`RemoteReplica`]** are the federation
//!   endpoints ([`federation`]): a back-end broker on a socket serving
//!   subset estimates, subset searches, and engine-lifecycle orders for
//!   a [`FrontDoor`](seu_metasearch::FrontDoor), and the matching
//!   [`ReplicaClient`](seu_metasearch::ReplicaClient) the front-door
//!   dials — same placement, failover, and bit-identity guarantees as
//!   the in-process cluster.
//! * **[`AdminServer`]** is a minimal HTTP/1.1 server over a broker:
//!   `GET /metrics` (Prometheus exposition of the process-global
//!   [`seu_obs`] registry), `GET /healthz`, `GET /engines`,
//!   `POST /search` (with an inline span tree under `"explain"`), and
//!   `GET /traces` for retained request traces.
//!
//! The wire format is a length-prefixed binary framing ([`frame`]) with
//! a small fixed message vocabulary ([`wire`]); every length read off
//! the wire is validated before allocation, and malformed traffic
//! surfaces as typed
//! [`TransportError`](seu_metasearch::TransportError)s.
//!
//! # Loopback example
//!
//! ```
//! use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
//! use seu_metasearch::Broker;
//! use seu_net::{EngineServer, RemoteEngine};
//! use seu_core::SubrangeEstimator;
//! use seu_text::Analyzer;
//! use std::sync::Arc;
//!
//! let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
//! b.add_document("d0", "estimating search engine usefulness");
//! let server = EngineServer::bind("demo", SearchEngine::new(b.build()), "127.0.0.1:0").unwrap();
//!
//! let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
//! let client = RemoteEngine::new(server.addr()).unwrap();
//! let name = broker.register_remote(Arc::new(client)).unwrap();
//! assert_eq!(name, "demo");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod federation;
pub mod frame;
pub mod http;
mod metrics;
pub mod server;
mod timer;
pub mod wire;

pub use client::{RemoteEngine, RemoteEngineConfig, Subscription};
pub use federation::{RemoteReplica, RemoteReplicaConfig, ReplicaServer, ReplicaServerConfig};
pub use http::{AdminServer, BrokerAdmin};
pub use metrics::register_metrics;
pub use server::{EngineServer, ServerConfig, ServerMode};

use seu_core::UsefulnessEstimator;
use seu_metasearch::{Broker, TransportError};
use std::sync::{Arc, Weak};

/// Registers a remote engine with `broker` **and** wires a push
/// subscription so collection changes on the engine side reach the
/// broker as [`Broker::apply_invalidation`] calls — no staleness sweep
/// required. Returns the advertised engine name and the live
/// [`Subscription`] (dropping it stops the push flow; the registration
/// stays).
///
/// The subscription holds only a [`Weak`] broker reference, so it never
/// keeps a dropped broker alive.
pub fn register_and_subscribe<E>(
    broker: &Arc<Broker<E>>,
    client: RemoteEngine,
) -> Result<(String, Subscription), TransportError>
where
    E: UsefulnessEstimator + Send + Sync + 'static,
{
    let name = broker.register_remote(Arc::new(client.clone()))?;
    let weak: Weak<Broker<E>> = Arc::downgrade(broker);
    let subscription = client.subscribe_with(move |name, fingerprint, _epoch| {
        if let Some(broker) = weak.upgrade() {
            let _ = broker.apply_invalidation(name, fingerprint);
        }
    })?;
    Ok((name, subscription))
}
