//! The broker side of the wire: [`RemoteEngine`], a TCP client
//! implementing [`RemoteTransport`] so a broker can register an engine
//! living in another process with `Broker::register_remote`.
//!
//! The client keeps a small **connection pool** shared by every clone
//! of the same `RemoteEngine`. Each pooled connection is multiplexed:
//! requests are stamped with a fresh correlation id, a dedicated reader
//! thread routes reply frames back to their callers by id, and many
//! calls are in flight on one socket at once (up to a pipeline depth
//! per connection; more connections are dialed on demand up to the pool
//! cap). Per-request deadlines are enforced by the waiting caller — a
//! condvar wait bounded by [`RemoteEngineConfig::call_timeout`] — not
//! by socket-level read timeouts, so one slow request never delays the
//! replies interleaved behind it.
//!
//! Peers that do not echo correlation ids (handshake ack comes back
//! with `corr = 0`) are served **sequentially**: one exchange at a time
//! per connection, replies matched positionally. That keeps old-style
//! single-frame servers and test fakes working unchanged.
//!
//! Dialing resolves every address the name maps to and tries each in
//! order (IPv4/IPv6 dual-stack hosts fall through to the next address
//! on connect failure). Retries are bounded and **transient-only**:
//! refused connections and connections lost mid-exchange are retried
//! with exponential backoff capped at [`RemoteEngine::max_backoff`];
//! deadline misses, protocol violations, and remote-reported errors are
//! not (a timeout retried is a deadline doubled, and a protocol error
//! will not get better by asking again). A call that fails with a lost
//! connection on a *reused* pooled connection is transparently retried
//! once on a freshly dialed one — a stale pooled socket is a fact of
//! pooling, not a remote failure — before the retry policy is charged.

use crate::frame::{io_error, read_frame, write_frame, write_frame_corr};
use crate::metrics::metrics;
use crate::wire::Message;
use seu_engine::{Fingerprint, TrueUsefulness};
use seu_metasearch::{
    EngineSnapshot, RemoteHit, RemoteTransport, TransportError, TransportErrorKind,
};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// In-flight requests one multiplexed connection carries before the
/// pool prefers dialing another.
const PIPELINE_DEPTH: usize = 32;

/// Default pool size per remote engine.
const DEFAULT_MAX_CONNS: usize = 8;

/// Default ceiling on the exponential retry backoff.
const DEFAULT_MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Timeouts and retry policy for a [`RemoteEngine`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteEngineConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-call deadline from sending the request to seeing its reply.
    pub call_timeout: Duration,
    /// Additional attempts after a transient failure (refused or
    /// connection lost — never timeouts or protocol errors).
    pub retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry,
    /// capped at [`RemoteEngine::max_backoff`].
    pub backoff: Duration,
}

impl Default for RemoteEngineConfig {
    fn default() -> Self {
        RemoteEngineConfig {
            connect_timeout: Duration::from_secs(1),
            call_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

/// The growth `backoff * 2^attempt`, saturating, clamped to `cap`.
fn backoff_delay(base: Duration, attempt: u32, cap: Duration) -> Duration {
    base.saturating_mul(2u32.saturating_pow(attempt)).min(cap)
}

/// A slot one waiting caller watches: `None` until the reader thread
/// (or a connection-death sweep) fills it.
type ReplySlot = Option<Result<Message, TransportError>>;

/// One pooled connection: a locked writer half, a reader thread routing
/// replies into `pending` by correlation id, and bookkeeping for the
/// pool's load balancing.
struct Conn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, ReplySlot>>,
    cv: Condvar,
    /// Whether the peer echoes correlation ids (negotiated at
    /// handshake: we send a nonzero id on Hello; a multiplex-capable
    /// server echoes it on the ack, anything else comes back 0).
    mux: bool,
    /// Serializes exchanges on non-mux connections (one in flight).
    serial: Mutex<()>,
    alive: AtomicBool,
    in_flight: AtomicUsize,
}

impl Conn {
    fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        if let Ok(w) = self.writer.lock() {
            let _ = w.shutdown(Shutdown::Both);
        }
    }
}

fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The shared state behind every clone of one [`RemoteEngine`].
struct Pool {
    addrs: Vec<SocketAddr>,
    config: RemoteEngineConfig,
    max_backoff: Duration,
    max_conns: usize,
    /// Baseline mode: a fresh connection per call, no pooling or
    /// multiplexing (the pre-pool behavior, kept for benchmarking).
    per_call: bool,
    next_corr: AtomicU64,
    conns: Mutex<Vec<Arc<Conn>>>,
}

impl Pool {
    fn new(addrs: Vec<SocketAddr>, config: RemoteEngineConfig) -> Pool {
        Pool {
            addrs,
            config,
            max_backoff: DEFAULT_MAX_BACKOFF,
            max_conns: DEFAULT_MAX_CONNS,
            per_call: false,
            next_corr: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
        }
    }

    /// Connects to the first address that answers, falling through the
    /// rest of the resolved set on failure.
    fn connect_any(&self) -> Result<TcpStream, TransportError> {
        let mut last: Option<TransportError> = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(io_error(&e, &format!("connecting to {addr}"))),
            }
        }
        Err(last.unwrap_or_else(|| {
            TransportError::new(TransportErrorKind::Refused, "address resolved to nothing")
        }))
    }

    /// Dials, handshakes (negotiating correlation-id support), and
    /// spawns the reader thread for a new pooled connection.
    fn dial(&self) -> Result<Arc<Conn>, TransportError> {
        let mut stream = self.connect_any()?;
        stream
            .set_read_timeout(Some(self.config.call_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.call_timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_error(&e, "configuring socket"))?;
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let (kind, payload) = Message::Hello { subscribe: false }.encode();
        write_frame_corr(&mut stream, corr, kind, &payload)?;
        let ack = read_frame(&mut stream)?;
        let mux = ack.corr == corr;
        match Message::decode(ack.kind, &ack.payload)? {
            Message::HelloAck { .. } => {}
            other => return Err(unexpected("HelloAck", &other)),
        }
        // The reader thread blocks until a frame arrives; deadlines are
        // enforced by the waiting callers instead.
        stream
            .set_read_timeout(None)
            .map_err(|e| io_error(&e, "configuring socket"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| io_error(&e, "cloning pooled stream"))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            mux,
            serial: Mutex::new(()),
            alive: AtomicBool::new(true),
            in_flight: AtomicUsize::new(0),
        });
        let for_reader = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("seu-net-reader".to_string())
            .spawn(move || reader_loop(for_reader, read_half))
            .map_err(|e| io_error(&e, "spawning reader thread"))?;
        metrics().client_connects.inc();
        Ok(conn)
    }

    /// Picks a connection for one call: a multiplexed connection with
    /// spare pipeline depth, an idle sequential one, a freshly dialed
    /// one while under the cap, or (saturated) the least loaded. The
    /// returned flag says whether the connection was dialed for this
    /// call — reused connections get one transparent redial on a lost
    /// connection, fresh ones do not.
    fn acquire(&self) -> Result<(Arc<Conn>, bool), TransportError> {
        let mut conns = lock_unpoisoned(&self.conns);
        conns.retain(|c| c.alive.load(Ordering::Acquire));
        let mut best: Option<&Arc<Conn>> = None;
        for c in conns.iter().filter(|c| c.mux) {
            let load = c.in_flight.load(Ordering::Relaxed);
            if load < PIPELINE_DEPTH
                && best.is_none_or(|b| load < b.in_flight.load(Ordering::Relaxed))
            {
                best = Some(c);
            }
        }
        if let Some(c) = best {
            return Ok((Arc::clone(c), false));
        }
        if let Some(c) = conns
            .iter()
            .find(|c| !c.mux && c.in_flight.load(Ordering::Relaxed) == 0)
        {
            return Ok((Arc::clone(c), false));
        }
        if conns.len() < self.max_conns {
            let conn = self.dial()?;
            conns.push(Arc::clone(&conn));
            return Ok((conn, true));
        }
        let c = conns
            .iter()
            .min_by_key(|c| c.in_flight.load(Ordering::Relaxed))
            .expect("pool cap is at least one");
        Ok((Arc::clone(c), false))
    }

    /// Dials a replacement connection and registers it with the pool
    /// (the stale-connection retry path).
    fn redial(&self) -> Result<Arc<Conn>, TransportError> {
        let conn = self.dial()?;
        lock_unpoisoned(&self.conns).push(Arc::clone(&conn));
        Ok(conn)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Shut the sockets down so the detached reader threads see EOF
        // and exit rather than blocking forever on their cloned halves.
        for conn in lock_unpoisoned(&self.conns).iter() {
            conn.kill();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("addrs", &self.addrs)
            .field("max_conns", &self.max_conns)
            .field("per_call", &self.per_call)
            .finish()
    }
}

/// Routes reply frames to their waiting callers until the connection
/// dies, then fails every still-pending request with the death reason.
fn reader_loop(conn: Arc<Conn>, mut stream: TcpStream) {
    loop {
        match read_frame(&mut stream) {
            Ok(frame) => {
                let result = Message::decode(frame.kind, &frame.payload);
                let fatal_decode = result.is_err();
                {
                    let mut pending = lock_unpoisoned(&conn.pending);
                    let target = if pending.contains_key(&frame.corr) {
                        Some(frame.corr)
                    } else if !conn.mux && pending.len() == 1 {
                        // Sequential peers do not echo ids: the single
                        // outstanding request owns every reply.
                        pending.keys().next().copied()
                    } else {
                        None
                    };
                    match target {
                        Some(corr) => {
                            pending.insert(corr, Some(result));
                        }
                        None => metrics().client_late_replies.inc(),
                    }
                }
                conn.cv.notify_all();
                if fatal_decode {
                    // Framing survived but the payload is garbage; the
                    // stream can no longer be trusted.
                    conn.kill();
                    return;
                }
            }
            Err(e) => {
                conn.alive.store(false, Ordering::Release);
                {
                    let mut pending = lock_unpoisoned(&conn.pending);
                    for slot in pending.values_mut() {
                        if slot.is_none() {
                            *slot = Some(Err(e.clone()));
                        }
                    }
                }
                conn.cv.notify_all();
                return;
            }
        }
    }
}

/// A TCP client for one [`EngineServer`](crate::EngineServer), usable as
/// the transport behind a broker's remote engine registration. Clones
/// share one connection pool.
#[derive(Debug, Clone)]
pub struct RemoteEngine {
    pool: Arc<Pool>,
    /// Set once a peer rejects the traced search kind; shared across
    /// clones so the whole broker stops re-probing a legacy engine.
    peer_lacks_tracing: Arc<AtomicBool>,
    /// Ditto for the batched estimate kind.
    peer_lacks_batch: Arc<AtomicBool>,
}

impl RemoteEngine {
    /// Creates a client for the engine at `addr` with default timeouts.
    /// Resolution happens here; no connection is made until the first
    /// call.
    pub fn new(addr: impl ToSocketAddrs) -> Result<RemoteEngine, TransportError> {
        RemoteEngine::with_config(addr, RemoteEngineConfig::default())
    }

    /// Creates a client with explicit timeouts and retry policy. Every
    /// address `addr` resolves to is kept; connects fall through the
    /// list in order.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        config: RemoteEngineConfig,
    ) -> Result<RemoteEngine, TransportError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| io_error(&e, "resolving engine address"))?
            .collect();
        if addrs.is_empty() {
            return Err(TransportError::new(
                TransportErrorKind::Refused,
                "address resolved to nothing",
            ));
        }
        Ok(RemoteEngine {
            pool: Arc::new(Pool::new(addrs, config)),
            peer_lacks_tracing: Arc::new(AtomicBool::new(false)),
            peer_lacks_batch: Arc::new(AtomicBool::new(false)),
        })
    }

    fn tweak(self, f: impl FnOnce(&mut Pool)) -> RemoteEngine {
        let mut pool = Pool::new(self.pool.addrs.clone(), self.pool.config);
        pool.max_backoff = self.pool.max_backoff;
        pool.max_conns = self.pool.max_conns;
        pool.per_call = self.pool.per_call;
        f(&mut pool);
        RemoteEngine {
            pool: Arc::new(pool),
            peer_lacks_tracing: self.peer_lacks_tracing,
            peer_lacks_batch: self.peer_lacks_batch,
        }
    }

    /// Caps the exponential retry backoff (default 2 s): with `n`
    /// retries configured, the worst-case sleep is `min(backoff * 2^n,
    /// cap)` per retry rather than an unbounded doubling.
    pub fn max_backoff(self, cap: Duration) -> RemoteEngine {
        self.tweak(|p| p.max_backoff = cap)
    }

    /// Sets the connection-pool cap (default 8, minimum 1).
    pub fn pool_connections(self, n: usize) -> RemoteEngine {
        self.tweak(|p| p.max_conns = n.max(1))
    }

    /// Selects the pre-pool baseline: a fresh connection, handshake,
    /// and teardown per call. Kept selectable so benchmarks can compare
    /// the multiplexed path against it.
    pub fn connection_per_call(self, yes: bool) -> RemoteEngine {
        self.tweak(|p| p.per_call = yes)
    }

    /// Opens a connection and completes the Hello handshake, returning
    /// the stream and the engine's advertised name (subscription and
    /// per-call paths; pooled calls use [`Pool::dial`]).
    fn handshake(&self, subscribe: bool) -> Result<(TcpStream, String), TransportError> {
        let mut stream = self.pool.connect_any()?;
        stream
            .set_read_timeout(Some(self.pool.config.call_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.pool.config.call_timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_error(&e, "configuring socket"))?;
        let (kind, payload) = Message::Hello { subscribe }.encode();
        write_frame(&mut stream, kind, &payload)?;
        let ack = read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload))?;
        match ack {
            Message::HelloAck { name } => Ok((stream, name)),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// One attempt over a dedicated connection (baseline mode).
    fn call_once_fresh(&self, request: &Message) -> Result<Message, TransportError> {
        let (mut stream, _) = self.handshake(false)?;
        let (kind, payload) = request.encode();
        write_frame(&mut stream, kind, &payload)?;
        let reply = read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload))?;
        let _ = stream.shutdown(Shutdown::Both);
        Ok(reply)
    }

    /// Sends `request` on `conn` and waits for its reply, bounded by
    /// the call timeout.
    fn exchange(&self, conn: &Conn, request: &Message) -> Result<Message, TransportError> {
        // Non-mux peers match replies positionally: hold the exchange
        // serial for the whole send-and-wait.
        let _serial = if conn.mux {
            None
        } else {
            Some(lock_unpoisoned(&conn.serial))
        };
        let corr = self.pool.next_corr.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&conn.pending).insert(corr, None);
        let (kind, payload) = request.encode();
        let sent = {
            let mut writer = lock_unpoisoned(&conn.writer);
            write_frame_corr(&mut *writer, corr, kind, &payload)
        };
        if let Err(e) = sent {
            lock_unpoisoned(&conn.pending).remove(&corr);
            // A partial frame may be on the wire; nothing after it can
            // be trusted.
            conn.kill();
            return Err(e);
        }
        if !conn.alive.load(Ordering::Acquire) {
            // The reader may have swept `pending` before our slot
            // existed; do not wait a full timeout to learn that.
            lock_unpoisoned(&conn.pending).remove(&corr);
            return Err(TransportError::new(
                TransportErrorKind::ConnectionLost,
                "connection died before the request was sent",
            ));
        }
        let deadline = Instant::now() + self.pool.config.call_timeout;
        let mut pending = lock_unpoisoned(&conn.pending);
        loop {
            if let Some(result) = pending.get_mut(&corr).and_then(|slot| slot.take()) {
                pending.remove(&corr);
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                pending.remove(&corr);
                drop(pending);
                if !conn.mux {
                    // A sequential peer still owes a reply; the stream
                    // is desynchronized for any future exchange.
                    conn.kill();
                }
                return Err(TransportError::new(
                    TransportErrorKind::Timeout,
                    format!(
                        "no reply within {:?} (corr {corr})",
                        self.pool.config.call_timeout
                    ),
                ));
            }
            pending = match conn.cv.wait_timeout(pending, deadline - now) {
                Ok((guard, _)) => guard,
                Err(e) => e.into_inner().0,
            };
        }
    }

    /// One attempt: acquire a pooled connection and exchange on it. A
    /// lost connection on a *reused* pooled socket is retried once on a
    /// fresh dial before surfacing.
    fn call_once(&self, request: &Message) -> Result<Message, TransportError> {
        let reply = if self.pool.per_call {
            self.call_once_fresh(request)?
        } else {
            let (conn, fresh) = self.pool.acquire()?;
            conn.in_flight.fetch_add(1, Ordering::Relaxed);
            let first = self.exchange(&conn, request);
            conn.in_flight.fetch_sub(1, Ordering::Relaxed);
            match first {
                Err(e) if !fresh && e.kind == TransportErrorKind::ConnectionLost => {
                    let conn = self.pool.redial()?;
                    conn.in_flight.fetch_add(1, Ordering::Relaxed);
                    let second = self.exchange(&conn, request);
                    conn.in_flight.fetch_sub(1, Ordering::Relaxed);
                    second?
                }
                other => other?,
            }
        };
        match reply {
            Message::Error { detail } => {
                Err(TransportError::new(TransportErrorKind::Remote, detail))
            }
            other => Ok(other),
        }
    }

    /// Sends `request` with the configured retry policy, recording
    /// latency and failure metrics. The latency histogram times each
    /// attempt individually — backoff sleeps are not wire time.
    fn call(&self, request: &Message) -> Result<Message, TransportError> {
        let m = metrics();
        let mut attempt = 0;
        let result = loop {
            let timer = m.rpc_latency.start_timer();
            let outcome = self.call_once(request);
            timer.stop();
            match outcome {
                Ok(reply) => break Ok(reply),
                Err(e) => {
                    let transient = matches!(
                        e.kind,
                        TransportErrorKind::Refused | TransportErrorKind::ConnectionLost
                    );
                    if !transient || attempt >= self.pool.config.retries {
                        break Err(e);
                    }
                    m.client_retries.inc();
                    std::thread::sleep(backoff_delay(
                        self.pool.config.backoff,
                        attempt,
                        self.pool.max_backoff,
                    ));
                    attempt += 1;
                }
            }
        };
        if let Err(e) = &result {
            if e.kind == TransportErrorKind::Timeout {
                m.client_timeouts.inc();
            } else {
                m.client_failures.inc();
            }
        }
        result
    }

    /// Liveness probe: a full request/reply round trip (on a pooled
    /// connection, or its own connection in baseline mode).
    pub fn ping(&self) -> Result<(), TransportError> {
        match self.call(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Opens a subscription connection: the engine server will push an
    /// invalidation notice over it whenever its collection changes, and
    /// `on_notice(name, fingerprint, epoch)` runs (on a dedicated reader
    /// thread) for each. The subscription lives until the returned
    /// handle is closed or dropped, or the server goes away.
    pub fn subscribe_with(
        &self,
        on_notice: impl Fn(&str, Fingerprint, u64) + Send + 'static,
    ) -> Result<Subscription, TransportError> {
        let (stream, name) = self.handshake(true)?;
        // Notices arrive whenever the engine changes — block indefinitely.
        stream
            .set_read_timeout(None)
            .map_err(|e| io_error(&e, "configuring subscription socket"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| io_error(&e, "cloning subscription stream"))?;
        let thread = std::thread::Builder::new()
            .name(format!("seu-net-subscribe-{name}"))
            .spawn(move || subscription_loop(read_half, on_notice))
            .map_err(|e| io_error(&e, "spawning subscription reader"))?;
        Ok(Subscription {
            engine: name,
            stream,
            thread: Some(thread),
        })
    }
}

fn subscription_loop(mut stream: TcpStream, on_notice: impl Fn(&str, Fingerprint, u64)) {
    loop {
        let message =
            match read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload)) {
                Ok(m) => m,
                Err(_) => return,
            };
        if let Message::InvalidateNotice {
            name,
            fingerprint,
            epoch,
        } = message
        {
            metrics().push_notices_received.inc();
            on_notice(&name, fingerprint, epoch);
        }
    }
}

/// A live push-invalidation subscription; dropping it disconnects.
pub struct Subscription {
    engine: String,
    stream: TcpStream,
    thread: Option<JoinHandle<()>>,
}

impl Subscription {
    /// The advertised name of the engine this subscription watches.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// Disconnects and joins the reader thread.
    pub fn close(mut self) {
        self.disconnect();
    }

    fn disconnect(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.disconnect();
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("engine", &self.engine)
            .finish()
    }
}

fn unexpected(wanted: &str, got: &Message) -> TransportError {
    TransportError::new(
        TransportErrorKind::Protocol,
        format!("expected {wanted}, got {got:?}"),
    )
}

impl RemoteTransport for RemoteEngine {
    fn endpoint(&self) -> String {
        self.pool.addrs[0].to_string()
    }

    fn search(
        &self,
        query_text: &str,
        threshold: f64,
        ctx: Option<&seu_obs::TraceContext>,
    ) -> Result<(Vec<RemoteHit>, Vec<seu_obs::SpanRecord>), TransportError> {
        // Untraced and unsampled requests go over the wire exactly as
        // before the traced kind existed: byte-identical frames, no span
        // shipping. Ditto once a peer has rejected the kind — remembered
        // across clones so a legacy engine is probed at most once.
        let ctx = match ctx {
            Some(ctx) if ctx.sampled && !self.peer_lacks_tracing.load(Ordering::Relaxed) => ctx,
            _ => {
                return match self.call(&Message::SearchDocs {
                    query: query_text.to_string(),
                    threshold,
                })? {
                    Message::SearchResults { hits } => Ok((hits, Vec::new())),
                    other => Err(unexpected("SearchResults", &other)),
                };
            }
        };
        let request = Message::TracedSearchDocs {
            query: query_text.to_string(),
            threshold,
            trace_id: ctx.trace_id.0,
            parent_span: ctx.parent_span.0,
            sampled: ctx.sampled,
        };
        match self.call(&request) {
            Ok(Message::TracedSearchResults { hits, spans }) => Ok((hits, spans)),
            Ok(other) => Err(unexpected("TracedSearchResults", &other)),
            Err(e) if e.kind == TransportErrorKind::Remote => {
                // An old server answers an unknown kind with Error.
                // Remember and fall back to the plain message.
                self.peer_lacks_tracing.store(true, Ordering::Relaxed);
                metrics().client_trace_fallbacks.inc();
                self.search(query_text, threshold, None)
            }
            Err(e) => Err(e),
        }
    }

    fn true_usefulness(
        &self,
        query_text: &str,
        threshold: f64,
    ) -> Result<TrueUsefulness, TransportError> {
        let reply = self.call(&Message::Estimate {
            query: query_text.to_string(),
            threshold,
        })?;
        reply
            .as_usefulness()
            .ok_or_else(|| unexpected("Usefulness", &reply))
    }

    fn true_usefulness_batch(
        &self,
        queries: &[String],
        threshold: f64,
    ) -> Result<Vec<TrueUsefulness>, TransportError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let per_query = || -> Result<Vec<TrueUsefulness>, TransportError> {
            queries
                .iter()
                .map(|q| self.true_usefulness(q, threshold))
                .collect()
        };
        if self.peer_lacks_batch.load(Ordering::Relaxed) {
            return per_query();
        }
        match self.call(&Message::EstimateBatch {
            queries: queries.to_vec(),
            threshold,
        }) {
            Ok(Message::UsefulnessBatch { results }) if results.len() == queries.len() => {
                Ok(results)
            }
            Ok(Message::UsefulnessBatch { results }) => Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "batch of {} queries answered with {} results",
                    queries.len(),
                    results.len()
                ),
            )),
            Ok(other) => Err(unexpected("UsefulnessBatch", &other)),
            Err(e) if e.kind == TransportErrorKind::Remote => {
                // An old server answers the batch kind with Error; fall
                // back to per-query estimates and remember.
                self.peer_lacks_batch.store(true, Ordering::Relaxed);
                metrics().client_batch_fallbacks.inc();
                per_query()
            }
            Err(e) => Err(e),
        }
    }

    fn fetch_snapshot(&self) -> Result<EngineSnapshot, TransportError> {
        match self.call(&Message::GetRepresentative)? {
            Message::Representative { snapshot } => Ok(snapshot),
            other => Err(unexpected("Representative", &other)),
        }
    }
}
