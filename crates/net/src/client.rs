//! The broker side of the wire: [`RemoteEngine`], a TCP client
//! implementing [`RemoteTransport`] so a broker can register an engine
//! living in another process with `Broker::register_remote`.
//!
//! The client is connection-per-call: every call connects (bounded by
//! [`RemoteEngineConfig::connect_timeout`]), handshakes, exchanges one
//! request/response pair under [`RemoteEngineConfig::call_timeout`], and
//! closes. That keeps failure handling trivially per-call — no shared
//! connection to poison — at the price of a loopback-cheap handshake.
//!
//! Retries are bounded and **transient-only**: refused connections and
//! connections lost mid-exchange are retried with exponential backoff;
//! deadline misses, protocol violations, and remote-reported errors are
//! not (a timeout retried is a deadline doubled, and a protocol error
//! will not get better by asking again).

use crate::frame::{io_error, read_frame, write_frame};
use crate::metrics::metrics;
use crate::wire::Message;
use seu_engine::{Fingerprint, TrueUsefulness};
use seu_metasearch::{
    EngineSnapshot, RemoteHit, RemoteTransport, TransportError, TransportErrorKind,
};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Timeouts and retry policy for a [`RemoteEngine`].
#[derive(Debug, Clone, Copy)]
pub struct RemoteEngineConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-call deadline applied to every read and write on the
    /// connection once established.
    pub call_timeout: Duration,
    /// Additional attempts after a transient failure (refused or
    /// connection lost — never timeouts or protocol errors).
    pub retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
}

impl Default for RemoteEngineConfig {
    fn default() -> Self {
        RemoteEngineConfig {
            connect_timeout: Duration::from_secs(1),
            call_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

/// A TCP client for one [`EngineServer`](crate::EngineServer), usable as
/// the transport behind a broker's remote engine registration.
#[derive(Debug, Clone)]
pub struct RemoteEngine {
    addr: SocketAddr,
    config: RemoteEngineConfig,
    /// Set once a peer rejects the traced search kind; shared across
    /// clones so the whole broker stops re-probing a legacy engine.
    peer_lacks_tracing: Arc<AtomicBool>,
}

impl RemoteEngine {
    /// Creates a client for the engine at `addr` with default timeouts.
    /// Resolution happens here; no connection is made until the first
    /// call.
    pub fn new(addr: impl ToSocketAddrs) -> Result<RemoteEngine, TransportError> {
        RemoteEngine::with_config(addr, RemoteEngineConfig::default())
    }

    /// Creates a client with explicit timeouts and retry policy.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        config: RemoteEngineConfig,
    ) -> Result<RemoteEngine, TransportError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| io_error(&e, "resolving engine address"))?
            .next()
            .ok_or_else(|| {
                TransportError::new(TransportErrorKind::Refused, "address resolved to nothing")
            })?;
        Ok(RemoteEngine {
            addr,
            config,
            peer_lacks_tracing: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Opens a connection and completes the Hello handshake, returning
    /// the stream and the engine's advertised name.
    fn handshake(&self, subscribe: bool) -> Result<(TcpStream, String), TransportError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| io_error(&e, &format!("connecting to {}", self.addr)))?;
        stream
            .set_read_timeout(Some(self.config.call_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.call_timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_error(&e, "configuring socket"))?;
        let (kind, payload) = Message::Hello { subscribe }.encode();
        write_frame(&mut stream, kind, &payload)?;
        let ack = read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload))?;
        match ack {
            Message::HelloAck { name } => Ok((stream, name)),
            other => Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("expected HelloAck, got {other:?}"),
            )),
        }
    }

    /// One attempt: connect, handshake, send `request`, read the reply.
    fn call_once(&self, request: &Message) -> Result<Message, TransportError> {
        let (mut stream, _) = self.handshake(false)?;
        let (kind, payload) = request.encode();
        write_frame(&mut stream, kind, &payload)?;
        let reply = read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload))?;
        let _ = stream.shutdown(Shutdown::Both);
        match reply {
            Message::Error { detail } => {
                Err(TransportError::new(TransportErrorKind::Remote, detail))
            }
            other => Ok(other),
        }
    }

    /// Sends `request` with the configured retry policy, recording
    /// latency and failure metrics.
    fn call(&self, request: &Message) -> Result<Message, TransportError> {
        let m = metrics();
        let timer = m.rpc_latency.start_timer();
        let mut attempt = 0;
        let result = loop {
            match self.call_once(request) {
                Ok(reply) => break Ok(reply),
                Err(e) => {
                    let transient = matches!(
                        e.kind,
                        TransportErrorKind::Refused | TransportErrorKind::ConnectionLost
                    );
                    if !transient || attempt >= self.config.retries {
                        break Err(e);
                    }
                    m.client_retries.inc();
                    std::thread::sleep(self.config.backoff * 2u32.saturating_pow(attempt));
                    attempt += 1;
                }
            }
        };
        timer.stop();
        if let Err(e) = &result {
            if e.kind == TransportErrorKind::Timeout {
                m.client_timeouts.inc();
            } else {
                m.client_failures.inc();
            }
        }
        result
    }

    /// Liveness probe: a full connect/handshake/Ping round trip.
    pub fn ping(&self) -> Result<(), TransportError> {
        match self.call(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Opens a subscription connection: the engine server will push an
    /// invalidation notice over it whenever its collection changes, and
    /// `on_notice(name, fingerprint, epoch)` runs (on a dedicated reader
    /// thread) for each. The subscription lives until the returned
    /// handle is closed or dropped, or the server goes away.
    pub fn subscribe_with(
        &self,
        on_notice: impl Fn(&str, Fingerprint, u64) + Send + 'static,
    ) -> Result<Subscription, TransportError> {
        let (stream, name) = self.handshake(true)?;
        // Notices arrive whenever the engine changes — block indefinitely.
        stream
            .set_read_timeout(None)
            .map_err(|e| io_error(&e, "configuring subscription socket"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| io_error(&e, "cloning subscription stream"))?;
        let thread = std::thread::Builder::new()
            .name(format!("seu-net-subscribe-{name}"))
            .spawn(move || subscription_loop(read_half, on_notice))
            .map_err(|e| io_error(&e, "spawning subscription reader"))?;
        Ok(Subscription {
            engine: name,
            stream,
            thread: Some(thread),
        })
    }
}

fn subscription_loop(mut stream: TcpStream, on_notice: impl Fn(&str, Fingerprint, u64)) {
    loop {
        let message =
            match read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload)) {
                Ok(m) => m,
                Err(_) => return,
            };
        if let Message::InvalidateNotice {
            name,
            fingerprint,
            epoch,
        } = message
        {
            metrics().push_notices_received.inc();
            on_notice(&name, fingerprint, epoch);
        }
    }
}

/// A live push-invalidation subscription; dropping it disconnects.
pub struct Subscription {
    engine: String,
    stream: TcpStream,
    thread: Option<JoinHandle<()>>,
}

impl Subscription {
    /// The advertised name of the engine this subscription watches.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// Disconnects and joins the reader thread.
    pub fn close(mut self) {
        self.disconnect();
    }

    fn disconnect(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.disconnect();
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("engine", &self.engine)
            .finish()
    }
}

fn unexpected(wanted: &str, got: &Message) -> TransportError {
    TransportError::new(
        TransportErrorKind::Protocol,
        format!("expected {wanted}, got {got:?}"),
    )
}

impl RemoteTransport for RemoteEngine {
    fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    fn search(
        &self,
        query_text: &str,
        threshold: f64,
        ctx: Option<&seu_obs::TraceContext>,
    ) -> Result<(Vec<RemoteHit>, Vec<seu_obs::SpanRecord>), TransportError> {
        // Untraced and unsampled requests go over the wire exactly as
        // before the traced kind existed: byte-identical frames, no span
        // shipping. Ditto once a peer has rejected the kind — remembered
        // across clones so a legacy engine is probed at most once.
        let ctx = match ctx {
            Some(ctx) if ctx.sampled && !self.peer_lacks_tracing.load(Ordering::Relaxed) => ctx,
            _ => {
                return match self.call(&Message::SearchDocs {
                    query: query_text.to_string(),
                    threshold,
                })? {
                    Message::SearchResults { hits } => Ok((hits, Vec::new())),
                    other => Err(unexpected("SearchResults", &other)),
                };
            }
        };
        let request = Message::TracedSearchDocs {
            query: query_text.to_string(),
            threshold,
            trace_id: ctx.trace_id.0,
            parent_span: ctx.parent_span.0,
            sampled: ctx.sampled,
        };
        match self.call(&request) {
            Ok(Message::TracedSearchResults { hits, spans }) => Ok((hits, spans)),
            Ok(other) => Err(unexpected("TracedSearchResults", &other)),
            Err(e) if e.kind == TransportErrorKind::Remote => {
                // An old server answers an unknown kind with Error.
                // Remember and fall back to the plain message.
                self.peer_lacks_tracing.store(true, Ordering::Relaxed);
                metrics().client_trace_fallbacks.inc();
                self.search(query_text, threshold, None)
            }
            Err(e) => Err(e),
        }
    }

    fn true_usefulness(
        &self,
        query_text: &str,
        threshold: f64,
    ) -> Result<TrueUsefulness, TransportError> {
        let reply = self.call(&Message::Estimate {
            query: query_text.to_string(),
            threshold,
        })?;
        reply
            .as_usefulness()
            .ok_or_else(|| unexpected("Usefulness", &reply))
    }

    fn fetch_snapshot(&self) -> Result<EngineSnapshot, TransportError> {
        match self.call(&Message::GetRepresentative)? {
            Message::Representative { snapshot } => Ok(snapshot),
            other => Err(unexpected("Representative", &other)),
        }
    }
}
