//! The engine side of the wire: a TCP server wrapping one
//! [`SearchEngine`].
//!
//! [`EngineServer::bind`] puts an engine on a socket behind a
//! **readiness event loop**: one thread owns the nonblocking listener
//! and every connection, parsing frames incrementally out of
//! per-connection read buffers and flushing replies from write buffers,
//! while a small worker pool computes the answers. Because replies
//! carry the request's correlation id, one connection can have many
//! requests in flight and the replies go out in completion order — a
//! slow search does not block the pings and estimates pipelined behind
//! it. Deadlines (connection idle, per-request compute) live in a
//! timer wheel rather than socket-level read timeouts.
//! [`EngineServer::bind_with`] selects the legacy thread-per-connection
//! scheduler instead ([`ServerMode::ThreadPerConnection`]), kept as a
//! comparison baseline.
//!
//! Two connection modes exist, chosen by the client's opening
//! [`Message::Hello`]:
//!
//! * **request connections** (`subscribe: false`) serve the broker's
//!   calls — search, true usefulness (single or batched), snapshot
//!   fetch, ping — any number in flight per connection;
//! * **subscriber connections** (`subscribe: true`) are held open and
//!   receive a pushed [`Message::InvalidateNotice`] whenever
//!   [`EngineServer::replace_engine`] swaps the collection. This is what
//!   lets a broker learn of collection changes without polling or
//!   sweeping: staleness travels *from* the engine *to* the broker.
//!
//! The server never panics on a misbehaving peer: undecodable frames get
//! a typed [`Message::Error`] reply (when the socket still writes) and
//! the connection is dropped.

use crate::frame::{encode_frame_into, parse_frame, read_frame, write_frame, write_frame_corr};
use crate::metrics::metrics;
use crate::timer::TimerWheel;
use crate::wire::Message;
use parking_lot::{Mutex, RwLock};
use seu_engine::SearchEngine;
use seu_metasearch::{EngineSnapshot, RemoteHit, TransportError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle cap on request connections: a client that connects and then goes
/// silent for this long is dropped rather than holding server state
/// forever. Subscriber connections are exempt.
const REQUEST_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Event-loop sleep bounds when no connection has traffic: start fine,
/// double up to the cap so an idle server costs microloops, not a core.
const IDLE_SLEEP_MIN: Duration = Duration::from_micros(250);
const IDLE_SLEEP_MAX: Duration = Duration::from_millis(2);

/// Write-buffer cap per connection; a subscriber that stops reading
/// while broadcasts pile up is dropped at this point instead of growing
/// the buffer without bound.
const MAX_WRITE_BUFFER: usize = 64 << 20;

/// How an [`EngineServer`] schedules its connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// One readiness event loop owns every connection; a worker pool
    /// computes replies; requests multiplex per connection. The default.
    EventLoop,
    /// One thread per connection, one request in flight at a time (the
    /// pre-event-loop scheduler, kept as a benchmark baseline).
    ThreadPerConnection,
}

/// Tuning for [`EngineServer::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection scheduler.
    pub mode: ServerMode,
    /// Worker threads computing replies in event-loop mode; 0 picks
    /// `available_parallelism` clamped to [2, 8].
    pub workers: usize,
    /// Idle cap on request connections.
    pub idle_timeout: Duration,
    /// Server-side deadline on one in-flight request: past it, the
    /// requester gets a typed error and the eventual result is dropped.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: ServerMode::EventLoop,
            workers: 0,
            idle_timeout: REQUEST_IDLE_TIMEOUT,
            request_timeout: Duration::from_secs(30),
        }
    }
}

struct Subscriber {
    id: u64,
    stream: TcpStream,
}

struct ServerState {
    name: String,
    engine: RwLock<Arc<SearchEngine>>,
    epoch: AtomicU64,
    config: ServerConfig,
    shutting_down: AtomicBool,
    /// Threaded mode: registered subscriber write halves.
    subscribers: Mutex<Vec<Subscriber>>,
    next_subscriber_id: AtomicU64,
    /// Event mode: live subscriber count (incremented *before* the ack
    /// is queued, so a client that has its ack is already counted).
    event_subscribers: AtomicUsize,
    /// Event mode: pending broadcast frames, drained by the loop.
    broadcasts: Mutex<Vec<(u8, Vec<u8>)>>,
    wake: Wake,
}

/// Wakes the event loop out of its idle sleep (new completion,
/// broadcast, or shutdown).
struct Wake {
    flag: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl Wake {
    fn new() -> Wake {
        Wake {
            flag: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }
    }

    fn notify(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `timeout` unless a notification is (or arrives)
    /// pending; consumes the pending flag.
    fn wait(&self, timeout: Duration) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        if !*flag {
            flag = match self.cv.wait_timeout(flag, timeout) {
                Ok((g, _)) => g,
                Err(e) => e.into_inner().0,
            };
        }
        *flag = false;
    }
}

impl ServerState {
    /// Removes a subscriber by id (threaded mode); balanced gauge
    /// accounting even when the reader thread and a failed broadcast
    /// race to remove the same entry.
    fn drop_subscriber(&self, id: u64) {
        let mut subs = self.subscribers.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        if subs.len() < before {
            metrics().server_subscribers.add(-1.0);
        }
    }
}

/// A [`SearchEngine`] served over TCP, with push invalidation to
/// subscribed brokers.
pub struct EngineServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl EngineServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `engine` under `name` with the default (event-loop)
    /// configuration.
    pub fn bind(
        name: impl Into<String>,
        engine: SearchEngine,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<EngineServer> {
        EngineServer::bind_with(name, engine, addr, ServerConfig::default())
    }

    /// [`EngineServer::bind`] with explicit scheduling and deadlines.
    pub fn bind_with(
        name: impl Into<String>,
        engine: SearchEngine,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<EngineServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            name: name.into(),
            engine: RwLock::new(Arc::new(engine)),
            epoch: AtomicU64::new(0),
            config,
            shutting_down: AtomicBool::new(false),
            subscribers: Mutex::new(Vec::new()),
            next_subscriber_id: AtomicU64::new(0),
            event_subscribers: AtomicUsize::new(0),
            broadcasts: Mutex::new(Vec::new()),
            wake: Wake::new(),
        });
        let thread_state = Arc::clone(&state);
        let thread = match config.mode {
            ServerMode::EventLoop => std::thread::Builder::new()
                .name(format!("seu-net-loop-{}", state.name))
                .spawn(move || event_loop(listener, thread_state))?,
            ServerMode::ThreadPerConnection => std::thread::Builder::new()
                .name(format!("seu-net-accept-{}", state.name))
                .spawn(move || accept_loop(listener, thread_state))?,
        };
        Ok(EngineServer {
            state,
            addr,
            thread: Some(thread),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The advertised engine name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The server-side change epoch: how many times [`replace_engine`]
    /// has swapped the collection.
    ///
    /// [`replace_engine`]: EngineServer::replace_engine
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }

    /// Live subscriber connections.
    pub fn subscriber_count(&self) -> usize {
        match self.state.config.mode {
            ServerMode::EventLoop => self.state.event_subscribers.load(Ordering::SeqCst),
            ServerMode::ThreadPerConnection => self.state.subscribers.lock().len(),
        }
    }

    /// Swaps the served collection and pushes an
    /// [`Message::InvalidateNotice`] with the new fingerprint to every
    /// subscriber. Returns the number of subscribers the notice goes to
    /// (in event-loop mode delivery is asynchronous: the count is of
    /// registered subscribers at the swap, each of which either receives
    /// the notice or is detected dead and dropped).
    pub fn replace_engine(&self, engine: SearchEngine) -> usize {
        let fingerprint = engine.fingerprint();
        *self.state.engine.write() = Arc::new(engine);
        let epoch = self.state.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let notice = Message::InvalidateNotice {
            name: self.state.name.clone(),
            fingerprint,
            epoch,
        };
        let (kind, payload) = notice.encode();
        match self.state.config.mode {
            ServerMode::EventLoop => {
                let notified = self.state.event_subscribers.load(Ordering::SeqCst);
                self.state.broadcasts.lock().push((kind, payload));
                self.state.wake.notify();
                notified
            }
            ServerMode::ThreadPerConnection => {
                let mut notified = 0;
                let mut dead = Vec::new();
                {
                    let mut subs = self.state.subscribers.lock();
                    for sub in subs.iter_mut() {
                        match write_frame(&mut sub.stream, kind, &payload) {
                            Ok(()) => {
                                metrics().push_notices_sent.inc();
                                notified += 1;
                            }
                            Err(_) => dead.push(sub.id),
                        }
                    }
                }
                for id in dead {
                    self.state.drop_subscriber(id);
                }
                notified
            }
        }
    }

    /// Stops accepting, closes every connection, and joins the serving
    /// thread (the event loop also joins its workers).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake whichever loop is serving: the event loop sleeps on the
        // condvar, the threaded accept loop blocks in accept().
        self.state.wake.notify();
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let ids: Vec<u64> = {
            let subs = self.state.subscribers.lock();
            for sub in subs.iter() {
                let _ = sub.stream.shutdown(Shutdown::Both);
            }
            subs.iter().map(|s| s.id).collect()
        };
        for id in ids {
            self.state.drop_subscriber(id);
        }
    }
}

impl Drop for EngineServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for EngineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineServer")
            .field("name", &self.state.name)
            .field("addr", &self.addr)
            .field("mode", &self.state.config.mode)
            .field("epoch", &self.epoch())
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Event-loop scheduler
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    /// Accepted but no Hello yet.
    Handshake,
    Request,
    Subscriber,
}

struct EventConn {
    stream: TcpStream,
    kind: ConnKind,
    /// Guards against a completed job landing on a recycled slot.
    gen: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf`.
    wstart: usize,
    last_activity: Instant,
    /// Flush the write buffer, then close.
    closing: bool,
    dead: bool,
}

impl EventConn {
    fn enqueue(&mut self, corr: u64, message: &Message) {
        let (kind, payload) = message.encode();
        encode_frame_into(&mut self.wbuf, corr, kind, &payload);
    }
}

/// Deadlines the timer wheel tracks for the loop.
enum Deadline {
    ConnIdle { slot: usize, gen: u64 },
    Request { slot: usize, gen: u64, corr: u64 },
}

/// A request handed to the worker pool.
struct Job {
    slot: usize,
    gen: u64,
    corr: u64,
    request: Message,
}

/// A computed reply on its way back to the loop.
struct Done {
    slot: usize,
    gen: u64,
    corr: u64,
    reply: Message,
}

fn conn_mut(conns: &mut [Option<EventConn>], slot: usize, gen: u64) -> Option<&mut EventConn> {
    conns
        .get_mut(slot)
        .and_then(|c| c.as_mut())
        .filter(|c| c.gen == gen && !c.dead)
}

fn event_loop(listener: TcpListener, state: Arc<ServerState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let workers = if state.config.workers > 0 {
        state.config.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8)
    };
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(std::sync::Mutex::new(job_rx));
    let completions: Arc<std::sync::Mutex<Vec<Done>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let worker_threads: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let rx = Arc::clone(&job_rx);
            let done = Arc::clone(&completions);
            let st = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("seu-net-worker-{}-{i}", st.name))
                .spawn(move || worker_loop(rx, done, st))
                .expect("spawning worker thread")
        })
        .collect();

    let mut conns: Vec<Option<EventConn>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 1;
    let mut wheel: TimerWheel<Deadline> = TimerWheel::new(Duration::from_millis(25), 512);
    let mut req_deadlines: HashMap<(usize, u64, u64), crate::timer::TimerKey> = HashMap::new();
    let mut expired: Vec<Deadline> = Vec::new();
    let mut idle_sleep = IDLE_SLEEP_MIN;
    let m = metrics();

    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let mut activity = false;
        let now = Instant::now();

        // New connections.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    activity = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    m.server_connections.inc();
                    m.server_active_connections.add(1.0);
                    let gen = next_gen;
                    next_gen += 1;
                    let conn = EventConn {
                        stream,
                        kind: ConnKind::Handshake,
                        gen,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wstart: 0,
                        last_activity: now,
                        closing: false,
                        dead: false,
                    };
                    let slot = match free_slots.pop() {
                        Some(s) => {
                            conns[s] = Some(conn);
                            s
                        }
                        None => {
                            conns.push(Some(conn));
                            conns.len() - 1
                        }
                    };
                    wheel.insert(
                        now,
                        state.config.idle_timeout,
                        Deadline::ConnIdle { slot, gen },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Finished jobs → write buffers (unless their deadline already
        // fired, in which case the requester was told and moved on).
        let done: Vec<Done> = {
            let mut lock = completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *lock)
        };
        for d in done {
            activity = true;
            match req_deadlines.remove(&(d.slot, d.gen, d.corr)) {
                Some(key) => {
                    wheel.cancel(key);
                }
                None => continue,
            }
            if let Some(conn) = conn_mut(&mut conns, d.slot, d.gen) {
                let fatal = matches!(d.reply, Message::Error { .. });
                conn.enqueue(d.corr, &d.reply);
                if fatal {
                    conn.closing = true;
                }
            }
        }

        // Pending broadcasts → every subscriber's write buffer.
        let notices: Vec<(u8, Vec<u8>)> = {
            let mut lock = state.broadcasts.lock();
            std::mem::take(&mut *lock)
        };
        for (kind, payload) in &notices {
            activity = true;
            for conn in conns.iter_mut().flatten() {
                if conn.kind == ConnKind::Subscriber && !conn.dead && !conn.closing {
                    encode_frame_into(&mut conn.wbuf, 0, *kind, payload);
                    m.push_notices_sent.inc();
                }
            }
        }

        // Readable data → frames → inline replies or worker jobs.
        for (slot, entry) in conns.iter_mut().enumerate() {
            let Some(conn) = entry.as_mut() else {
                continue;
            };
            if conn.dead || conn.closing {
                continue;
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // Peer closed; flush anything already queued.
                        conn.closing = true;
                        activity = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        conn.last_activity = now;
                        activity = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            // Drain complete frames from the read buffer.
            let mut consumed = 0;
            loop {
                match parse_frame(&conn.rbuf[consumed..], crate::frame::MAX_FRAME_BYTES) {
                    Ok(Some((frame, used))) => {
                        consumed += used;
                        handle_frame(
                            &state,
                            conn,
                            slot,
                            frame,
                            &job_tx,
                            &mut wheel,
                            &mut req_deadlines,
                            now,
                        );
                        if conn.closing || conn.dead {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        conn.enqueue(
                            0,
                            &Message::Error {
                                detail: format!("invalid frame: {e}"),
                            },
                        );
                        conn.closing = true;
                        break;
                    }
                }
            }
            if consumed > 0 {
                conn.rbuf.drain(..consumed);
            }
        }

        // Deadlines.
        wheel.advance(now, &mut expired);
        for deadline in expired.drain(..) {
            match deadline {
                Deadline::ConnIdle { slot, gen } => {
                    if let Some(conn) = conn_mut(&mut conns, slot, gen) {
                        if conn.kind == ConnKind::Subscriber {
                            continue; // long-lived by design
                        }
                        let idle = now.saturating_duration_since(conn.last_activity);
                        if idle >= state.config.idle_timeout {
                            conn.dead = true;
                            activity = true;
                        } else {
                            wheel.insert(
                                now,
                                state.config.idle_timeout - idle,
                                Deadline::ConnIdle { slot, gen },
                            );
                        }
                    }
                }
                Deadline::Request { slot, gen, corr } => {
                    if req_deadlines.remove(&(slot, gen, corr)).is_some() {
                        m.server_deadline_drops.inc();
                        if let Some(conn) = conn_mut(&mut conns, slot, gen) {
                            conn.enqueue(
                                corr,
                                &Message::Error {
                                    detail: format!(
                                        "request deadline ({:?}) exceeded",
                                        state.config.request_timeout
                                    ),
                                },
                            );
                            activity = true;
                        }
                    }
                }
            }
        }

        // Flush write buffers; reap finished and dead connections.
        for (slot, entry) in conns.iter_mut().enumerate() {
            let Some(conn) = entry.as_mut() else {
                continue;
            };
            if !conn.dead && conn.wstart < conn.wbuf.len() {
                loop {
                    match conn.stream.write(&conn.wbuf[conn.wstart..]) {
                        Ok(0) => {
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.wstart += n;
                            activity = true;
                            if conn.wstart == conn.wbuf.len() {
                                conn.wbuf.clear();
                                conn.wstart = 0;
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                if conn.wbuf.len() - conn.wstart > MAX_WRITE_BUFFER {
                    conn.dead = true; // slow consumer
                }
            }
            if conn.closing && conn.wstart >= conn.wbuf.len() {
                conn.dead = true;
            }
            if conn.dead {
                if conn.kind == ConnKind::Subscriber {
                    state.event_subscribers.fetch_sub(1, Ordering::SeqCst);
                    m.server_subscribers.add(-1.0);
                }
                let _ = conn.stream.shutdown(Shutdown::Both);
                m.server_active_connections.add(-1.0);
                *entry = None;
                free_slots.push(slot);
                activity = true;
            }
        }

        if activity {
            idle_sleep = IDLE_SLEEP_MIN;
        } else {
            state.wake.wait(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(IDLE_SLEEP_MAX);
        }
    }

    // Shutdown: close every connection, then drain the worker pool.
    for conn in conns.iter_mut().flatten() {
        if conn.kind == ConnKind::Subscriber {
            state.event_subscribers.fetch_sub(1, Ordering::SeqCst);
            metrics().server_subscribers.add(-1.0);
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
        metrics().server_active_connections.add(-1.0);
    }
    drop(job_tx);
    for t in worker_threads {
        let _ = t.join();
    }
}

/// Routes one parsed frame: handshake transitions, inline pongs, or a
/// job for the worker pool (with its deadline armed).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    state: &Arc<ServerState>,
    conn: &mut EventConn,
    slot: usize,
    frame: crate::frame::Frame,
    job_tx: &mpsc::Sender<Job>,
    wheel: &mut TimerWheel<Deadline>,
    req_deadlines: &mut HashMap<(usize, u64, u64), crate::timer::TimerKey>,
    now: Instant,
) {
    let m = metrics();
    match conn.kind {
        ConnKind::Handshake => {
            match Message::decode(frame.kind, &frame.payload) {
                Ok(Message::Hello { subscribe }) => {
                    if subscribe {
                        conn.kind = ConnKind::Subscriber;
                        // Count first, ack second: a client holding its
                        // ack is guaranteed to be in the next
                        // replace_engine's subscriber count.
                        state.event_subscribers.fetch_add(1, Ordering::SeqCst);
                        m.server_subscribers.add(1.0);
                    } else {
                        conn.kind = ConnKind::Request;
                    }
                    // Echoing the correlation id doubles as capability
                    // negotiation: a nonzero echo tells the client this
                    // server multiplexes.
                    conn.enqueue(
                        frame.corr,
                        &Message::HelloAck {
                            name: state.name.clone(),
                        },
                    );
                }
                Ok(other) => {
                    conn.enqueue(
                        frame.corr,
                        &Message::Error {
                            detail: format!("expected Hello, got {other:?}"),
                        },
                    );
                    conn.closing = true;
                }
                Err(e) => {
                    conn.enqueue(
                        frame.corr,
                        &Message::Error {
                            detail: format!("undecodable request: {e}"),
                        },
                    );
                    conn.closing = true;
                }
            }
        }
        ConnKind::Request => {
            m.server_requests.inc();
            match Message::decode(frame.kind, &frame.payload) {
                Ok(Message::Ping) => conn.enqueue(frame.corr, &Message::Pong),
                Ok(request) => {
                    let key = wheel.insert(
                        now,
                        state.config.request_timeout,
                        Deadline::Request {
                            slot,
                            gen: conn.gen,
                            corr: frame.corr,
                        },
                    );
                    req_deadlines.insert((slot, conn.gen, frame.corr), key);
                    let _ = job_tx.send(Job {
                        slot,
                        gen: conn.gen,
                        corr: frame.corr,
                        request,
                    });
                }
                Err(e) => {
                    conn.enqueue(
                        frame.corr,
                        &Message::Error {
                            detail: format!("undecodable request: {e}"),
                        },
                    );
                    conn.closing = true;
                }
            }
        }
        // Subscribers carry no requests; stray frames are ignored.
        ConnKind::Subscriber => {}
    }
}

fn worker_loop(
    job_rx: Arc<std::sync::Mutex<mpsc::Receiver<Job>>>,
    completions: Arc<std::sync::Mutex<Vec<Done>>>,
    state: Arc<ServerState>,
) {
    loop {
        // Holding the lock across recv serializes the *wait*, not the
        // work: the holder releases as soon as a job arrives.
        let job = {
            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else { return };
        let reply = answer(&state, job.request);
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Done {
                slot: job.slot,
                gen: job.gen,
                corr: job.corr,
                reply,
            });
        state.wake.notify();
    }
}

// ---------------------------------------------------------------------
// Thread-per-connection scheduler (benchmark baseline)
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        metrics().server_connections.inc();
        let conn_state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name(format!("seu-net-conn-{}", state.name))
            .spawn(move || {
                let _ = serve_connection(stream, conn_state);
            });
    }
}

/// Runs one connection to completion; errors just end the connection.
fn serve_connection(mut stream: TcpStream, state: Arc<ServerState>) -> Result<(), TransportError> {
    stream
        .set_read_timeout(Some(state.config.idle_timeout))
        .map_err(|e| crate::frame::io_error(&e, "setting read timeout"))?;
    let hello = read_frame(&mut stream)?;
    let hello_corr = hello.corr;
    let subscribe = match Message::decode(hello.kind, &hello.payload) {
        Ok(Message::Hello { subscribe }) => subscribe,
        Ok(other) => {
            let (kind, payload) = Message::Error {
                detail: format!("expected Hello, got {other:?}"),
            }
            .encode();
            let _ = write_frame_corr(&mut stream, hello_corr, kind, &payload);
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let (kind, payload) = Message::HelloAck {
        name: state.name.clone(),
    }
    .encode();
    if subscribe {
        serve_subscriber(stream, state, hello_corr, kind, &payload)
    } else {
        // Requests are answered strictly in arrival order on this
        // scheduler, so echoing the id is still a correct multiplexing
        // contract: pipelined replies come back in request order with
        // matching ids.
        write_frame_corr(&mut stream, hello_corr, kind, &payload)?;
        serve_requests(stream, state)
    }
}

/// A subscriber connection carries no requests: register the write half
/// for broadcasts and park reading until the peer hangs up. The ack is
/// written under the subscribers lock, *after* registration, so a
/// concurrent [`EngineServer::replace_engine`] can neither skip this
/// subscriber nor push a notice ahead of the ack.
fn serve_subscriber(
    stream: TcpStream,
    state: Arc<ServerState>,
    ack_corr: u64,
    ack_kind: u8,
    ack_payload: &[u8],
) -> Result<(), TransportError> {
    let write_half = stream
        .try_clone()
        .map_err(|e| crate::frame::io_error(&e, "cloning subscriber stream"))?;
    let id = state.next_subscriber_id.fetch_add(1, Ordering::SeqCst);
    {
        let mut subs = state.subscribers.lock();
        subs.push(Subscriber {
            id,
            stream: write_half,
        });
        let sub = subs.last_mut().expect("just pushed");
        if let Err(e) = write_frame_corr(&mut sub.stream, ack_corr, ack_kind, ack_payload) {
            subs.pop();
            return Err(e);
        }
    }
    metrics().server_subscribers.add(1.0);

    let mut read_half = stream;
    // Block (without the idle cap — subscriptions are long-lived) until
    // the peer disconnects; any frame it does send is ignored.
    let _ = read_half.set_read_timeout(None);
    loop {
        if read_frame(&mut read_half).is_err() {
            break;
        }
    }
    state.drop_subscriber(id);
    Ok(())
}

fn serve_requests(mut stream: TcpStream, state: Arc<ServerState>) -> Result<(), TransportError> {
    loop {
        // EOF / reset / idle timeout: the client is done with us.
        let frame = read_frame(&mut stream)?;
        metrics().server_requests.inc();
        let reply = match Message::decode(frame.kind, &frame.payload) {
            Ok(request) => answer(&state, request),
            Err(e) => Message::Error {
                detail: format!("undecodable request: {e}"),
            },
        };
        let fatal = matches!(reply, Message::Error { .. });
        let (kind, payload) = reply.encode();
        write_frame_corr(&mut stream, frame.corr, kind, &payload)?;
        if fatal {
            return Ok(());
        }
    }
}

fn answer(state: &ServerState, request: Message) -> Message {
    let engine = Arc::clone(&state.engine.read());
    match request {
        Message::SearchDocs { query, threshold } => {
            let c = engine.collection();
            let q = c.query_from_text(&query);
            let hits = engine
                .search_threshold(&q, threshold)
                .into_iter()
                .map(|h| RemoteHit {
                    doc: c.doc(h.doc).name.clone(),
                    sim: h.sim,
                })
                .collect();
            Message::SearchResults { hits }
        }
        Message::TracedSearchDocs {
            query,
            threshold,
            trace_id,
            parent_span,
            sampled,
        } => {
            metrics().server_traced_searches.inc();
            let started = std::time::Instant::now();
            let start_unix_ns = seu_obs::unix_now_ns();
            let c = engine.collection();
            let q = c.query_from_text(&query);
            let hits: Vec<RemoteHit> = engine
                .search_threshold(&q, threshold)
                .into_iter()
                .map(|h| RemoteHit {
                    doc: c.doc(h.doc).name.clone(),
                    sim: h.sim,
                })
                .collect();
            // Author the server-side span by hand: there is no tracer on
            // this side, just an id minted into the caller's trace. The
            // caller grafts it under its dispatch span via the parent
            // link carried in the request.
            let spans = if sampled {
                vec![seu_obs::SpanRecord {
                    id: seu_obs::new_span_id(),
                    parent: seu_obs::SpanId(parent_span),
                    name: "remote_search".to_string(),
                    start_unix_ns,
                    duration_ns: started.elapsed().as_nanos() as u64,
                    attrs: vec![
                        ("engine".to_string(), state.name.clone()),
                        ("hits".to_string(), hits.len().to_string()),
                        ("trace_id".to_string(), seu_obs::TraceId(trace_id).to_hex()),
                    ],
                }]
            } else {
                Vec::new()
            };
            Message::TracedSearchResults { hits, spans }
        }
        Message::Estimate { query, threshold } => {
            let q = engine.collection().query_from_text(&query);
            let u = engine.true_usefulness(&q, threshold);
            Message::Usefulness {
                no_doc: u.no_doc,
                avg_sim: u.avg_sim,
                max_sim: u.max_sim,
            }
        }
        Message::EstimateBatch { queries, threshold } => {
            metrics().server_batch_requests.inc();
            let c = engine.collection();
            let results = queries
                .iter()
                .map(|query| {
                    let q = c.query_from_text(query);
                    engine.true_usefulness(&q, threshold)
                })
                .collect();
            Message::UsefulnessBatch { results }
        }
        Message::GetRepresentative => Message::Representative {
            snapshot: EngineSnapshot::of_engine(&state.name, &engine),
        },
        Message::Ping => Message::Pong,
        other => Message::Error {
            detail: format!("unexpected request {other:?}"),
        },
    }
}
