//! The engine side of the wire: a TCP server wrapping one
//! [`SearchEngine`].
//!
//! [`EngineServer::bind`] puts an engine on a socket with a
//! thread-per-connection accept loop. Two connection modes exist, chosen
//! by the client's opening [`Message::Hello`]:
//!
//! * **request connections** (`subscribe: false`) serve the broker's
//!   calls — search, true usefulness, snapshot fetch, ping — one
//!   request/response pair per frame exchange;
//! * **subscriber connections** (`subscribe: true`) are held open and
//!   receive a pushed [`Message::InvalidateNotice`] whenever
//!   [`EngineServer::replace_engine`] swaps the collection. This is what
//!   lets a broker learn of collection changes without polling or
//!   sweeping: staleness travels *from* the engine *to* the broker.
//!
//! The server never panics on a misbehaving peer: undecodable frames get
//! a typed [`Message::Error`] reply (when the socket still writes) and
//! the connection is dropped.

use crate::frame::{read_frame, write_frame};
use crate::metrics::metrics;
use crate::wire::Message;
use parking_lot::{Mutex, RwLock};
use seu_engine::SearchEngine;
use seu_metasearch::{EngineSnapshot, RemoteHit, TransportError};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Idle cap on request connections: a client that connects and then goes
/// silent for this long is dropped rather than holding a thread forever.
const REQUEST_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

struct Subscriber {
    id: u64,
    stream: TcpStream,
}

struct ServerState {
    name: String,
    engine: RwLock<Arc<SearchEngine>>,
    epoch: AtomicU64,
    subscribers: Mutex<Vec<Subscriber>>,
    next_subscriber_id: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServerState {
    /// Removes a subscriber by id; balanced gauge accounting even when
    /// the reader thread and a failed broadcast race to remove the same
    /// entry.
    fn drop_subscriber(&self, id: u64) {
        let mut subs = self.subscribers.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        if subs.len() < before {
            metrics().server_subscribers.add(-1.0);
        }
    }
}

/// A [`SearchEngine`] served over TCP, with push invalidation to
/// subscribed brokers.
pub struct EngineServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl EngineServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `engine` under `name`.
    pub fn bind(
        name: impl Into<String>,
        engine: SearchEngine,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<EngineServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            name: name.into(),
            engine: RwLock::new(Arc::new(engine)),
            epoch: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
            next_subscriber_id: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name(format!("seu-net-accept-{}", state.name))
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(EngineServer {
            state,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The advertised engine name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The server-side change epoch: how many times [`replace_engine`]
    /// has swapped the collection.
    ///
    /// [`replace_engine`]: EngineServer::replace_engine
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }

    /// Live subscriber connections.
    pub fn subscriber_count(&self) -> usize {
        self.state.subscribers.lock().len()
    }

    /// Swaps the served collection and pushes an
    /// [`Message::InvalidateNotice`] with the new fingerprint to every
    /// subscriber. Returns the number of subscribers notified.
    pub fn replace_engine(&self, engine: SearchEngine) -> usize {
        let fingerprint = engine.fingerprint();
        *self.state.engine.write() = Arc::new(engine);
        let epoch = self.state.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let notice = Message::InvalidateNotice {
            name: self.state.name.clone(),
            fingerprint,
            epoch,
        };
        let (kind, payload) = notice.encode();
        let mut notified = 0;
        let mut dead = Vec::new();
        {
            let mut subs = self.state.subscribers.lock();
            for sub in subs.iter_mut() {
                match write_frame(&mut sub.stream, kind, &payload) {
                    Ok(()) => {
                        metrics().push_notices_sent.inc();
                        notified += 1;
                    }
                    Err(_) => dead.push(sub.id),
                }
            }
        }
        for id in dead {
            self.state.drop_subscriber(id);
        }
        notified
    }

    /// Stops accepting, closes every subscriber connection, and joins
    /// the accept thread. In-flight request connections finish (or hit
    /// the idle timeout) on their own detached threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let ids: Vec<u64> = {
            let subs = self.state.subscribers.lock();
            for sub in subs.iter() {
                let _ = sub.stream.shutdown(Shutdown::Both);
            }
            subs.iter().map(|s| s.id).collect()
        };
        for id in ids {
            self.state.drop_subscriber(id);
        }
    }
}

impl Drop for EngineServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for EngineServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineServer")
            .field("name", &self.state.name)
            .field("addr", &self.addr)
            .field("epoch", &self.epoch())
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        metrics().server_connections.inc();
        let conn_state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name(format!("seu-net-conn-{}", state.name))
            .spawn(move || {
                let _ = serve_connection(stream, conn_state);
            });
    }
}

/// Runs one connection to completion; errors just end the connection.
fn serve_connection(mut stream: TcpStream, state: Arc<ServerState>) -> Result<(), TransportError> {
    stream
        .set_read_timeout(Some(REQUEST_IDLE_TIMEOUT))
        .map_err(|e| crate::frame::io_error(&e, "setting read timeout"))?;
    let hello = read_frame(&mut stream).and_then(|f| Message::decode(f.kind, &f.payload))?;
    let subscribe = match hello {
        Message::Hello { subscribe } => subscribe,
        other => {
            let (kind, payload) = Message::Error {
                detail: format!("expected Hello, got {other:?}"),
            }
            .encode();
            let _ = write_frame(&mut stream, kind, &payload);
            return Ok(());
        }
    };
    let (kind, payload) = Message::HelloAck {
        name: state.name.clone(),
    }
    .encode();
    if subscribe {
        serve_subscriber(stream, state, kind, &payload)
    } else {
        write_frame(&mut stream, kind, &payload)?;
        serve_requests(stream, state)
    }
}

/// A subscriber connection carries no requests: register the write half
/// for broadcasts and park reading until the peer hangs up. The ack is
/// written under the subscribers lock, *after* registration, so a
/// concurrent [`EngineServer::replace_engine`] can neither skip this
/// subscriber nor push a notice ahead of the ack.
fn serve_subscriber(
    stream: TcpStream,
    state: Arc<ServerState>,
    ack_kind: u8,
    ack_payload: &[u8],
) -> Result<(), TransportError> {
    let write_half = stream
        .try_clone()
        .map_err(|e| crate::frame::io_error(&e, "cloning subscriber stream"))?;
    let id = state.next_subscriber_id.fetch_add(1, Ordering::SeqCst);
    {
        let mut subs = state.subscribers.lock();
        subs.push(Subscriber {
            id,
            stream: write_half,
        });
        let sub = subs.last_mut().expect("just pushed");
        if let Err(e) = write_frame(&mut sub.stream, ack_kind, ack_payload) {
            subs.pop();
            return Err(e);
        }
    }
    metrics().server_subscribers.add(1.0);

    let mut read_half = stream;
    // Block (without the idle cap — subscriptions are long-lived) until
    // the peer disconnects; any frame it does send is ignored.
    let _ = read_half.set_read_timeout(None);
    loop {
        if read_frame(&mut read_half).is_err() {
            break;
        }
    }
    state.drop_subscriber(id);
    Ok(())
}

fn serve_requests(mut stream: TcpStream, state: Arc<ServerState>) -> Result<(), TransportError> {
    loop {
        // EOF / reset / idle timeout: the client is done with us.
        let frame = read_frame(&mut stream)?;
        metrics().server_requests.inc();
        let reply = match Message::decode(frame.kind, &frame.payload) {
            Ok(request) => answer(&state, request),
            Err(e) => Message::Error {
                detail: format!("undecodable request: {e}"),
            },
        };
        let fatal = matches!(reply, Message::Error { .. });
        let (kind, payload) = reply.encode();
        write_frame(&mut stream, kind, &payload)?;
        if fatal {
            return Ok(());
        }
    }
}

fn answer(state: &ServerState, request: Message) -> Message {
    let engine = Arc::clone(&state.engine.read());
    match request {
        Message::SearchDocs { query, threshold } => {
            let c = engine.collection();
            let q = c.query_from_text(&query);
            let hits = engine
                .search_threshold(&q, threshold)
                .into_iter()
                .map(|h| RemoteHit {
                    doc: c.doc(h.doc).name.clone(),
                    sim: h.sim,
                })
                .collect();
            Message::SearchResults { hits }
        }
        Message::TracedSearchDocs {
            query,
            threshold,
            trace_id,
            parent_span,
            sampled,
        } => {
            metrics().server_traced_searches.inc();
            let started = std::time::Instant::now();
            let start_unix_ns = seu_obs::unix_now_ns();
            let c = engine.collection();
            let q = c.query_from_text(&query);
            let hits: Vec<RemoteHit> = engine
                .search_threshold(&q, threshold)
                .into_iter()
                .map(|h| RemoteHit {
                    doc: c.doc(h.doc).name.clone(),
                    sim: h.sim,
                })
                .collect();
            // Author the server-side span by hand: there is no tracer on
            // this side, just an id minted into the caller's trace. The
            // caller grafts it under its dispatch span via the parent
            // link carried in the request.
            let spans = if sampled {
                vec![seu_obs::SpanRecord {
                    id: seu_obs::new_span_id(),
                    parent: seu_obs::SpanId(parent_span),
                    name: "remote_search".to_string(),
                    start_unix_ns,
                    duration_ns: started.elapsed().as_nanos() as u64,
                    attrs: vec![
                        ("engine".to_string(), state.name.clone()),
                        ("hits".to_string(), hits.len().to_string()),
                        ("trace_id".to_string(), seu_obs::TraceId(trace_id).to_hex()),
                    ],
                }]
            } else {
                Vec::new()
            };
            Message::TracedSearchResults { hits, spans }
        }
        Message::Estimate { query, threshold } => {
            let q = engine.collection().query_from_text(&query);
            let u = engine.true_usefulness(&q, threshold);
            Message::Usefulness {
                no_doc: u.no_doc,
                avg_sim: u.avg_sim,
                max_sim: u.max_sim,
            }
        }
        Message::GetRepresentative => Message::Representative {
            snapshot: EngineSnapshot::of_engine(&state.name, &engine),
        },
        Message::Ping => Message::Pong,
        other => Message::Error {
            detail: format!("unexpected request {other:?}"),
        },
    }
}
