//! The message layer: what travels inside frames.
//!
//! One [`Message`] per frame, discriminated by the frame's kind byte.
//! The vocabulary is small and fixed — the five calls a broker makes of
//! an engine, their answers, the push invalidation notice, and a typed
//! error:
//!
//! | kind | message | direction |
//! |------|---------|-----------|
//! | 1 | [`Message::Hello`] | client → server (first frame) |
//! | 2 | [`Message::HelloAck`] | server → client |
//! | 3 | [`Message::SearchDocs`] | client → server |
//! | 4 | [`Message::SearchResults`] | server → client |
//! | 5 | [`Message::Estimate`] | client → server |
//! | 6 | [`Message::Usefulness`] | server → client |
//! | 7 | [`Message::GetRepresentative`] | client → server |
//! | 8 | [`Message::Representative`] | server → client |
//! | 9 | [`Message::InvalidateNotice`] | server → subscriber (pushed) |
//! | 10 | [`Message::Ping`] | client → server |
//! | 11 | [`Message::Pong`] | server → client |
//! | 12 | [`Message::Error`] | server → client |
//! | 13 | [`Message::TracedSearchDocs`] | client → server |
//! | 14 | [`Message::TracedSearchResults`] | server → client |
//! | 15 | [`Message::EstimateBatch`] | client → server |
//! | 16 | [`Message::UsefulnessBatch`] | server → client |
//! | 17 | [`Message::ReplicaEstimate`] | front-door → replica broker |
//! | 18 | [`Message::ReplicaEstimates`] | replica broker → front-door |
//! | 19 | [`Message::ReplicaSearch`] | front-door → replica broker |
//! | 20 | [`Message::ReplicaSearchResults`] | replica broker → front-door |
//! | 21 | [`Message::InstallEngine`] | front-door → replica broker |
//! | 22 | [`Message::InstallAck`] | replica broker → front-door |
//! | 23 | [`Message::RemoveEngine`] | front-door → replica broker |
//! | 24 | [`Message::RemoveAck`] | replica broker → front-door |
//! | 25 | [`Message::ExportEngine`] | front-door → replica broker |
//!
//! Kinds 17–25 are the **federation vocabulary**: what a front-door
//! broker (`seu_metasearch::FrontDoor`) asks of a back-end broker
//! replica. Subset estimates and searches (17–20) carry explicit engine
//! name lists so the front-door controls placement; 21–24 move engines
//! between replicas (the rebalance path ships an
//! [`EngineSnapshot`] so the receiving replica hydrates without
//! re-registration); 25 is answered with the existing kind 8
//! [`Message::Representative`]. Peers that predate federation answer
//! all of them with [`Message::Error`] (unknown kind), which the
//! caller surfaces as a typed
//! [`Remote`](TransportErrorKind::Remote) failure.
//!
//! Kinds 13/14 carry distributed-trace context
//! (`trace_id`/`parent_span_id`/`sampled`) alongside a search and bring
//! the server-side spans back with the hits. They are **additive**: a
//! client only sends kind 13 when its trace is sampled, and peers that
//! predate the kind answer it with [`Message::Error`] (their decoder
//! rejects unknown kinds), which the client treats as "legacy peer" and
//! transparently retries as a plain [`Message::SearchDocs`] — so mixed
//! fleets interop and the untraced path stays byte-identical.
//!
//! Representatives travel as [`FrozenSummary::to_bytes_exact`] — full
//! f64 statistics — because the whole point of shipping them is that
//! the receiving broker's estimates are **byte-identical** to a local
//! broker's. Every length field read off the wire is validated against
//! the bytes actually remaining before it is trusted, mirroring the
//! `FrozenSummary::from_bytes` hardening.

use bytes::{Buf, BufMut, BytesMut};
use seu_core::Usefulness;
use seu_engine::{Fingerprint, TrueUsefulness, WeightingScheme};
use seu_metasearch::{
    DispatchOutcome, EngineDispatchStats, EngineEstimate, EngineSnapshot, MergedHit, RemoteHit,
    TransportError, TransportErrorKind,
};
use seu_repr::FrozenSummary;
use seu_text::AnalyzerConfig;

/// One protocol message (see the module table for kinds and directions).
#[derive(Debug, Clone)]
pub enum Message {
    /// Opens a connection: `subscribe` asks the server to keep this
    /// connection open and push [`Message::InvalidateNotice`] frames on
    /// collection changes instead of serving requests on it.
    Hello {
        /// Whether this connection is a push-invalidation subscription.
        subscribe: bool,
    },
    /// The server's answer to [`Message::Hello`]: its advertised engine
    /// name.
    HelloAck {
        /// The engine's registration name.
        name: String,
    },
    /// Search request: the server analyzes the raw query text itself
    /// (its analyzer configuration is part of the snapshot, so broker
    /// and engine agree) and returns hits above the threshold.
    SearchDocs {
        /// Raw query text.
        query: String,
        /// Similarity threshold `T`.
        threshold: f64,
    },
    /// Answer to [`Message::SearchDocs`]: named hits, best first.
    SearchResults {
        /// The hits.
        hits: Vec<RemoteHit>,
    },
    /// Oracle request: the engine's exact usefulness for a query.
    Estimate {
        /// Raw query text.
        query: String,
        /// Similarity threshold `T`.
        threshold: f64,
    },
    /// Answer to [`Message::Estimate`].
    Usefulness {
        /// `NoDoc(T, q, D)`.
        no_doc: u64,
        /// `AvgSim(T, q, D)`.
        avg_sim: f64,
        /// Largest similarity of any matching document.
        max_sim: f64,
    },
    /// Snapshot request (no payload).
    GetRepresentative,
    /// Answer to [`Message::GetRepresentative`]: the engine's full
    /// planning snapshot.
    Representative {
        /// The snapshot.
        snapshot: EngineSnapshot,
    },
    /// Pushed to subscribers when the engine's collection changes: the
    /// new content fingerprint and the server's monotonically increasing
    /// change epoch.
    InvalidateNotice {
        /// The engine's registration name.
        name: String,
        /// Fingerprint of the collection now serving.
        fingerprint: Fingerprint,
        /// Server-side change epoch (0 = the collection the server
        /// started with).
        epoch: u64,
    },
    /// Liveness probe (no payload).
    Ping,
    /// Answer to [`Message::Ping`] (no payload).
    Pong,
    /// A typed error the server reports instead of an answer.
    Error {
        /// Human-readable context.
        detail: String,
    },
    /// [`Message::SearchDocs`] carrying the caller's trace context, so
    /// the server's spans join the caller's trace.
    TracedSearchDocs {
        /// Raw query text.
        query: String,
        /// Similarity threshold `T`.
        threshold: f64,
        /// The caller's trace id.
        trace_id: u64,
        /// The caller-side span the server's work nests under.
        parent_span: u64,
        /// The caller's head sampling decision.
        sampled: bool,
    },
    /// Answer to [`Message::TracedSearchDocs`]: the hits plus the spans
    /// the server recorded under the propagated context.
    TracedSearchResults {
        /// The hits, best first.
        hits: Vec<RemoteHit>,
        /// Server-side spans, parented (transitively) under the
        /// request's `parent_span`.
        spans: Vec<seu_obs::SpanRecord>,
    },
    /// Batched oracle request: many queries in one frame, so a broker
    /// sweep over its query pool costs one round trip per engine
    /// instead of one per (engine, query). Peers that predate the kind
    /// answer it with [`Message::Error`]; the client falls back to
    /// per-query [`Message::Estimate`] calls.
    EstimateBatch {
        /// Raw query texts, in the order answers are expected.
        queries: Vec<String>,
        /// Similarity threshold `T`, shared by the whole batch.
        threshold: f64,
    },
    /// Answer to [`Message::EstimateBatch`]: one usefulness triple per
    /// query, in request order.
    UsefulnessBatch {
        /// `(NoDoc, AvgSim, max similarity)` per query.
        results: Vec<TrueUsefulness>,
    },
    /// Front-door request: usefulness estimates for exactly the named
    /// engines this replica holds, in list order.
    ReplicaEstimate {
        /// Raw query text.
        query: String,
        /// Similarity threshold `T`.
        threshold: f64,
        /// Engine names, in the order answers are expected.
        engines: Vec<String>,
    },
    /// Answer to [`Message::ReplicaEstimate`]: one estimate per
    /// requested engine, in request order.
    ReplicaEstimates {
        /// Per-engine estimates (full-precision f64, so the front-door's
        /// reassembled global vector is bit-identical to a single
        /// broker's).
        estimates: Vec<EngineEstimate>,
    },
    /// Front-door request: search exactly the named engines and merge
    /// their hits above the threshold.
    ReplicaSearch {
        /// Raw query text.
        query: String,
        /// Similarity threshold `T`.
        threshold: f64,
        /// Engine names to dispatch.
        engines: Vec<String>,
    },
    /// Answer to [`Message::ReplicaSearch`]: the replica's merged hits
    /// plus per-engine dispatch accounting (including typed transport
    /// errors for engines that failed on the replica's side).
    ReplicaSearchResults {
        /// Replica-merged hits, best first.
        hits: Vec<MergedHit>,
        /// Per requested engine: hit count, latency, outcome, error.
        stats: Vec<EngineDispatchStats>,
    },
    /// Front-door order: install (or re-install — idempotent) an engine
    /// on this replica. At least one of `snapshot` (rebalance shipping:
    /// the replica hydrates planning state without re-registration) or
    /// `endpoint` (the replica dials the engine itself) is present.
    InstallEngine {
        /// Engine name (the global registration key).
        name: String,
        /// The engine's planning snapshot, when shipped.
        snapshot: Option<EngineSnapshot>,
        /// `host:port` of the engine's frame listener, when it serves
        /// live searches remotely.
        endpoint: Option<String>,
    },
    /// Answer to [`Message::InstallEngine`].
    InstallAck {
        /// The installed engine's name.
        name: String,
    },
    /// Front-door order: drop an engine from this replica.
    RemoveEngine {
        /// Engine name.
        name: String,
    },
    /// Answer to [`Message::RemoveEngine`].
    RemoveAck {
        /// Whether the engine was present (false: unknown name; removal
        /// is idempotent, not an error).
        removed: bool,
    },
    /// Front-door request: export the named engine's planning snapshot
    /// (for shipping to another replica). Answered with
    /// [`Message::Representative`].
    ExportEngine {
        /// Engine name.
        name: String,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_SEARCH_DOCS: u8 = 3;
const KIND_SEARCH_RESULTS: u8 = 4;
const KIND_ESTIMATE: u8 = 5;
const KIND_USEFULNESS: u8 = 6;
const KIND_GET_REPRESENTATIVE: u8 = 7;
const KIND_REPRESENTATIVE: u8 = 8;
const KIND_INVALIDATE_NOTICE: u8 = 9;
const KIND_PING: u8 = 10;
const KIND_PONG: u8 = 11;
const KIND_ERROR: u8 = 12;
const KIND_TRACED_SEARCH_DOCS: u8 = 13;
const KIND_TRACED_SEARCH_RESULTS: u8 = 14;
const KIND_ESTIMATE_BATCH: u8 = 15;
const KIND_USEFULNESS_BATCH: u8 = 16;
const KIND_REPLICA_ESTIMATE: u8 = 17;
const KIND_REPLICA_ESTIMATES: u8 = 18;
const KIND_REPLICA_SEARCH: u8 = 19;
const KIND_REPLICA_SEARCH_RESULTS: u8 = 20;
const KIND_INSTALL_ENGINE: u8 = 21;
const KIND_INSTALL_ACK: u8 = 22;
const KIND_REMOVE_ENGINE: u8 = 23;
const KIND_REMOVE_ACK: u8 = 24;
const KIND_EXPORT_ENGINE: u8 = 25;

fn protocol(detail: impl Into<String>) -> TransportError {
    TransportError::new(TransportErrorKind::Protocol, detail)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, TransportError> {
    if buf.remaining() < 4 {
        return Err(protocol("truncated string length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(protocol(format!(
            "string of {len} bytes but only {} remain",
            buf.remaining()
        )));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| protocol("string is not UTF-8"))
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, TransportError> {
    if buf.remaining() < 8 {
        return Err(protocol("truncated f64"));
    }
    Ok(buf.get_f64())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, TransportError> {
    if buf.remaining() < 8 {
        return Err(protocol("truncated u64"));
    }
    Ok(buf.get_u64())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, TransportError> {
    if buf.remaining() < 4 {
        return Err(protocol("truncated u32"));
    }
    Ok(buf.get_u32())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, TransportError> {
    if buf.remaining() < 1 {
        return Err(protocol("truncated u8"));
    }
    Ok(buf.get_u8())
}

fn put_fingerprint(buf: &mut BytesMut, fp: Fingerprint) {
    buf.put_u64(fp.n_docs);
    buf.put_u64(fp.raw_bytes);
    buf.put_u64(fp.hash);
}

fn get_fingerprint(buf: &mut &[u8]) -> Result<Fingerprint, TransportError> {
    Ok(Fingerprint {
        n_docs: get_u64(buf)?,
        raw_bytes: get_u64(buf)?,
        hash: get_u64(buf)?,
    })
}

fn put_scheme(buf: &mut BytesMut, scheme: WeightingScheme) {
    let (tag, slope) = match scheme {
        WeightingScheme::CosineTf => (0u8, 0.0),
        WeightingScheme::CosineLogTf => (1, 0.0),
        WeightingScheme::CosineTfIdf => (2, 0.0),
        WeightingScheme::PivotedLogTf { slope } => (3, slope),
    };
    buf.put_u8(tag);
    buf.put_f64(slope);
}

fn get_scheme(buf: &mut &[u8]) -> Result<WeightingScheme, TransportError> {
    let tag = get_u8(buf)?;
    let slope = get_f64(buf)?;
    match tag {
        0 => Ok(WeightingScheme::CosineTf),
        1 => Ok(WeightingScheme::CosineLogTf),
        2 => Ok(WeightingScheme::CosineTfIdf),
        3 => Ok(WeightingScheme::PivotedLogTf { slope }),
        other => Err(protocol(format!("unknown weighting scheme tag {other}"))),
    }
}

fn put_snapshot(buf: &mut BytesMut, s: &EngineSnapshot) {
    put_string(buf, &s.name);
    let analyzer = (s.analyzer.remove_stopwords as u8) | ((s.analyzer.stem as u8) << 1);
    buf.put_u8(analyzer);
    put_scheme(buf, s.scheme);
    buf.put_u32(s.n_docs);
    put_fingerprint(buf, s.fingerprint);
    buf.put_u32(s.doc_freq.len() as u32);
    for &df in &s.doc_freq {
        buf.put_u32(df);
    }
    let summary = s.summary.to_bytes_exact();
    buf.put_u32(summary.len() as u32);
    buf.put_slice(&summary);
}

fn get_snapshot(buf: &mut &[u8]) -> Result<EngineSnapshot, TransportError> {
    let name = get_string(buf)?;
    let analyzer = get_u8(buf)?;
    if analyzer > 0b11 {
        return Err(protocol(format!("unknown analyzer bits {analyzer:#04b}")));
    }
    let analyzer = AnalyzerConfig {
        remove_stopwords: analyzer & 1 != 0,
        stem: analyzer & 2 != 0,
    };
    let scheme = get_scheme(buf)?;
    let n_docs = get_u32(buf)?;
    let fingerprint = get_fingerprint(buf)?;
    let n_terms = get_u32(buf)? as usize;
    if buf.remaining() / 4 < n_terms {
        return Err(protocol(format!(
            "doc_freq claims {n_terms} entries but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut doc_freq = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        doc_freq.push(buf.get_u32());
    }
    let summary_len = get_u32(buf)? as usize;
    if buf.remaining() < summary_len {
        return Err(protocol(format!(
            "summary of {summary_len} bytes but only {} remain",
            buf.remaining()
        )));
    }
    let summary = FrozenSummary::from_bytes(&buf[..summary_len])
        .ok_or_else(|| protocol("malformed frozen summary"))?;
    buf.advance(summary_len);
    let snapshot = EngineSnapshot {
        name,
        analyzer,
        scheme,
        n_docs,
        doc_freq,
        fingerprint,
        summary,
    };
    if !snapshot.is_consistent() {
        return Err(protocol(format!(
            "snapshot for engine {:?} is internally inconsistent",
            snapshot.name
        )));
    }
    Ok(snapshot)
}

fn put_hits(buf: &mut BytesMut, hits: &[RemoteHit]) {
    buf.put_u32(hits.len() as u32);
    for h in hits {
        put_string(buf, &h.doc);
        buf.put_f64(h.sim);
    }
}

fn get_hits(buf: &mut &[u8]) -> Result<Vec<RemoteHit>, TransportError> {
    let n = get_u32(buf)? as usize;
    // Smallest hit record: 4-byte name length + 8-byte sim.
    if buf.remaining() / 12 < n {
        return Err(protocol(format!(
            "result list claims {n} hits but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        hits.push(RemoteHit {
            doc: get_string(buf)?,
            sim: get_f64(buf)?,
        });
    }
    Ok(hits)
}

fn put_opt_string(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        Some(s) => {
            buf.put_u8(1);
            put_string(buf, s);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_string(buf: &mut &[u8]) -> Result<Option<String>, TransportError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_string(buf)?)),
        other => Err(protocol(format!("bad option tag {other}"))),
    }
}

fn put_string_list(buf: &mut BytesMut, names: &[String]) {
    buf.put_u32(names.len() as u32);
    for n in names {
        put_string(buf, n);
    }
}

fn get_string_list(buf: &mut &[u8]) -> Result<Vec<String>, TransportError> {
    let n = get_u32(buf)? as usize;
    // Each string costs at least its 4-byte length prefix.
    if buf.remaining() / 4 < n {
        return Err(protocol(format!(
            "string list claims {n} entries but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(get_string(buf)?);
    }
    Ok(names)
}

fn put_merged_hits(buf: &mut BytesMut, hits: &[MergedHit]) {
    buf.put_u32(hits.len() as u32);
    for h in hits {
        put_string(buf, &h.engine);
        put_string(buf, &h.doc);
        buf.put_f64(h.sim);
    }
}

fn get_merged_hits(buf: &mut &[u8]) -> Result<Vec<MergedHit>, TransportError> {
    let n = get_u32(buf)? as usize;
    // Smallest row: two 4-byte name lengths plus the 8-byte similarity.
    if buf.remaining() / 16 < n {
        return Err(protocol(format!(
            "merged hit list claims {n} hits but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        hits.push(MergedHit {
            engine: get_string(buf)?,
            doc: get_string(buf)?,
            sim: get_f64(buf)?,
        });
    }
    Ok(hits)
}

fn put_error_kind(buf: &mut BytesMut, kind: TransportErrorKind) {
    buf.put_u8(match kind {
        TransportErrorKind::Refused => 0,
        TransportErrorKind::Timeout => 1,
        TransportErrorKind::ConnectionLost => 2,
        TransportErrorKind::Protocol => 3,
        TransportErrorKind::Remote => 4,
    });
}

fn get_error_kind(buf: &mut &[u8]) -> Result<TransportErrorKind, TransportError> {
    match get_u8(buf)? {
        0 => Ok(TransportErrorKind::Refused),
        1 => Ok(TransportErrorKind::Timeout),
        2 => Ok(TransportErrorKind::ConnectionLost),
        3 => Ok(TransportErrorKind::Protocol),
        4 => Ok(TransportErrorKind::Remote),
        other => Err(protocol(format!("unknown error kind tag {other}"))),
    }
}

fn put_dispatch_stats(buf: &mut BytesMut, stats: &[EngineDispatchStats]) {
    buf.put_u32(stats.len() as u32);
    for s in stats {
        put_string(buf, &s.engine);
        buf.put_u64(s.hits as u64);
        buf.put_f64(s.seconds);
        buf.put_u8(match s.outcome {
            DispatchOutcome::Completed => 0,
            DispatchOutcome::Failed => 1,
            DispatchOutcome::TimedOut => 2,
        });
        match &s.error {
            Some(e) => {
                buf.put_u8(1);
                put_error_kind(buf, e.kind);
                put_string(buf, &e.detail);
            }
            None => buf.put_u8(0),
        }
    }
}

fn get_dispatch_stats(buf: &mut &[u8]) -> Result<Vec<EngineDispatchStats>, TransportError> {
    let n = get_u32(buf)? as usize;
    // Smallest row: 4-byte name length, u64 hits, f64 seconds, outcome
    // byte, error flag byte.
    if buf.remaining() / 22 < n {
        return Err(protocol(format!(
            "dispatch stat list claims {n} rows but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        let engine = get_string(buf)?;
        let hits = get_u64(buf)? as usize;
        let seconds = get_f64(buf)?;
        let outcome = match get_u8(buf)? {
            0 => DispatchOutcome::Completed,
            1 => DispatchOutcome::Failed,
            2 => DispatchOutcome::TimedOut,
            other => return Err(protocol(format!("unknown outcome tag {other}"))),
        };
        let error = match get_u8(buf)? {
            0 => None,
            1 => Some(TransportError::new(get_error_kind(buf)?, get_string(buf)?)),
            other => return Err(protocol(format!("bad option tag {other}"))),
        };
        stats.push(EngineDispatchStats {
            engine,
            hits,
            seconds,
            outcome,
            error,
        });
    }
    Ok(stats)
}

fn put_estimates(buf: &mut BytesMut, estimates: &[EngineEstimate]) {
    buf.put_u32(estimates.len() as u32);
    for e in estimates {
        put_string(buf, &e.engine);
        buf.put_f64(e.usefulness.no_doc);
        buf.put_f64(e.usefulness.avg_sim);
    }
}

fn get_estimates(buf: &mut &[u8]) -> Result<Vec<EngineEstimate>, TransportError> {
    let n = get_u32(buf)? as usize;
    // Smallest row: 4-byte name length plus two f64s.
    if buf.remaining() / 20 < n {
        return Err(protocol(format!(
            "estimate list claims {n} rows but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut estimates = Vec::with_capacity(n);
    for _ in 0..n {
        estimates.push(EngineEstimate {
            engine: get_string(buf)?,
            usefulness: Usefulness {
                no_doc: get_f64(buf)?,
                avg_sim: get_f64(buf)?,
            },
        });
    }
    Ok(estimates)
}

fn put_spans(buf: &mut BytesMut, spans: &[seu_obs::SpanRecord]) {
    buf.put_u32(spans.len() as u32);
    for s in spans {
        buf.put_u64(s.id.0);
        buf.put_u64(s.parent.0);
        put_string(buf, &s.name);
        buf.put_u64(s.start_unix_ns);
        buf.put_u64(s.duration_ns);
        buf.put_u32(s.attrs.len() as u32);
        for (k, v) in &s.attrs {
            put_string(buf, k);
            put_string(buf, v);
        }
    }
}

fn get_spans(buf: &mut &[u8]) -> Result<Vec<seu_obs::SpanRecord>, TransportError> {
    let n = get_u32(buf)? as usize;
    // Smallest span record: two 8-byte ids, 4-byte name length, two
    // 8-byte times, 4-byte attr count.
    if buf.remaining() / 40 < n {
        return Err(protocol(format!(
            "span list claims {n} spans but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let id = seu_obs::SpanId(get_u64(buf)?);
        let parent = seu_obs::SpanId(get_u64(buf)?);
        let name = get_string(buf)?;
        let start_unix_ns = get_u64(buf)?;
        let duration_ns = get_u64(buf)?;
        let n_attrs = get_u32(buf)? as usize;
        // Smallest attribute: two 4-byte length prefixes.
        if buf.remaining() / 8 < n_attrs {
            return Err(protocol(format!(
                "span claims {n_attrs} attrs but only {} bytes remain",
                buf.remaining()
            )));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let k = get_string(buf)?;
            let v = get_string(buf)?;
            attrs.push((k, v));
        }
        spans.push(seu_obs::SpanRecord {
            id,
            parent,
            name,
            start_unix_ns,
            duration_ns,
            attrs,
        });
    }
    Ok(spans)
}

impl Message {
    /// Encodes the message as `(frame kind, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = BytesMut::new();
        let kind = match self {
            Message::Hello { subscribe } => {
                buf.put_u8(*subscribe as u8);
                KIND_HELLO
            }
            Message::HelloAck { name } => {
                put_string(&mut buf, name);
                KIND_HELLO_ACK
            }
            Message::SearchDocs { query, threshold } => {
                put_string(&mut buf, query);
                buf.put_f64(*threshold);
                KIND_SEARCH_DOCS
            }
            Message::SearchResults { hits } => {
                put_hits(&mut buf, hits);
                KIND_SEARCH_RESULTS
            }
            Message::Estimate { query, threshold } => {
                put_string(&mut buf, query);
                buf.put_f64(*threshold);
                KIND_ESTIMATE
            }
            Message::Usefulness {
                no_doc,
                avg_sim,
                max_sim,
            } => {
                buf.put_u64(*no_doc);
                buf.put_f64(*avg_sim);
                buf.put_f64(*max_sim);
                KIND_USEFULNESS
            }
            Message::GetRepresentative => KIND_GET_REPRESENTATIVE,
            Message::Representative { snapshot } => {
                put_snapshot(&mut buf, snapshot);
                KIND_REPRESENTATIVE
            }
            Message::InvalidateNotice {
                name,
                fingerprint,
                epoch,
            } => {
                put_string(&mut buf, name);
                put_fingerprint(&mut buf, *fingerprint);
                buf.put_u64(*epoch);
                KIND_INVALIDATE_NOTICE
            }
            Message::Ping => KIND_PING,
            Message::Pong => KIND_PONG,
            Message::Error { detail } => {
                put_string(&mut buf, detail);
                KIND_ERROR
            }
            Message::TracedSearchDocs {
                query,
                threshold,
                trace_id,
                parent_span,
                sampled,
            } => {
                put_string(&mut buf, query);
                buf.put_f64(*threshold);
                buf.put_u64(*trace_id);
                buf.put_u64(*parent_span);
                buf.put_u8(*sampled as u8);
                KIND_TRACED_SEARCH_DOCS
            }
            Message::TracedSearchResults { hits, spans } => {
                put_hits(&mut buf, hits);
                put_spans(&mut buf, spans);
                KIND_TRACED_SEARCH_RESULTS
            }
            Message::EstimateBatch { queries, threshold } => {
                buf.put_u32(queries.len() as u32);
                for query in queries {
                    put_string(&mut buf, query);
                }
                buf.put_f64(*threshold);
                KIND_ESTIMATE_BATCH
            }
            Message::UsefulnessBatch { results } => {
                buf.put_u32(results.len() as u32);
                for r in results {
                    buf.put_u64(r.no_doc);
                    buf.put_f64(r.avg_sim);
                    buf.put_f64(r.max_sim);
                }
                KIND_USEFULNESS_BATCH
            }
            Message::ReplicaEstimate {
                query,
                threshold,
                engines,
            } => {
                put_string(&mut buf, query);
                buf.put_f64(*threshold);
                put_string_list(&mut buf, engines);
                KIND_REPLICA_ESTIMATE
            }
            Message::ReplicaEstimates { estimates } => {
                put_estimates(&mut buf, estimates);
                KIND_REPLICA_ESTIMATES
            }
            Message::ReplicaSearch {
                query,
                threshold,
                engines,
            } => {
                put_string(&mut buf, query);
                buf.put_f64(*threshold);
                put_string_list(&mut buf, engines);
                KIND_REPLICA_SEARCH
            }
            Message::ReplicaSearchResults { hits, stats } => {
                put_merged_hits(&mut buf, hits);
                put_dispatch_stats(&mut buf, stats);
                KIND_REPLICA_SEARCH_RESULTS
            }
            Message::InstallEngine {
                name,
                snapshot,
                endpoint,
            } => {
                put_string(&mut buf, name);
                match snapshot {
                    Some(s) => {
                        buf.put_u8(1);
                        put_snapshot(&mut buf, s);
                    }
                    None => buf.put_u8(0),
                }
                put_opt_string(&mut buf, endpoint);
                KIND_INSTALL_ENGINE
            }
            Message::InstallAck { name } => {
                put_string(&mut buf, name);
                KIND_INSTALL_ACK
            }
            Message::RemoveEngine { name } => {
                put_string(&mut buf, name);
                KIND_REMOVE_ENGINE
            }
            Message::RemoveAck { removed } => {
                buf.put_u8(*removed as u8);
                KIND_REMOVE_ACK
            }
            Message::ExportEngine { name } => {
                put_string(&mut buf, name);
                KIND_EXPORT_ENGINE
            }
        };
        (kind, buf.freeze().chunk().to_vec())
    }

    /// Decodes a frame's payload; typed protocol errors on anything
    /// malformed (unknown kind, truncated field, trailing garbage).
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Message, TransportError> {
        let mut buf = payload;
        let message = match kind {
            KIND_HELLO => Message::Hello {
                subscribe: get_u8(&mut buf)? != 0,
            },
            KIND_HELLO_ACK => Message::HelloAck {
                name: get_string(&mut buf)?,
            },
            KIND_SEARCH_DOCS => Message::SearchDocs {
                query: get_string(&mut buf)?,
                threshold: get_f64(&mut buf)?,
            },
            KIND_SEARCH_RESULTS => Message::SearchResults {
                hits: get_hits(&mut buf)?,
            },
            KIND_ESTIMATE => Message::Estimate {
                query: get_string(&mut buf)?,
                threshold: get_f64(&mut buf)?,
            },
            KIND_USEFULNESS => Message::Usefulness {
                no_doc: get_u64(&mut buf)?,
                avg_sim: get_f64(&mut buf)?,
                max_sim: get_f64(&mut buf)?,
            },
            KIND_GET_REPRESENTATIVE => Message::GetRepresentative,
            KIND_REPRESENTATIVE => Message::Representative {
                snapshot: get_snapshot(&mut buf)?,
            },
            KIND_INVALIDATE_NOTICE => Message::InvalidateNotice {
                name: get_string(&mut buf)?,
                fingerprint: get_fingerprint(&mut buf)?,
                epoch: get_u64(&mut buf)?,
            },
            KIND_PING => Message::Ping,
            KIND_PONG => Message::Pong,
            KIND_ERROR => Message::Error {
                detail: get_string(&mut buf)?,
            },
            KIND_TRACED_SEARCH_DOCS => Message::TracedSearchDocs {
                query: get_string(&mut buf)?,
                threshold: get_f64(&mut buf)?,
                trace_id: get_u64(&mut buf)?,
                parent_span: get_u64(&mut buf)?,
                sampled: get_u8(&mut buf)? != 0,
            },
            KIND_TRACED_SEARCH_RESULTS => Message::TracedSearchResults {
                hits: get_hits(&mut buf)?,
                spans: get_spans(&mut buf)?,
            },
            KIND_ESTIMATE_BATCH => {
                if buf.remaining() < 4 {
                    return Err(protocol("truncated batch count"));
                }
                let count = buf.get_u32() as usize;
                // Each query costs at least its 4-byte length prefix, so
                // a count the remaining bytes cannot hold is a lie.
                if count > buf.remaining() / 4 {
                    return Err(protocol(format!(
                        "batch claims {count} queries but only {} bytes remain",
                        buf.remaining()
                    )));
                }
                let mut queries = Vec::with_capacity(count);
                for _ in 0..count {
                    queries.push(get_string(&mut buf)?);
                }
                Message::EstimateBatch {
                    queries,
                    threshold: get_f64(&mut buf)?,
                }
            }
            KIND_USEFULNESS_BATCH => {
                if buf.remaining() < 4 {
                    return Err(protocol("truncated batch count"));
                }
                let count = buf.get_u32() as usize;
                // 24 bytes per triple (u64 + f64 + f64).
                if count > buf.remaining() / 24 {
                    return Err(protocol(format!(
                        "batch claims {count} results but only {} bytes remain",
                        buf.remaining()
                    )));
                }
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(TrueUsefulness {
                        no_doc: get_u64(&mut buf)?,
                        avg_sim: get_f64(&mut buf)?,
                        max_sim: get_f64(&mut buf)?,
                    });
                }
                Message::UsefulnessBatch { results }
            }
            KIND_REPLICA_ESTIMATE => Message::ReplicaEstimate {
                query: get_string(&mut buf)?,
                threshold: get_f64(&mut buf)?,
                engines: get_string_list(&mut buf)?,
            },
            KIND_REPLICA_ESTIMATES => Message::ReplicaEstimates {
                estimates: get_estimates(&mut buf)?,
            },
            KIND_REPLICA_SEARCH => Message::ReplicaSearch {
                query: get_string(&mut buf)?,
                threshold: get_f64(&mut buf)?,
                engines: get_string_list(&mut buf)?,
            },
            KIND_REPLICA_SEARCH_RESULTS => Message::ReplicaSearchResults {
                hits: get_merged_hits(&mut buf)?,
                stats: get_dispatch_stats(&mut buf)?,
            },
            KIND_INSTALL_ENGINE => Message::InstallEngine {
                name: get_string(&mut buf)?,
                snapshot: match get_u8(&mut buf)? {
                    0 => None,
                    1 => Some(get_snapshot(&mut buf)?),
                    other => return Err(protocol(format!("bad option tag {other}"))),
                },
                endpoint: get_opt_string(&mut buf)?,
            },
            KIND_INSTALL_ACK => Message::InstallAck {
                name: get_string(&mut buf)?,
            },
            KIND_REMOVE_ENGINE => Message::RemoveEngine {
                name: get_string(&mut buf)?,
            },
            KIND_REMOVE_ACK => Message::RemoveAck {
                removed: get_u8(&mut buf)? != 0,
            },
            KIND_EXPORT_ENGINE => Message::ExportEngine {
                name: get_string(&mut buf)?,
            },
            other => return Err(protocol(format!("unknown message kind {other}"))),
        };
        if buf.remaining() > 0 {
            return Err(protocol(format!(
                "{} trailing bytes after message kind {kind}",
                buf.remaining()
            )));
        }
        Ok(message)
    }

    /// The `TrueUsefulness` a [`Message::Usefulness`] carries, if this
    /// is one.
    pub fn as_usefulness(&self) -> Option<TrueUsefulness> {
        match *self {
            Message::Usefulness {
                no_doc,
                avg_sim,
                max_sim,
            } => Some(TrueUsefulness {
                no_doc,
                avg_sim,
                max_sim,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, SearchEngine};
    use seu_text::Analyzer;

    fn round_trip(m: &Message) -> Message {
        let (kind, payload) = m.encode();
        Message::decode(kind, &payload).expect("round trip")
    }

    #[test]
    fn scalar_messages_round_trip() {
        match round_trip(&Message::Hello { subscribe: true }) {
            Message::Hello { subscribe } => assert!(subscribe),
            other => panic!("{other:?}"),
        }
        match round_trip(&Message::SearchDocs {
            query: "mushroom soup".into(),
            threshold: 0.25,
        }) {
            Message::SearchDocs { query, threshold } => {
                assert_eq!(query, "mushroom soup");
                assert_eq!(threshold, 0.25);
            }
            other => panic!("{other:?}"),
        }
        match round_trip(&Message::Usefulness {
            no_doc: 3,
            avg_sim: 0.5,
            max_sim: 0.75,
        }) {
            Message::Usefulness { no_doc, .. } => assert_eq!(no_doc, 3),
            other => panic!("{other:?}"),
        }
        assert!(matches!(round_trip(&Message::Ping), Message::Ping));
        assert!(matches!(
            round_trip(&Message::GetRepresentative),
            Message::GetRepresentative
        ));
    }

    #[test]
    fn search_results_round_trip() {
        let hits = vec![
            RemoteHit {
                doc: "d0".into(),
                sim: 0.9,
            },
            RemoteHit {
                doc: "d1".into(),
                sim: 0.1,
            },
        ];
        match round_trip(&Message::SearchResults { hits: hits.clone() }) {
            Message::SearchResults { hits: decoded } => assert_eq!(decoded, hits),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trips_bit_for_bit() {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "relational databases and query optimization");
        b.add_document("d1", "transaction processing in databases");
        let engine = SearchEngine::new(b.build());
        let snapshot = EngineSnapshot::of_engine("dbs", &engine);
        let decoded = match round_trip(&Message::Representative {
            snapshot: snapshot.clone(),
        }) {
            Message::Representative { snapshot } => snapshot,
            other => panic!("{other:?}"),
        };
        assert_eq!(decoded.name, snapshot.name);
        assert_eq!(decoded.analyzer, snapshot.analyzer);
        assert_eq!(decoded.n_docs, snapshot.n_docs);
        assert_eq!(decoded.doc_freq, snapshot.doc_freq);
        assert_eq!(decoded.fingerprint, snapshot.fingerprint);
        assert_eq!(decoded.summary.vocab.len(), snapshot.summary.vocab.len());
        for (id, term) in snapshot.summary.vocab.iter() {
            assert_eq!(decoded.summary.vocab.term(id), term, "id order preserved");
            let a = snapshot.summary.repr.get(id).unwrap();
            let b = decoded.summary.repr.get(id).unwrap();
            assert_eq!(a.p.to_bits(), b.p.to_bits(), "{term}");
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{term}");
            assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits(), "{term}");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "{term}");
        }
    }

    #[test]
    fn traced_search_messages_round_trip() {
        match round_trip(&Message::TracedSearchDocs {
            query: "mushroom soup".into(),
            threshold: 0.25,
            trace_id: 0xdead_beef,
            parent_span: 42,
            sampled: true,
        }) {
            Message::TracedSearchDocs {
                query,
                threshold,
                trace_id,
                parent_span,
                sampled,
            } => {
                assert_eq!(query, "mushroom soup");
                assert_eq!(threshold, 0.25);
                assert_eq!(trace_id, 0xdead_beef);
                assert_eq!(parent_span, 42);
                assert!(sampled);
            }
            other => panic!("{other:?}"),
        }

        let spans = vec![seu_obs::SpanRecord {
            id: seu_obs::SpanId(7),
            parent: seu_obs::SpanId(42),
            name: "remote_search".into(),
            start_unix_ns: 1_000,
            duration_ns: 2_000,
            attrs: vec![("engine".into(), "dbs".into()), ("hits".into(), "1".into())],
        }];
        let hits = vec![RemoteHit {
            doc: "d0".into(),
            sim: 0.9,
        }];
        match round_trip(&Message::TracedSearchResults {
            hits: hits.clone(),
            spans: spans.clone(),
        }) {
            Message::TracedSearchResults { hits: h, spans: s } => {
                assert_eq!(h, hits);
                assert_eq!(s, spans);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn traced_span_list_liar_is_a_protocol_error() {
        // A span-count liar must fail before allocating.
        let mut buf = BytesMut::new();
        buf.put_u32(0); // zero hits
        buf.put_u32(u32::MAX); // span-count liar
        let err = Message::decode(KIND_TRACED_SEARCH_RESULTS, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }

    #[test]
    fn old_decoder_rejects_traced_kind_as_unknown() {
        // What a pre-tracing peer does with kind 13: its decoder has no
        // arm for it, so the request surfaces as a Protocol error (and
        // the server answers Message::Error). The fallback in
        // RemoteEngine::search (traced path) depends on this behaviour.
        let (kind, payload) = Message::TracedSearchDocs {
            query: "q".into(),
            threshold: 0.0,
            trace_id: 1,
            parent_span: 2,
            sampled: true,
        }
        .encode();
        assert_eq!(kind, 13);
        assert!(payload.len() > 8);
    }

    #[test]
    fn estimate_batch_round_trips_in_order() {
        let queries: Vec<String> = (0..5).map(|i| format!("query number {i}")).collect();
        match round_trip(&Message::EstimateBatch {
            queries: queries.clone(),
            threshold: 0.15,
        }) {
            Message::EstimateBatch {
                queries: q,
                threshold,
            } => {
                assert_eq!(q, queries);
                assert_eq!(threshold, 0.15);
            }
            other => panic!("{other:?}"),
        }

        let results: Vec<TrueUsefulness> = (0..5)
            .map(|i| TrueUsefulness {
                no_doc: i,
                avg_sim: 0.1 * i as f64,
                max_sim: 0.2 * i as f64,
            })
            .collect();
        match round_trip(&Message::UsefulnessBatch {
            results: results.clone(),
        }) {
            Message::UsefulnessBatch { results: r } => {
                assert_eq!(r.len(), results.len());
                for (a, b) in r.iter().zip(&results) {
                    assert_eq!(a.no_doc, b.no_doc);
                    assert_eq!(a.avg_sim.to_bits(), b.avg_sim.to_bits());
                    assert_eq!(a.max_sim.to_bits(), b.max_sim.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }
        // Empty batches are legal and round-trip.
        match round_trip(&Message::EstimateBatch {
            queries: vec![],
            threshold: 0.0,
        }) {
            Message::EstimateBatch { queries, .. } => assert!(queries.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_count_liars_are_protocol_errors() {
        // A query-count liar must fail before allocating.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_f64(0.15);
        let err = Message::decode(KIND_ESTIMATE_BATCH, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // Same for the result-count on the answer.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        let err = Message::decode(KIND_USEFULNESS_BATCH, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }

    #[test]
    fn replica_subset_messages_round_trip_bit_for_bit() {
        let engines: Vec<String> = (0..3).map(|i| format!("engine-{i}")).collect();
        match round_trip(&Message::ReplicaEstimate {
            query: "mushroom soup".into(),
            threshold: 0.25,
            engines: engines.clone(),
        }) {
            Message::ReplicaEstimate {
                query,
                threshold,
                engines: e,
            } => {
                assert_eq!(query, "mushroom soup");
                assert_eq!(threshold, 0.25);
                assert_eq!(e, engines);
            }
            other => panic!("{other:?}"),
        }

        let estimates = vec![
            EngineEstimate {
                engine: "a".into(),
                usefulness: Usefulness {
                    no_doc: 1.75,
                    avg_sim: 0.31,
                },
            },
            EngineEstimate {
                engine: "b".into(),
                usefulness: Usefulness {
                    no_doc: 0.0,
                    avg_sim: 0.0,
                },
            },
        ];
        match round_trip(&Message::ReplicaEstimates {
            estimates: estimates.clone(),
        }) {
            Message::ReplicaEstimates { estimates: d } => {
                assert_eq!(d.len(), estimates.len());
                for (a, b) in d.iter().zip(&estimates) {
                    assert_eq!(a.engine, b.engine);
                    // Bit-identity across the wire is the whole point.
                    assert_eq!(a.usefulness.no_doc.to_bits(), b.usefulness.no_doc.to_bits());
                    assert_eq!(
                        a.usefulness.avg_sim.to_bits(),
                        b.usefulness.avg_sim.to_bits()
                    );
                }
            }
            other => panic!("{other:?}"),
        }

        let hits = vec![MergedHit {
            engine: "a".into(),
            doc: "d0".into(),
            sim: 0.875,
        }];
        let stats = vec![
            EngineDispatchStats {
                engine: "a".into(),
                hits: 1,
                seconds: 0.002,
                outcome: DispatchOutcome::Completed,
                error: None,
            },
            EngineDispatchStats {
                engine: "b".into(),
                hits: 0,
                seconds: 0.0,
                outcome: DispatchOutcome::Failed,
                error: Some(TransportError::new(
                    TransportErrorKind::ConnectionLost,
                    "engine died mid-frame",
                )),
            },
        ];
        match round_trip(&Message::ReplicaSearchResults {
            hits: hits.clone(),
            stats: stats.clone(),
        }) {
            Message::ReplicaSearchResults { hits: h, stats: s } => {
                assert_eq!(h, hits);
                assert_eq!(s, stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn engine_lifecycle_messages_round_trip() {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "estimating search engine usefulness");
        let engine = SearchEngine::new(b.build());
        let snapshot = EngineSnapshot::of_engine("dbs", &engine);
        match round_trip(&Message::InstallEngine {
            name: "dbs".into(),
            snapshot: Some(snapshot.clone()),
            endpoint: Some("127.0.0.1:7070".into()),
        }) {
            Message::InstallEngine {
                name,
                snapshot: s,
                endpoint,
            } => {
                assert_eq!(name, "dbs");
                assert_eq!(s.unwrap().fingerprint, snapshot.fingerprint);
                assert_eq!(endpoint.as_deref(), Some("127.0.0.1:7070"));
            }
            other => panic!("{other:?}"),
        }
        // Snapshot-less install (the replica dials the endpoint itself).
        match round_trip(&Message::InstallEngine {
            name: "dbs".into(),
            snapshot: None,
            endpoint: None,
        }) {
            Message::InstallEngine {
                snapshot, endpoint, ..
            } => {
                assert!(snapshot.is_none());
                assert!(endpoint.is_none());
            }
            other => panic!("{other:?}"),
        }
        match round_trip(&Message::InstallAck { name: "dbs".into() }) {
            Message::InstallAck { name } => assert_eq!(name, "dbs"),
            other => panic!("{other:?}"),
        }
        match round_trip(&Message::RemoveEngine { name: "dbs".into() }) {
            Message::RemoveEngine { name } => assert_eq!(name, "dbs"),
            other => panic!("{other:?}"),
        }
        match round_trip(&Message::RemoveAck { removed: true }) {
            Message::RemoveAck { removed } => assert!(removed),
            other => panic!("{other:?}"),
        }
        match round_trip(&Message::ExportEngine { name: "dbs".into() }) {
            Message::ExportEngine { name } => assert_eq!(name, "dbs"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn federation_count_liars_are_protocol_errors() {
        // Engine-name list liar on the subset request.
        let mut buf = BytesMut::new();
        put_string(&mut buf, "q");
        buf.put_f64(0.2);
        buf.put_u32(u32::MAX);
        let err = Message::decode(KIND_REPLICA_ESTIMATE, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // Estimate-count liar on the answer.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        let err = Message::decode(KIND_REPLICA_ESTIMATES, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // Dispatch-stat liar behind a legal empty hit list.
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        buf.put_u32(u32::MAX);
        let err = Message::decode(KIND_REPLICA_SEARCH_RESULTS, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // An unknown outcome tag is typed, not misparsed.
        let mut buf = BytesMut::new();
        buf.put_u32(0); // no hits
        buf.put_u32(1); // one stat row
        put_string(&mut buf, "a");
        buf.put_u64(0);
        buf.put_f64(0.0);
        buf.put_u8(9); // bogus outcome
        buf.put_u8(0);
        let err = Message::decode(KIND_REPLICA_SEARCH_RESULTS, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }

    #[test]
    fn malformed_payloads_are_typed_protocol_errors() {
        // Unknown kind.
        let err = Message::decode(0xEE, &[]).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // Truncated string.
        let err = Message::decode(KIND_HELLO_ACK, &[0, 0, 0, 9, b'x']).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // Trailing garbage.
        let (kind, mut payload) = Message::Ping.encode();
        payload.push(0);
        let err = Message::decode(kind, &payload).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
        // Hit-count liar.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        let err = Message::decode(KIND_SEARCH_RESULTS, buf.freeze().chunk()).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Protocol);
    }
}
