//! Shared fixtures for the benchmark suite.
//!
//! Benchmarks need deterministic, representative inputs that are cheap to
//! rebuild; the helpers here create scaled-down versions of the paper's
//! workload so every bench target is self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use seu_corpus::{CollectionSpec, QueryLogSpec, SyntheticCorpus};
use seu_engine::{Collection, Query};
use seu_eval::runner::query_from_tokens;
use seu_repr::Representative;

/// A small deterministic benchmark fixture: one topical collection, its
/// representative, and a query workload.
pub struct Fixture {
    /// The collection (database of one local search engine).
    pub collection: Collection,
    /// Its full-precision representative.
    pub repr: Representative,
    /// Token-list queries.
    pub raw_queries: Vec<Vec<String>>,
    /// The same queries as per-collection vectors (empty ones dropped).
    pub queries: Vec<Query>,
}

/// Builds a fixture with `n_docs` documents over `n_topics` topics and
/// `n_queries` queries. Deterministic in `seed`.
pub fn fixture(n_docs: usize, n_topics: usize, n_queries: usize, seed: u64) -> Fixture {
    let corpus = SyntheticCorpus::standard();
    let collection = corpus.generate_collection(&CollectionSpec {
        name: "bench".into(),
        n_docs,
        topics: (0..n_topics.max(1)).collect(),
        seed,
    });
    let raw_queries = corpus.generate_query_log(&QueryLogSpec {
        n_queries,
        single_term_fraction: 0.3,
        max_terms: 6,
        on_topic_prob: 0.65,
        seed: seed ^ 0xBEEF,
    });
    let repr = Representative::build(&collection);
    let queries = raw_queries
        .iter()
        .map(|toks| query_from_tokens(&collection, toks))
        .filter(|q| !q.is_empty())
        .collect();
    Fixture {
        collection,
        repr,
        raw_queries,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_usable() {
        let f = fixture(50, 2, 100, 7);
        assert_eq!(f.collection.len(), 50);
        assert_eq!(f.raw_queries.len(), 100);
        assert!(!f.queries.is_empty());
        assert!(f.repr.distinct_terms() > 0);
    }
}
