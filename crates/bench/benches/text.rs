//! Text-pipeline throughput: tokenizer, stopword filter, Porter stemmer,
//! full analyzer, and storage (de)serialization of an indexed collection.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seu_bench::fixture;
use seu_engine::Collection;
use seu_text::{porter_stem, tokenize, Analyzer, AnalyzerConfig};
use std::hint::black_box;

const SAMPLE: &str = "Estimating the usefulness of search engines requires a \
statistical method that identifies potentially useful databases for a given \
query without searching the documents themselves; the representative stores \
probabilities average weights standard deviations and maximum normalized \
weights for every distinct term in the collection";

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_pipeline");
    group.throughput(Throughput::Bytes(SAMPLE.len() as u64));
    group.bench_function("tokenize", |b| {
        b.iter(|| tokenize(black_box(SAMPLE)).count())
    });
    let plain = Analyzer::new(AnalyzerConfig {
        remove_stopwords: true,
        stem: false,
    });
    group.bench_function("analyze_stopwords", |b| {
        b.iter(|| plain.analyze(black_box(SAMPLE)).len())
    });
    let stemming = Analyzer::new(AnalyzerConfig {
        remove_stopwords: true,
        stem: true,
    });
    group.bench_function("analyze_stopwords_stem", |b| {
        b.iter(|| stemming.analyze(black_box(SAMPLE)).len())
    });
    group.finish();

    let words: Vec<&str> = SAMPLE.split_whitespace().collect();
    c.bench_function("porter_stem_per_word", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|w| porter_stem(&w.to_lowercase()).len())
                .sum::<usize>()
        })
    });
}

fn bench_storage(c: &mut Criterion) {
    let f = fixture(761, 1, 1, 31);
    let bytes = f.collection.to_bytes();
    let mut group = c.benchmark_group("collection_storage");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("serialize_761_docs", |b| {
        b.iter(|| f.collection.to_bytes().len())
    });
    group.bench_function("deserialize_761_docs", |b| {
        b.iter(|| {
            Collection::from_bytes(black_box(&bytes[..]))
                .expect("valid")
                .len()
        })
    });
    group.finish();
}

fn bench_maxscore(c: &mut Criterion) {
    let f = fixture(761, 1, 400, 37);
    let engine = seu_engine::SearchEngine::new(f.collection.clone());
    let mut group = c.benchmark_group("top_10_strategies");
    group.bench_function("plain", |b| {
        b.iter(|| {
            f.queries
                .iter()
                .map(|q| engine.search_top_k(q, 10).len())
                .sum::<usize>()
        })
    });
    group.bench_function("maxscore", |b| {
        b.iter(|| {
            f.queries
                .iter()
                .map(|q| engine.search_top_k_maxscore(q, 10).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_storage, bench_maxscore);
criterion_main!(benches);
