//! One bench per paper-table group: end-to-end cost of regenerating each
//! experiment on a reduced (600-query) workload.
//!
//! These are macro-benchmarks — they time the full pipeline the `repro`
//! binary runs (ground truth + three estimators + aggregation), so they
//! answer "what does it cost to evaluate a selection method over a real
//! workload", per table of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use seu_corpus::{paper_datasets, PaperDatasets};
use seu_eval::experiments::{
    run_guarantee, run_main_tables, run_quantized_tables, run_scalability, run_triplet_tables,
};
use seu_eval::runner::EvalConfig;

fn reduced_datasets() -> PaperDatasets {
    let mut ds = paper_datasets(42);
    ds.queries.truncate(600);
    ds
}

fn config() -> EvalConfig {
    EvalConfig {
        thresholds: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        threads: 0,
    }
}

fn bench_tables(c: &mut Criterion) {
    let ds = reduced_datasets();
    let cfg = config();

    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    group.bench_function("tables_1_6_main", |b| {
        b.iter(|| run_main_tables(&ds, &cfg).results.len())
    });
    group.bench_function("tables_7_9_quantized", |b| {
        b.iter(|| run_quantized_tables(&ds, &cfg).results.len())
    });
    group.bench_function("tables_10_12_triplet", |b| {
        b.iter(|| run_triplet_tables(&ds, &cfg).results.len())
    });
    group.bench_function("guarantee_check", |b| {
        b.iter(|| run_guarantee(&ds, &cfg.thresholds).text.len())
    });
    group.finish();
}

fn bench_scalability_table(c: &mut Criterion) {
    let ds = reduced_datasets();
    let mut group = c.benchmark_group("paper_tables_heavy");
    group.sample_size(10);
    // Dominated by generating the three TREC-scale stand-in collections.
    group.bench_function("scalability_table", |b| {
        b.iter(|| run_scalability(&ds, 42).text.len())
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_scalability_table);
criterion_main!(benches);
