//! Broker-level costs: selection, allocation, many-database ranking,
//! hierarchy summarization.

use criterion::{criterion_group, criterion_main, Criterion};
use seu_bench::fixture;
use seu_core::SubrangeEstimator;
use seu_corpus::many_databases;
use seu_engine::SearchEngine;
use seu_eval::ranking::{rank_databases, RankingFixture};
use seu_metasearch::{Broker, SelectionPolicy};
use std::hint::black_box;

fn small_broker() -> Broker<SubrangeEstimator> {
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    for (i, seed) in [3u64, 5, 7].into_iter().enumerate() {
        let f = fixture(250, 2, 1, seed);
        broker.register(&format!("e{i}"), SearchEngine::new(f.collection));
    }
    broker
}

fn bench_selection(c: &mut Criterion) {
    let broker = small_broker();
    c.bench_function("broker_select_3_engines", |b| {
        b.iter(|| {
            broker
                .select(
                    black_box("tp0x120 tp1x77 bg42"),
                    0.15,
                    SelectionPolicy::EstimatedUseful,
                )
                .len()
        })
    });
    c.bench_function("broker_allocate_20_docs", |b| {
        b.iter(|| {
            broker
                .allocate_documents(black_box("tp0x120 bg42"), 20)
                .iter()
                .map(|a| a.k)
                .sum::<u64>()
        })
    });
    c.bench_function("broker_portable_summary", |b| {
        b.iter(|| broker.portable_summary().distinct_terms())
    });
}

fn bench_ranking(c: &mut Criterion) {
    // A scaled-down E11: 12 databases, 100 queries.
    let dbs: Vec<_> = many_databases(11, 120).into_iter().take(12).collect();
    let fixture = RankingFixture::new(dbs);
    let queries: Vec<Vec<String>> =
        seu_corpus::SyntheticCorpus::standard().generate_query_log(&seu_corpus::QueryLogSpec {
            n_queries: 100,
            single_term_fraction: 0.3,
            max_terms: 6,
            on_topic_prob: 0.65,
            seed: 23,
        });
    let mut group = c.benchmark_group("ranking");
    group.sample_size(10);
    group.bench_function("rank_12_databases_100_queries", |b| {
        b.iter(|| rank_databases(&fixture, &queries, black_box(0.15), &[1, 5]).len())
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_ranking);
criterion_main!(benches);
