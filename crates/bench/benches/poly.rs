//! Generating-function expansion: exact sparse product vs dense grid
//! convolution, scaling with the number of factors (query length).
//!
//! Feeds DESIGN.md experiment E10 (ablation-grid): the exact expansion is
//! exponential in the factor count, the grid linear — the crossover is
//! what this bench locates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seu_poly::{GridPoly, SparsePoly};
use std::hint::black_box;

/// A paper-six-like factor: six spikes plus remainder.
fn factor(i: usize) -> Vec<(f64, f64)> {
    let base = 0.04 + 0.013 * (i % 7) as f64;
    vec![
        (0.002, base * 6.0),
        (0.04, base * 4.0),
        (0.05, base * 3.0),
        (0.10, base * 2.0),
        (0.08, base * 1.5),
        (0.06, base),
    ]
}

fn bench_exact_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_product_by_factors");
    for r in [2usize, 4, 6, 8, 10] {
        let factors: Vec<SparsePoly> = (0..r)
            .map(|i| SparsePoly::spike_factor(factor(i)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(r), &factors, |b, fs| {
            b.iter(|| {
                let g = SparsePoly::product(black_box(fs));
                g.tail_above(0.3).mass
            })
        });
    }
    group.finish();
}

fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_convolve_by_factors");
    for r in [2usize, 4, 6, 8, 10, 16] {
        let spikes: Vec<Vec<(f64, f64)>> = (0..r).map(factor).collect();
        group.bench_with_input(BenchmarkId::from_parameter(r), &spikes, |b, fs| {
            b.iter(|| {
                let mut g = GridPoly::identity(2.0, 1024);
                for f in fs {
                    g.convolve_spikes(black_box(f));
                }
                g.tail_above(0.3).mass
            })
        });
    }
    group.finish();
}

fn bench_grid_resolution(c: &mut Criterion) {
    let spikes: Vec<Vec<(f64, f64)>> = (0..6).map(factor).collect();
    let mut group = c.benchmark_group("grid_convolve_by_cells");
    for cells in [128usize, 512, 2048, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, &cells| {
            b.iter(|| {
                let mut g = GridPoly::identity(2.0, cells);
                for f in &spikes {
                    g.convolve_spikes(f);
                }
                g.tail_above(0.3).mass
            })
        });
    }
    group.finish();
}

fn bench_compact(c: &mut Criterion) {
    let factors: Vec<SparsePoly> = (0..8)
        .map(|i| SparsePoly::spike_factor(factor(i)))
        .collect();
    let big = SparsePoly::product(&factors);
    c.bench_function("compact_to_256", |b| {
        b.iter(|| {
            let mut g = big.clone();
            g.compact_to(black_box(256));
            g.len()
        })
    });
}

criterion_group!(
    benches,
    bench_exact_scaling,
    bench_grid_scaling,
    bench_grid_resolution,
    bench_compact
);
criterion_main!(benches);
