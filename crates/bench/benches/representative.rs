//! Representative lifecycle costs: building from a collection, one-byte
//! quantization, binary (de)serialization — everything a broker and its
//! engines do at registration / update time (§3.2 of the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use seu_bench::fixture;
use seu_repr::{QuantizedRepresentative, Representative};
use std::hint::black_box;

fn bench_lifecycle(c: &mut Criterion) {
    let f = fixture(1466, 2, 10, 23);

    c.bench_function("representative_build_1466_docs", |b| {
        b.iter(|| Representative::build(black_box(&f.collection)).distinct_terms())
    });

    c.bench_function("representative_quantize", |b| {
        b.iter(|| QuantizedRepresentative::from_representative(black_box(&f.repr)).size_bytes())
    });

    let quant = QuantizedRepresentative::from_representative(&f.repr);
    c.bench_function("representative_dequantize", |b| {
        b.iter(|| black_box(&quant).decode().distinct_terms())
    });

    c.bench_function("representative_serialize", |b| {
        b.iter(|| black_box(&f.repr).to_bytes().len())
    });

    let bytes = f.repr.to_bytes();
    c.bench_function("representative_deserialize", |b| {
        b.iter(|| {
            Representative::from_bytes(black_box(&bytes[..]))
                .expect("valid")
                .distinct_terms()
        })
    });
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);
