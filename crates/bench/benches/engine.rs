//! Local search engine costs: index construction, threshold search,
//! top-k search, exact usefulness.

use criterion::{criterion_group, criterion_main, Criterion};
use seu_bench::fixture;
use seu_engine::{InvertedIndex, SearchEngine};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let f = fixture(761, 1, 10, 17);
    c.bench_function("inverted_index_build_761_docs", |b| {
        b.iter(|| InvertedIndex::build(black_box(&f.collection)).total_postings())
    });
}

fn bench_search(c: &mut Criterion) {
    let f = fixture(761, 1, 400, 17);
    let engine = SearchEngine::new(f.collection.clone());
    c.bench_function("threshold_search_400_queries", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &f.queries {
                acc += engine.search_threshold(q, black_box(0.1)).len();
            }
            acc
        })
    });
    c.bench_function("top_10_search_400_queries", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &f.queries {
                acc += engine.search_top_k(q, black_box(10)).len();
            }
            acc
        })
    });
    c.bench_function("true_usefulness_400_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &f.queries {
                acc += engine.true_usefulness(q, black_box(0.2)).no_doc;
            }
            acc
        })
    });
}

criterion_group!(benches, bench_index_build, bench_search);
criterion_main!(benches);
