//! Per-estimate cost of each usefulness estimation method, and the
//! threshold-sweep fast path.
//!
//! The broker runs one estimate per (query, engine) pair, so per-call cost
//! is the number that decides how many engines a broker can front.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seu_bench::fixture;
use seu_core::{
    BasicEstimator, DisjointEstimator, HighCorrelationEstimator, PrevMethodEstimator,
    SubrangeEstimator, UsefulnessEstimator,
};
use std::hint::black_box;

fn bench_single_estimates(c: &mut Criterion) {
    let f = fixture(761, 1, 400, 11);
    let high = HighCorrelationEstimator::new();
    let dis = DisjointEstimator::new();
    let basic = BasicEstimator::new();
    let prev = PrevMethodEstimator::new();
    let sub = SubrangeEstimator::paper_six_subrange();
    let methods: Vec<(&str, &(dyn UsefulnessEstimator + Sync))> = vec![
        ("high-correlation", &high),
        ("disjoint", &dis),
        ("basic", &basic),
        ("prev", &prev),
        ("subrange", &sub),
    ];
    let mut group = c.benchmark_group("estimate_single_threshold");
    for (name, m) in &methods {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in &f.queries {
                    acc += m.estimate(&f.repr, q, black_box(0.2)).no_doc;
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let f = fixture(761, 1, 400, 11);
    let sub = SubrangeEstimator::paper_six_subrange();
    let thresholds = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let mut group = c.benchmark_group("subrange_sweep_6_thresholds");
    group.bench_function("estimate_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &f.queries {
                for u in sub.estimate_sweep(&f.repr, q, &thresholds) {
                    acc += u.no_doc;
                }
            }
            acc
        })
    });
    group.bench_function("six_estimate_calls", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &f.queries {
                for &t in &thresholds {
                    acc += sub.estimate(&f.repr, q, t).no_doc;
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_query_length_scaling(c: &mut Criterion) {
    let f = fixture(761, 1, 2000, 13);
    let sub = SubrangeEstimator::paper_six_subrange();
    let mut group = c.benchmark_group("subrange_by_query_length");
    for len in 1..=6usize {
        let qs: Vec<_> = f.queries.iter().filter(|q| q.len() == len).collect();
        if qs.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(len), &qs, |b, qs| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in qs {
                    acc += sub.estimate(&f.repr, q, black_box(0.2)).no_doc;
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_estimates,
    bench_sweep,
    bench_query_length_scaling
);
criterion_main!(benches);
