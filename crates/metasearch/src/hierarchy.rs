//! Multi-level metasearch: a broker of brokers.
//!
//! Section 1 of the paper: "the approach can be generalized to more than
//! two levels". A [`SuperBroker`] fronts a set of child [`Broker`]s; each
//! child exports one [`PortableRepresentative`] summarizing the union of
//! its engines' databases (mergeable because it is keyed by term string
//! and carries full weight moments). The super-broker estimates each
//! *group's* usefulness from that summary alone, forwards the query to
//! the selected children, and each child runs its own engine selection —
//! the same estimator at every level.

use crate::broker::{Broker, MergedHit};
use crate::merge::merge_results;
use crate::request::SearchRequest;
use crate::selection::SelectionPolicy;
use parking_lot::RwLock;
use seu_core::{Usefulness, UsefulnessEstimator};
use seu_repr::{FrozenSummary, PortableRepresentative};
use seu_text::Analyzer;
use std::sync::Arc;

struct Child<E> {
    name: String,
    broker: Arc<Broker<E>>,
    summary: FrozenSummary,
    /// The child's registry epoch when `summary` was captured. Every
    /// lifecycle event on the child (register, refresh, replace) bumps
    /// its epoch, so `epoch != broker.registry_epoch()` means the
    /// summary no longer describes the child — the same stale-plan
    /// detection the flat broker applies to its own plans.
    epoch: u64,
}

/// A two-level (or deeper, by composition) metasearch broker.
pub struct SuperBroker<E> {
    estimator: E,
    analyzer: Analyzer,
    children: RwLock<Vec<Child<E>>>,
}

impl<E: UsefulnessEstimator + Sync> Broker<E> {
    /// The union summary of every registered engine's database — what
    /// this broker exports to a parent broker.
    pub fn portable_summary(&self) -> PortableRepresentative {
        let mut summary = PortableRepresentative::new();
        for engine in self.engines() {
            summary.merge(&PortableRepresentative::build(engine.collection()));
        }
        summary
    }
}

impl<E: UsefulnessEstimator + Sync> SuperBroker<E> {
    /// Creates an empty super-broker. Queries are analyzed with the
    /// paper's default pipeline before group estimation.
    pub fn new(estimator: E) -> Self {
        SuperBroker {
            estimator,
            analyzer: Analyzer::paper_default(),
            children: RwLock::new(Vec::new()),
        }
    }

    /// Registers a child broker; its group summary is captured together
    /// with the child's registry epoch, so later lifecycle events on
    /// the child are detectable and repairable with
    /// [`SuperBroker::refresh_child_summaries`].
    pub fn register_broker(&self, name: &str, broker: Arc<Broker<E>>) {
        let epoch = broker.registry_epoch();
        let summary = broker.portable_summary().freeze();
        self.children.write().push(Child {
            name: name.to_string(),
            broker,
            summary,
            epoch,
        });
    }

    /// Re-freezes the summary of every child whose registry epoch
    /// advanced since its summary was captured — engines registered,
    /// refreshed, or replaced on a child after `register_broker` become
    /// routable again. Returns how many summaries were rebuilt.
    ///
    /// The epoch is (re)read *before* the summary is built: if the
    /// child changes mid-build the recorded epoch is already behind, so
    /// the next sweep rebuilds again rather than routing on a torn
    /// summary forever.
    pub fn refresh_child_summaries(&self) -> usize {
        let stale: Vec<(usize, Arc<Broker<E>>)> = {
            let children = self.children.read();
            children
                .iter()
                .enumerate()
                .filter(|(_, c)| c.broker.registry_epoch() != c.epoch)
                .map(|(i, c)| (i, c.broker.clone()))
                .collect()
        };
        if stale.is_empty() {
            return 0;
        }
        // Summaries are built outside the children lock (they walk
        // whole collections); only the final swap takes the write lock.
        let rebuilt: Vec<(usize, u64, FrozenSummary)> = stale
            .into_iter()
            .map(|(i, broker)| {
                let epoch = broker.registry_epoch();
                (i, epoch, broker.portable_summary().freeze())
            })
            .collect();
        let mut children = self.children.write();
        let mut refreshed = 0;
        for (i, epoch, summary) in rebuilt {
            if let Some(c) = children.get_mut(i) {
                c.summary = summary;
                c.epoch = epoch;
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Names of children whose summary lags their registry epoch.
    pub fn stale_children(&self) -> Vec<String> {
        self.children
            .read()
            .iter()
            .filter(|c| c.broker.registry_epoch() != c.epoch)
            .map(|c| c.name.clone())
            .collect()
    }

    /// Number of child brokers.
    pub fn len(&self) -> usize {
        self.children.read().len()
    }

    /// A shared handle to the named child broker, if registered.
    pub fn child(&self, name: &str) -> Option<Arc<Broker<E>>> {
        self.children
            .read()
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.broker.clone())
    }

    /// Whether no child is registered.
    pub fn is_empty(&self) -> bool {
        self.children.read().is_empty()
    }

    /// Per-child usefulness estimates for a query.
    pub fn estimate_children(&self, query_text: &str, threshold: f64) -> Vec<(String, Usefulness)> {
        let tokens = self.analyzer.analyze(query_text);
        self.children
            .read()
            .iter()
            .map(|c| {
                let query = c.summary.query_from_tokens(&tokens);
                (
                    c.name.clone(),
                    self.estimator.estimate(&c.summary.repr, &query, threshold),
                )
            })
            .collect()
    }

    /// Selects child brokers under a policy (their names, in invocation
    /// order).
    pub fn select(&self, query_text: &str, threshold: f64, policy: SelectionPolicy) -> Vec<String> {
        let estimates = self.estimate_children(query_text, threshold);
        let us: Vec<Usefulness> = estimates.iter().map(|(_, u)| *u).collect();
        policy
            .select(&us)
            .into_iter()
            .map(|i| estimates[i].0.clone())
            .collect()
    }

    /// Full two-level search: select child brokers, let each selected
    /// child run its own engine selection and search under the same
    /// policy, merge everything by global similarity. Hit engine names
    /// are prefixed with the child broker's name (`child/engine`).
    pub fn search(
        &self,
        query_text: &str,
        threshold: f64,
        policy: SelectionPolicy,
    ) -> Vec<MergedHit> {
        let selected = self.select(query_text, threshold, policy);
        let children = self.children.read();
        let mut per_child = Vec::with_capacity(selected.len());
        let req = SearchRequest::new(query_text)
            .threshold(threshold)
            .policy(policy);
        for name in &selected {
            if let Some(c) = children.iter().find(|c| &c.name == name) {
                let hits = c
                    .broker
                    .execute(&req)
                    .hits
                    .into_iter()
                    .map(|mut h| {
                        h.engine = format!("{}/{}", c.name, h.engine);
                        h
                    })
                    .collect();
                per_child.push(hits);
            }
        }
        merge_results(per_child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_core::SubrangeEstimator;
    use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};

    fn engine(docs: &[&str]) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, d) in docs.iter().enumerate() {
            b.add_document(&format!("d{i}"), d);
        }
        SearchEngine::new(b.build())
    }

    fn tech_broker() -> Broker<SubrangeEstimator> {
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register(
            "databases",
            engine(&["relational databases", "query optimization databases"]),
        );
        b.register(
            "systems",
            engine(&["operating systems kernels", "filesystem journals"]),
        );
        b
    }

    fn food_broker() -> Broker<SubrangeEstimator> {
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register(
            "soups",
            engine(&["mushroom soup cream", "lentil soup spices"]),
        );
        b.register("baking", engine(&["sourdough bread", "rye crackers"]));
        b
    }

    fn super_broker() -> SuperBroker<SubrangeEstimator> {
        let sb = SuperBroker::new(SubrangeEstimator::paper_six_subrange());
        sb.register_broker("tech", Arc::new(tech_broker()));
        sb.register_broker("food", Arc::new(food_broker()));
        sb
    }

    #[test]
    fn group_estimates_discriminate() {
        let sb = super_broker();
        assert_eq!(sb.len(), 2);
        let ests = sb.estimate_children("databases", 0.2);
        let by = |n: &str| ests.iter().find(|(m, _)| m == n).unwrap().1.no_doc;
        assert!(by("tech") > 0.5);
        assert_eq!(by("food"), 0.0);
    }

    #[test]
    fn selection_routes_to_the_right_group() {
        let sb = super_broker();
        assert_eq!(
            sb.select("soup", 0.2, SelectionPolicy::EstimatedUseful),
            vec!["food".to_string()]
        );
        assert_eq!(
            sb.select("databases", 0.2, SelectionPolicy::EstimatedUseful),
            vec!["tech".to_string()]
        );
    }

    #[test]
    fn two_level_search_reaches_the_documents() {
        let sb = super_broker();
        let hits = sb.search("mushroom soup", 0.2, SelectionPolicy::EstimatedUseful);
        assert!(!hits.is_empty());
        assert!(hits[0].engine.starts_with("food/soups"), "{:?}", hits[0]);
        // Merged ordering is by similarity.
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
    }

    #[test]
    fn unknown_query_selects_no_group() {
        let sb = super_broker();
        assert!(sb
            .select("zebra quantum", 0.1, SelectionPolicy::EstimatedUseful)
            .is_empty());
        assert!(sb
            .search("zebra quantum", 0.1, SelectionPolicy::EstimatedUseful)
            .is_empty());
    }

    #[test]
    fn post_registration_engine_becomes_routable_after_refresh() {
        let sb = super_broker();
        // "gardening" joins the food child *after* the super-broker
        // captured its summary.
        let food = sb.child("food").unwrap();
        food.register(
            "gardening",
            engine(&["tomato seedlings compost", "pruning fruit trees"]),
        );
        assert_eq!(sb.stale_children(), vec!["food".to_string()]);
        // Stale summary: the new engine's terms are invisible, so the
        // query routes nowhere (the bug this guards against).
        assert!(sb
            .select("compost seedlings", 0.2, SelectionPolicy::EstimatedUseful)
            .is_empty());
        assert_eq!(sb.refresh_child_summaries(), 1);
        assert!(sb.stale_children().is_empty());
        assert_eq!(
            sb.select("compost seedlings", 0.2, SelectionPolicy::EstimatedUseful),
            vec!["food".to_string()]
        );
        let hits = sb.search("compost seedlings", 0.2, SelectionPolicy::EstimatedUseful);
        assert!(
            hits.iter().any(|h| h.engine == "food/gardening"),
            "{hits:?}"
        );
        // A second sweep with no churn is a no-op.
        assert_eq!(sb.refresh_child_summaries(), 0);
    }

    #[test]
    fn portable_summary_covers_all_engines() {
        let b = tech_broker();
        let s = b.portable_summary();
        assert_eq!(s.n_docs(), 4);
        let f = s.freeze();
        assert!(f.vocab.get("databases").is_some());
        assert!(f.vocab.get("kernels").is_some());
    }
}
