//! Selection policies: from per-engine estimates to an invocation set.

use serde::{Deserialize, Serialize};
use seu_core::Usefulness;

/// How a broker chooses which engines to invoke, given each engine's
/// estimated usefulness for the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Invoke every registered engine (the naive broker the paper argues
    /// against).
    All,
    /// Invoke engines whose rounded estimated NoDoc is at least 1 — the
    /// paper's notion of "identified as useful".
    EstimatedUseful,
    /// Invoke the `k` engines with the largest estimated NoDoc (ties by
    /// estimated AvgSim, then registration order).
    TopK(usize),
    /// Invoke engines with estimated NoDoc at least this value
    /// (un-rounded).
    MinNoDoc(f64),
}

impl SelectionPolicy {
    /// Applies the policy to per-engine estimates, returning selected
    /// indices in the order they should be invoked (TopK: best first;
    /// others: registration order).
    pub fn select(&self, estimates: &[Usefulness]) -> Vec<usize> {
        match *self {
            SelectionPolicy::All => (0..estimates.len()).collect(),
            SelectionPolicy::EstimatedUseful => estimates
                .iter()
                .enumerate()
                .filter(|(_, u)| u.identifies_useful())
                .map(|(i, _)| i)
                .collect(),
            SelectionPolicy::TopK(k) => {
                let mut order: Vec<usize> = (0..estimates.len()).collect();
                order.sort_by(|&a, &b| {
                    let (ua, ub) = (&estimates[a], &estimates[b]);
                    ub.no_doc
                        .partial_cmp(&ua.no_doc)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(
                            ub.avg_sim
                                .partial_cmp(&ua.avg_sim)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(a.cmp(&b))
                });
                order.truncate(k);
                order
            }
            SelectionPolicy::MinNoDoc(min) => estimates
                .iter()
                .enumerate()
                .filter(|(_, u)| u.no_doc >= min)
                .map(|(i, _)| i)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(no_doc: f64, avg_sim: f64) -> Usefulness {
        Usefulness { no_doc, avg_sim }
    }

    #[test]
    fn all_selects_everything() {
        let es = [est(0.0, 0.0), est(5.0, 0.5)];
        assert_eq!(SelectionPolicy::All.select(&es), vec![0, 1]);
    }

    #[test]
    fn estimated_useful_uses_rounding() {
        let es = [est(0.4, 0.1), est(0.5, 0.1), est(3.0, 0.4)];
        assert_eq!(SelectionPolicy::EstimatedUseful.select(&es), vec![1, 2]);
    }

    #[test]
    fn top_k_orders_by_no_doc_then_avg_sim() {
        let es = [est(2.0, 0.1), est(5.0, 0.3), est(5.0, 0.6), est(1.0, 0.9)];
        assert_eq!(SelectionPolicy::TopK(2).select(&es), vec![2, 1]);
        assert_eq!(SelectionPolicy::TopK(10).select(&es), vec![2, 1, 0, 3]);
        assert!(SelectionPolicy::TopK(0).select(&es).is_empty());
    }

    #[test]
    fn min_no_doc_is_unrounded() {
        let es = [est(0.4, 0.0), est(0.6, 0.0)];
        assert_eq!(SelectionPolicy::MinNoDoc(0.5).select(&es), vec![1]);
        assert_eq!(SelectionPolicy::MinNoDoc(0.0).select(&es), vec![0, 1]);
    }

    #[test]
    fn empty_estimates() {
        assert!(SelectionPolicy::All.select(&[]).is_empty());
        assert!(SelectionPolicy::TopK(3).select(&[]).is_empty());
    }
}
