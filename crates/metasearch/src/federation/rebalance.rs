//! Rebalance planning: pure diffs between where engines are and where
//! the ring says they should be.
//!
//! A membership change (join, leave, breaker-driven eviction) changes
//! the ring, and the ring alone decides the desired holders of every
//! engine: the first `replication` candidates on its chain. The
//! rebalance planner compares that desired set with the recorded
//! current holders and emits per-engine diffs; the front-door executes
//! each diff by shipping the engine's `FrozenSummary` snapshot to new
//! holders (exported from a live current holder over the frame
//! protocol, so the moved engine hydrates without re-registration) and
//! then removing it from former holders — installs strictly before
//! removals, so an engine never has zero holders mid-move.

use crate::remote::TransportError;

/// One engine's placement delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementDiff {
    /// The engine to move.
    pub engine: String,
    /// Replicas that must newly receive the engine, candidate order.
    pub install: Vec<String>,
    /// Replicas that must drop it once the installs land.
    pub remove: Vec<String>,
    /// The full desired holder list, candidate order (primary first).
    pub desired: Vec<String>,
}

/// Diffs one engine's current holders against the ring's desired
/// holders; `None` when nothing has to move.
pub fn diff_placement(
    engine: &str,
    current: &[String],
    desired: &[String],
) -> Option<PlacementDiff> {
    if current == desired {
        return None;
    }
    Some(PlacementDiff {
        engine: engine.to_string(),
        install: desired
            .iter()
            .filter(|d| !current.contains(d))
            .cloned()
            .collect(),
        remove: current
            .iter()
            .filter(|c| !desired.contains(c))
            .cloned()
            .collect(),
        desired: desired.to_vec(),
    })
}

/// One engine movement performed by a rebalance.
#[derive(Debug, Clone)]
pub struct Move {
    /// The engine that moved.
    pub engine: String,
    /// The holder its snapshot was exported from (`None` when the
    /// snapshot was regenerated from the front-door's recorded source).
    pub from: Option<String>,
    /// The replica it was installed on.
    pub to: String,
    /// Whether a planning snapshot was shipped (vs a source-only
    /// re-registration).
    pub shipped_snapshot: bool,
}

/// What a rebalance did.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    /// Engines installed on new holders.
    pub moves: Vec<Move>,
    /// `(engine, replica)` pairs removed from former holders.
    pub removals: Vec<(String, String)>,
    /// Typed failures, per engine.
    pub errors: Vec<(String, TransportError)>,
}

impl RebalanceReport {
    /// Whether the rebalance completed without errors.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_placement_needs_no_move() {
        assert_eq!(
            diff_placement("e", &ids(&["r1", "r2"]), &ids(&["r1", "r2"])),
            None
        );
    }

    #[test]
    fn reordered_holders_update_without_installs() {
        // Same replicas, different candidate order (e.g. a join changed
        // which holder is primary): the diff records the new desired
        // order but ships and removes nothing.
        let d = diff_placement("e", &ids(&["r1", "r2"]), &ids(&["r2", "r1"])).unwrap();
        assert!(d.install.is_empty());
        assert!(d.remove.is_empty());
        assert_eq!(d.desired, ids(&["r2", "r1"]));
    }

    #[test]
    fn join_and_leave_produce_minimal_installs_and_removes() {
        let d = diff_placement("e", &ids(&["r1", "r2"]), &ids(&["r1", "r3"])).unwrap();
        assert_eq!(d.install, ids(&["r3"]));
        assert_eq!(d.remove, ids(&["r2"]));
    }
}
