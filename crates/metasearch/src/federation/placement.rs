//! Consistent-hash placement of engine names onto broker replicas.
//!
//! The front-door broker owns no engines; it decides, for every engine
//! name, which back-end replica holds it. The decision must be **pure**
//! (a function of the name and the replica set alone, so every
//! front-door instance and every restart agrees), **stable** (adding or
//! removing one replica moves only the keys that have to move), and
//! **spreadable** (names land evenly). A consistent-hash ring with
//! virtual nodes gives all three: each replica contributes `vnodes`
//! points hashed onto a `u64` circle, and an engine name is owned by
//! the first point clockwise of its own hash.
//!
//! Hashing is the same pure FNV-1a used by
//! [`shard_for`](crate::registry::shard_for) (finished with a
//! splitmix64 avalanche before landing on the circle — see
//! `ring_position`), so placement needs no state, no RNG, and no
//! coordination — the ring *is* the membership list plus arithmetic.

/// FNV-1a offset basis (same constants as `shard_for` and
/// `seu_engine::Fingerprint`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Default virtual nodes per replica. 192 points per replica keeps the
/// keyspace share of 8 replicas within ±20% of fair over an 8k-name
/// keyspace (measured in `tests/federation_placement.rs`) while the
/// ring stays tiny (8 × 192 points = 24 KiB).
pub const DEFAULT_VNODES: usize = 192;

/// Pure FNV-1a over a key's bytes — the hash that positions both ring
/// points and engine names on the circle.
pub fn hash_key(key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The hash of one virtual node: replica id and vnode index joined with
/// `#` (a character the CLI forbids in replica ids), so `r1#2` and
/// `r12#…` never collide structurally.
fn point_hash(replica: &str, vnode: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for b in replica.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= u64::from(b'#');
    h = h.wrapping_mul(FNV_PRIME);
    for b in vnode.to_string().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The splitmix64 finalizer, applied to every hash before it lands on
/// the circle. FNV-1a alone disperses similar keys (sequential
/// `engine-0001`, `engine-0002`, … names) poorly across the high bits,
/// which skews arc shares far past the ±20% uniformity bound; the
/// finalizer's avalanche fixes that while placement stays a pure
/// function of the FNV hash. Purity and golden pins live on
/// [`hash_key`]; this is only the circle coordinate.
fn ring_position(h: u64) -> u64 {
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over named replicas.
///
/// ```
/// use seu_metasearch::federation::Ring;
///
/// let mut ring = Ring::new(64);
/// ring.add_replica("r1");
/// ring.add_replica("r2");
/// let owner = ring.owner("engine-7").unwrap().to_string();
/// ring.add_replica("r3");
/// // The owner either stayed put or moved to the new replica — never
/// // to the other survivor.
/// let now = ring.owner("engine-7").unwrap();
/// assert!(now == owner || now == "r3");
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: usize,
    /// Replica ids in join order (the id namespace; points refer into
    /// it by index).
    replicas: Vec<String>,
    /// `(point hash, replica index)`, sorted by hash then index — the
    /// index tie-break makes even a hash collision deterministic.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// An empty ring with `vnodes` virtual nodes per replica (clamped
    /// to at least 1).
    pub fn new(vnodes: usize) -> Ring {
        Ring {
            vnodes: vnodes.max(1),
            replicas: Vec::new(),
            points: Vec::new(),
        }
    }

    /// A ring pre-populated with `replicas`, in order.
    pub fn with_replicas<I, S>(vnodes: usize, replicas: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ring = Ring::new(vnodes);
        for r in replicas {
            ring.add_replica(r.as_ref());
        }
        ring
    }

    /// Virtual nodes per replica.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Replica ids, in join order.
    pub fn replicas(&self) -> &[String] {
        &self.replicas
    }

    /// Number of replicas on the ring.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the ring has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Adds a replica (its `vnodes` points join the circle). Returns
    /// `false` if the id is already present — the ring is unchanged.
    pub fn add_replica(&mut self, id: &str) -> bool {
        if self.replicas.iter().any(|r| r == id) {
            return false;
        }
        let index = self.replicas.len() as u32;
        self.replicas.push(id.to_string());
        for v in 0..self.vnodes {
            self.points.push((ring_position(point_hash(id, v)), index));
        }
        self.points.sort_unstable();
        true
    }

    /// Removes a replica and its points. Returns `false` for an unknown
    /// id.
    pub fn remove_replica(&mut self, id: &str) -> bool {
        let Some(gone) = self.replicas.iter().position(|r| r == id) else {
            return false;
        };
        let gone = gone as u32;
        self.replicas.remove(gone as usize);
        self.points.retain(|&(_, i)| i != gone);
        for p in &mut self.points {
            if p.1 > gone {
                p.1 -= 1;
            }
        }
        true
    }

    /// The replica owning an engine name: the first ring point at or
    /// clockwise of the name's hash. `None` on an empty ring.
    pub fn owner(&self, engine: &str) -> Option<&str> {
        let key = ring_position(hash_key(engine));
        let start = self.points.partition_point(|&(h, _)| h < key);
        let (_, idx) = self.points.get(start).or_else(|| self.points.first())?;
        Some(&self.replicas[*idx as usize])
    }

    /// Every replica in failover order for an engine name: the owner
    /// first, then each further distinct replica in clockwise point
    /// order. The order is pure in (name, membership), so independent
    /// front-doors agree on the whole candidate chain, not just the
    /// owner.
    pub fn candidates(&self, engine: &str) -> Vec<&str> {
        let key = ring_position(hash_key(engine));
        let start = self.points.partition_point(|&(h, _)| h < key);
        let mut seen = vec![false; self.replicas.len()];
        let mut order = Vec::with_capacity(self.replicas.len());
        for offset in 0..self.points.len() {
            let (_, idx) = self.points[(start + offset) % self.points.len()];
            if !seen[idx as usize] {
                seen[idx as usize] = true;
                order.push(self.replicas[idx as usize].as_str());
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_shard_for_constants() {
        // Golden values computed independently from the FNV-1a
        // reference definition; hash_key must never drift from them
        // (placement purity across versions depends on it).
        assert_eq!(hash_key("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_key("soup"), 0x5fe3_df18_f075_cfc2);
        assert_eq!(hash_key("engine-0000"), 0x93bc_f93d_4f26_bc62);
    }

    #[test]
    fn point_hash_is_the_hash_of_id_hash_vnode() {
        assert_eq!(point_hash("replica-a", 0), hash_key("replica-a#0"));
        assert_eq!(point_hash("replica-a", 1), hash_key("replica-a#1"));
        assert_eq!(point_hash("r1", 15), hash_key("r1#15"));
        // Golden pins for the ring-point layout itself.
        assert_eq!(point_hash("replica-a", 0), 0xb2f7_54b4_a48c_5cce);
        assert_eq!(point_hash("replica-b", 0), 0x99da_cfb4_9692_4e3f);
    }

    #[test]
    fn ring_position_finalizer_is_pinned() {
        // The circle coordinate = splitmix64(FNV-1a). Pinned like the
        // raw hashes: a drift here re-places every engine everywhere.
        assert_eq!(ring_position(hash_key("a")), 0x02c0_bdbf_4814_20f8);
        assert_eq!(
            ring_position(hash_key("replica-a#0")),
            0xb400_7d5b_88b0_546f
        );
    }

    #[test]
    fn owner_is_pure_and_total() {
        let ring = Ring::with_replicas(16, ["r1", "r2", "r3"]);
        for name in ["a", "b", "soup", "engine-17"] {
            let first = ring.owner(name).unwrap().to_string();
            let again = ring.clone().owner(name).unwrap().to_string();
            assert_eq!(first, again);
        }
        assert!(Ring::new(8).owner("a").is_none());
    }

    #[test]
    fn join_order_does_not_change_ownership() {
        let ab = Ring::with_replicas(32, ["alpha", "beta", "gamma"]);
        let ba = Ring::with_replicas(32, ["gamma", "alpha", "beta"]);
        for i in 0..200 {
            let name = format!("engine-{i}");
            assert_eq!(ab.owner(&name), ba.owner(&name));
        }
    }

    #[test]
    fn candidates_start_at_the_owner_and_cover_everyone() {
        let ring = Ring::with_replicas(16, ["r1", "r2", "r3", "r4"]);
        for i in 0..50 {
            let name = format!("engine-{i}");
            let c = ring.candidates(&name);
            assert_eq!(c.len(), 4);
            assert_eq!(c[0], ring.owner(&name).unwrap());
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate candidate for {name}");
        }
    }

    #[test]
    fn duplicate_add_and_unknown_remove_are_rejected() {
        let mut ring = Ring::new(8);
        assert!(ring.add_replica("r1"));
        assert!(!ring.add_replica("r1"));
        assert_eq!(ring.len(), 1);
        assert!(!ring.remove_replica("nope"));
        assert!(ring.remove_replica("r1"));
        assert!(ring.is_empty());
        assert!(ring.candidates("a").is_empty());
    }

    #[test]
    fn remove_keeps_other_replicas_points_intact() {
        let mut ring = Ring::with_replicas(16, ["r1", "r2", "r3"]);
        let before: Vec<String> = (0..100)
            .filter_map(|i| {
                let name = format!("engine-{i}");
                let owner = ring.owner(&name)?;
                (owner != "r2").then(|| format!("{name}:{owner}"))
            })
            .collect();
        ring.remove_replica("r2");
        // Every name that was NOT on r2 keeps its owner — the minimal
        // disruption property at the unit scale (the property test in
        // tests/federation_placement.rs measures the bound over 8k
        // names).
        for pair in &before {
            let (name, owner) = pair.split_once(':').unwrap();
            assert_eq!(ring.owner(name), Some(owner), "{name} moved");
        }
    }
}
