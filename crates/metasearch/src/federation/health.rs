//! Replica health: a deterministic clock abstraction and per-replica
//! circuit breakers.
//!
//! Every replica the front-door dispatches to sits behind a
//! [`CircuitBreaker`] with the classic three states:
//!
//! - **Closed** — requests flow; consecutive failures are counted.
//! - **Open** — after `failure_threshold` consecutive failures the
//!   breaker trips: requests are refused locally (no connection is even
//!   attempted) until `cooldown_ms` has passed.
//! - **Half-open** — after the cooldown, exactly one trial request is
//!   let through. Success closes the breaker; failure re-opens it and
//!   restarts the cooldown.
//!
//! Time comes from a [`Clock`] so tests drive the whole state machine
//! with a [`ManualClock`] — no sleeps, no wall-clock flakiness. The
//! production [`SystemClock`] reads a monotonic instant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock the breaker reads through.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (but fixed) origin.
    fn now_ms(&self) -> u64;
}

/// The production clock: milliseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> SystemClock {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A hand-cranked clock for deterministic breaker tests.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Arc<ManualClock> {
        Arc::new(ManualClock(AtomicU64::new(0)))
    }

    /// Advances the clock by `ms`.
    pub fn advance(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker refuses requests before letting one
    /// trial through.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 5_000,
        }
    }
}

/// The observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are refused locally until the cooldown passes.
    Open,
    /// One trial request is in flight (or permitted); its outcome
    /// decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
    trial_in_flight: bool,
}

/// A three-state circuit breaker guarding one replica.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: parking_lot::Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: parking_lot::Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ms: 0,
                trial_in_flight: false,
            }),
        }
    }

    /// The current state, transitioning Open → HalfOpen if the cooldown
    /// has passed (observing the breaker at its due time is what moves
    /// it, exactly like [`CircuitBreaker::allow`]).
    pub fn state(&self, now_ms: u64) -> BreakerState {
        let mut inner = self.inner.lock();
        if inner.state == BreakerState::Open
            && now_ms.saturating_sub(inner.opened_at_ms) >= self.config.cooldown_ms
        {
            inner.state = BreakerState::HalfOpen;
            inner.trial_in_flight = false;
        }
        inner.state
    }

    /// Whether a request may be dispatched now. An open breaker past
    /// its cooldown becomes half-open and admits exactly one trial; a
    /// half-open breaker with a trial already out admits nothing.
    pub fn allow(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms.saturating_sub(inner.opened_at_ms) >= self.config.cooldown_ms {
                    inner.state = BreakerState::HalfOpen;
                    inner.trial_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.trial_in_flight {
                    false
                } else {
                    inner.trial_in_flight = true;
                    true
                }
            }
        }
    }

    /// Records a successful dispatch: closes the breaker and clears the
    /// failure count.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.trial_in_flight = false;
    }

    /// Records a failed dispatch. Returns `true` when this failure
    /// tripped the breaker open (closed → open on the Kth consecutive
    /// failure, or a failed half-open trial re-opening it).
    pub fn record_failure(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ms = now_ms;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at_ms = now_ms;
                inner.trial_in_flight = false;
                true
            }
            BreakerState::Open => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(k: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: k,
            cooldown_ms: cooldown,
        })
    }

    #[test]
    fn opens_after_k_consecutive_failures() {
        let b = breaker(3, 100);
        assert!(!b.record_failure(0));
        assert!(!b.record_failure(1));
        assert_eq!(b.state(1), BreakerState::Closed);
        assert!(b.record_failure(2));
        assert_eq!(b.state(2), BreakerState::Open);
        assert!(!b.allow(50));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker(2, 100);
        b.record_failure(0);
        b.record_success();
        b.record_failure(1);
        assert_eq!(b.state(1), BreakerState::Closed);
    }

    #[test]
    fn half_opens_after_cooldown_and_admits_one_trial() {
        let clock = ManualClock::new();
        let b = breaker(1, 100);
        b.record_failure(clock.now_ms());
        assert!(!b.allow(clock.now_ms()));
        clock.advance(99);
        assert!(!b.allow(clock.now_ms()));
        clock.advance(1);
        // The cooldown elapsed: exactly one trial goes through.
        assert!(b.allow(clock.now_ms()));
        assert_eq!(b.state(clock.now_ms()), BreakerState::HalfOpen);
        assert!(!b.allow(clock.now_ms()));
        b.record_success();
        assert_eq!(b.state(clock.now_ms()), BreakerState::Closed);
        assert!(b.allow(clock.now_ms()));
    }

    #[test]
    fn failed_trial_reopens_and_restarts_the_cooldown() {
        let b = breaker(1, 100);
        b.record_failure(0);
        assert!(b.allow(100));
        assert!(b.record_failure(120));
        assert_eq!(b.state(150), BreakerState::Open);
        assert!(!b.allow(219));
        assert!(b.allow(220));
    }
}
