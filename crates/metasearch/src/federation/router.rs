//! The front-door broker: global planning over back-end broker
//! replicas.
//!
//! A [`FrontDoor`] owns no engines. It places every registered engine
//! name onto back-end replicas via the consistent-hash
//! [`Ring`](super::Ring) (the first `replication` candidates hold the
//! engine: a primary plus standbys), and serves a request in the same
//! two-step shape as [`Broker`]:
//!
//! 1. **Estimate** — ask each replica for the estimates of the engines
//!    it holds (primary assignment), failing over along each engine's
//!    ring candidate chain when a replica refuses or errors. Per-engine
//!    estimates depend only on the engine's representative and the
//!    query, not on which broker computes them, so the reassembled
//!    global estimate vector is bit-identical to a single broker's.
//! 2. **Select & search** — apply the request's [`SelectionPolicy`]
//!    *globally* over the reassembled vector (in global registration
//!    order, so index tie-breaks match a single broker exactly), then
//!    dispatch the selected engines to their owning replicas and merge
//!    the returned hits. [`merge_results`] is order-independent, so the
//!    merged ranking is bit-identical too.
//!
//! Every replica sits behind a [`CircuitBreaker`]; a replica that fails
//! is skipped locally once its breaker opens, and the engines it held
//! are served by their standbys. What could not be served anywhere is
//! reported — not silently dropped — as `Failed` rows in
//! [`SearchResponse::per_engine_stats`] and as typed per-replica
//! failures in the [`FederationReport`].

use crate::broker::{Broker, EngineEstimate, MergedHit};
use crate::cache::CacheMode;
use crate::federation::health::{BreakerConfig, BreakerState, CircuitBreaker, Clock, SystemClock};
use crate::federation::metrics;
use crate::federation::placement::{Ring, DEFAULT_VNODES};
use crate::federation::rebalance::{diff_placement, Move, RebalanceReport};
use crate::merge::merge_results;
use crate::registry::{EngineStatus, RegistrySnapshot};
use crate::remote::{EngineSnapshot, TransportError, TransportErrorKind};
use crate::request::{
    DispatchOutcome, EngineDispatchStats, SearchRequest, SearchResponse, StaleMode,
};
use crate::selection::SelectionPolicy;
use parking_lot::RwLock;
use seu_core::{Usefulness, UsefulnessEstimator};
use seu_engine::SearchEngine;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a federated engine's live search capability comes from.
#[derive(Clone)]
pub enum EngineSource {
    /// An in-process engine, shared by handle (the conformance path —
    /// the same `Arc` can be installed on several replicas).
    Local(Arc<SearchEngine>),
    /// An engine served elsewhere over the frame protocol; replicas
    /// attach to it through their own transport.
    Remote {
        /// `host:port` of the engine's `serve-engine` listener.
        endpoint: String,
    },
}

impl std::fmt::Debug for EngineSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineSource::Local(_) => f.write_str("EngineSource::Local(..)"),
            EngineSource::Remote { endpoint } => {
                write!(f, "EngineSource::Remote({endpoint})")
            }
        }
    }
}

impl EngineSource {
    /// The remote endpoint, when there is one.
    pub fn endpoint(&self) -> Option<&str> {
        match self {
            EngineSource::Local(_) => None,
            EngineSource::Remote { endpoint } => Some(endpoint),
        }
    }
}

/// One engine install order for a replica: at least one of `source`
/// (live dispatch capability) or `snapshot` (planning metadata — the
/// rebalance path ships this so the receiving replica hydrates without
/// re-registration).
#[derive(Debug, Clone)]
pub struct InstallSpec {
    /// Engine name (global registration key).
    pub name: String,
    /// Live search capability, when the front-door has one on record.
    pub source: Option<EngineSource>,
    /// The engine's planning snapshot, when shipped (rebalance).
    pub snapshot: Option<EngineSnapshot>,
}

/// What a replica returns for a subset search: its merged hits above
/// the threshold plus per-engine dispatch accounting, in request order.
#[derive(Debug, Clone)]
pub struct SubsetResults {
    /// The replica's merged hits (the front-door re-merges across
    /// replicas; [`merge_results`] is order-independent, so merging
    /// merged lists loses nothing).
    pub hits: Vec<MergedHit>,
    /// Per requested engine: hit count, latency, outcome.
    pub stats: Vec<EngineDispatchStats>,
}

/// The calls a front-door makes of one back-end broker replica.
///
/// Implemented in-process by [`LocalReplica`] (the conformance path)
/// and over the frame protocol by `seu-net`'s `RemoteReplica`.
pub trait ReplicaClient: Send + Sync {
    /// Liveness probe.
    fn ping(&self) -> Result<(), TransportError>;
    /// Usefulness estimates for the named engines, in request order.
    fn estimate_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<Vec<EngineEstimate>, TransportError>;
    /// Search exactly the named engines and merge their hits above the
    /// threshold.
    fn search_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<SubsetResults, TransportError>;
    /// Installs (or re-installs) an engine on this replica.
    fn install(&self, spec: &InstallSpec) -> Result<(), TransportError>;
    /// Removes an engine; `Ok(false)` when the name was unknown.
    fn remove_engine(&self, name: &str) -> Result<bool, TransportError>;
    /// Exports an engine's planning snapshot (for shipping to another
    /// replica).
    fn export_engine(&self, name: &str) -> Result<EngineSnapshot, TransportError>;
}

/// A [`ReplicaClient`] over an in-process [`Broker`] — the loopback of
/// federation, and what the bit-identity conformance suite runs
/// against.
pub struct LocalReplica<E> {
    broker: Arc<Broker<E>>,
}

impl<E> LocalReplica<E> {
    /// Wraps a broker.
    pub fn new(broker: Arc<Broker<E>>) -> LocalReplica<E> {
        LocalReplica { broker }
    }

    /// The wrapped broker.
    pub fn broker(&self) -> &Arc<Broker<E>> {
        &self.broker
    }
}

fn protocol_error(detail: impl Into<String>) -> TransportError {
    TransportError::new(TransportErrorKind::Protocol, detail)
}

impl<E: UsefulnessEstimator + Send + Sync + 'static> LocalReplica<E> {
    /// Plans once with [`SelectionPolicy::All`] and pins the invocation
    /// set to `engines`, retrying when a concurrent lifecycle event
    /// makes the plan stale between planning and dispatch.
    fn execute_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<SearchResponse, TransportError> {
        let req = SearchRequest::new(query)
            .threshold(threshold)
            .policy(SelectionPolicy::All)
            .cache(CacheMode::Bypass)
            .stale_mode(StaleMode::Error);
        for _ in 0..4 {
            let mut plan = self.broker.plan(&req, None);
            let mut selected = Vec::with_capacity(engines.len());
            for name in engines {
                match plan.engines().iter().position(|e| e.name == *name) {
                    Some(i) => selected.push(i),
                    None => {
                        return Err(protocol_error(format!(
                            "replica does not hold engine {name:?}"
                        )))
                    }
                }
            }
            plan.selected = selected;
            match self.broker.execute_plan(&req, &plan) {
                Ok(resp) => return Ok(resp),
                Err(_) => continue, // registry changed mid-flight; replan
            }
        }
        Err(protocol_error(
            "registry kept changing during subset execution",
        ))
    }
}

impl<E: UsefulnessEstimator + Send + Sync + 'static> ReplicaClient for LocalReplica<E> {
    fn ping(&self) -> Result<(), TransportError> {
        Ok(())
    }

    fn estimate_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<Vec<EngineEstimate>, TransportError> {
        let all = self.broker.estimate_all(query, threshold);
        let by_name: BTreeMap<&str, &EngineEstimate> =
            all.iter().map(|e| (e.engine.as_str(), e)).collect();
        engines
            .iter()
            .map(|name| {
                by_name
                    .get(name.as_str())
                    .map(|&e| e.clone())
                    .ok_or_else(|| protocol_error(format!("replica does not hold engine {name:?}")))
            })
            .collect()
    }

    fn search_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<SubsetResults, TransportError> {
        let resp = self.execute_subset(query, threshold, engines)?;
        Ok(SubsetResults {
            hits: resp.hits,
            stats: resp.per_engine_stats,
        })
    }

    fn install(&self, spec: &InstallSpec) -> Result<(), TransportError> {
        if self.broker.engine_names().iter().any(|n| n == &spec.name) {
            return Ok(()); // idempotent: already holding it
        }
        match (&spec.snapshot, &spec.source) {
            (Some(snapshot), source) => {
                let engine = match source {
                    Some(EngineSource::Local(arc)) => Some(arc.clone()),
                    _ => None,
                };
                let endpoint = source.as_ref().and_then(|s| s.endpoint()).map(String::from);
                self.broker
                    .install_snapshot(snapshot.clone(), engine, endpoint)
                    .map(|_| ())
            }
            (None, Some(EngineSource::Local(arc))) => {
                self.broker.register_shared(&spec.name, arc.clone());
                Ok(())
            }
            (None, Some(EngineSource::Remote { endpoint })) => Err(protocol_error(format!(
                "in-process replica cannot dial {endpoint}; ship a snapshot"
            ))),
            (None, None) => Err(protocol_error("install needs a source or a snapshot")),
        }
    }

    fn remove_engine(&self, name: &str) -> Result<bool, TransportError> {
        Ok(self.broker.deregister(name))
    }

    fn export_engine(&self, name: &str) -> Result<EngineSnapshot, TransportError> {
        self.broker.export_snapshot(name)
    }
}

/// Front-door tuning.
#[derive(Debug, Clone, Copy)]
pub struct FrontDoorConfig {
    /// Virtual nodes per replica on the placement ring.
    pub vnodes: usize,
    /// How many ring candidates hold each engine (primary + standbys).
    /// Failover can only serve from a replica that holds the engine, so
    /// 1 disables failover; the default 2 survives one replica loss.
    pub replication: usize,
    /// Per-replica circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        FrontDoorConfig {
            vnodes: DEFAULT_VNODES,
            replication: 2,
            breaker: BreakerConfig::default(),
        }
    }
}

struct ReplicaEntry {
    id: String,
    client: Arc<dyn ReplicaClient>,
    breaker: Arc<CircuitBreaker>,
}

struct EngineRecord {
    name: String,
    source: Option<EngineSource>,
    /// Replica ids currently holding the engine, candidate order
    /// (primary first).
    holders: Vec<String>,
}

struct ClusterState {
    ring: Ring,
    replicas: Vec<ReplicaEntry>,
    /// Global registration order — the order selection tie-breaks and
    /// estimate vectors are presented in, exactly like a single
    /// broker's registry sequence.
    engines: Vec<EngineRecord>,
    /// Bumped on every membership or placement change (the federated
    /// analogue of the registry epoch, surfaced in `/healthz`).
    version: u64,
}

/// Which federated phase a replica failure happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FederationPhase {
    /// The estimate fan-out.
    Estimate,
    /// The search dispatch.
    Search,
}

/// One failed replica call, with the engines it was serving.
#[derive(Debug, Clone)]
pub struct ReplicaFailure {
    /// The replica that failed (or whose breaker refused the call).
    pub replica: String,
    /// The engines the call covered.
    pub engines: Vec<String>,
    /// The typed transport failure.
    pub error: TransportError,
    /// Which phase failed.
    pub phase: FederationPhase,
}

/// Per-request federation accounting, alongside the
/// [`SearchResponse`].
#[derive(Debug, Clone, Default)]
pub struct FederationReport {
    /// Every failed replica call (failures that were recovered by
    /// failover still appear — the capture is per replica, not per
    /// outcome).
    pub failures: Vec<ReplicaFailure>,
    /// Engines served by a standby after their primary failed.
    pub failovers: u64,
    /// Engines no candidate could serve (excluded from selection,
    /// reported as `Failed` rows in the response).
    pub unresolved: Vec<String>,
}

/// A two-tier metasearch broker: consistent-hash placement, breaker
/// failover, and bit-identical global planning over replica brokers.
pub struct FrontDoor {
    config: FrontDoorConfig,
    clock: Arc<dyn Clock>,
    state: RwLock<ClusterState>,
}

impl FrontDoor {
    /// A front-door with no replicas, on the system clock.
    pub fn new(config: FrontDoorConfig) -> FrontDoor {
        FrontDoor::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// A front-door on an injected clock (deterministic breaker tests).
    pub fn with_clock(config: FrontDoorConfig, clock: Arc<dyn Clock>) -> FrontDoor {
        FrontDoor {
            state: RwLock::new(ClusterState {
                ring: Ring::new(config.vnodes.max(1)),
                replicas: Vec::new(),
                engines: Vec::new(),
                version: 0,
            }),
            config,
            clock,
        }
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.config.replication.max(1)
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.state.read().engines.len()
    }

    /// Whether no engine is registered.
    pub fn is_empty(&self) -> bool {
        self.state.read().engines.is_empty()
    }

    /// Number of replicas on the ring.
    pub fn replica_count(&self) -> usize {
        self.state.read().replicas.len()
    }

    /// The cluster version: bumped on every membership or placement
    /// change (the federated registry epoch).
    pub fn cluster_version(&self) -> u64 {
        self.state.read().version
    }

    /// Engine names in global registration order.
    pub fn engine_names(&self) -> Vec<String> {
        self.state
            .read()
            .engines
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// `(engine, holders)` in global registration order; holders in
    /// candidate order, primary first.
    pub fn placements(&self) -> Vec<(String, Vec<String>)> {
        self.state
            .read()
            .engines
            .iter()
            .map(|e| (e.name.clone(), e.holders.clone()))
            .collect()
    }

    /// Replica ids and their breaker states, in join order.
    pub fn replica_states(&self) -> Vec<(String, BreakerState)> {
        let now = self.clock.now_ms();
        self.state
            .read()
            .replicas
            .iter()
            .map(|r| (r.id.clone(), r.breaker.state(now)))
            .collect()
    }

    /// Adds a replica and rebalances engine placements onto it.
    /// Returns `None` (no rebalance ran) if the id was already present.
    pub fn add_replica(&self, id: &str, client: Arc<dyn ReplicaClient>) -> Option<RebalanceReport> {
        {
            let mut state = self.state.write();
            if !state.ring.add_replica(id) {
                return None;
            }
            state.replicas.push(ReplicaEntry {
                id: id.to_string(),
                client,
                breaker: Arc::new(CircuitBreaker::new(self.config.breaker)),
            });
            state.version += 1;
            metrics().replicas.set(state.replicas.len() as f64);
        }
        Some(self.rebalance())
    }

    /// Removes a replica (graceful leave: its engines are moved to the
    /// surviving candidates first, exporting snapshots from the leaver
    /// while it is still reachable). Returns `None` for an unknown id.
    pub fn remove_replica(&self, id: &str) -> Option<RebalanceReport> {
        {
            let mut state = self.state.write();
            if !state.ring.remove_replica(id) {
                return None;
            }
            state.version += 1;
        }
        // Rebalance against the shrunk ring while the leaving replica's
        // client is still in the table — exports from it still work.
        let report = self.rebalance();
        let mut state = self.state.write();
        if let Some(i) = state.replicas.iter().position(|r| r.id == id) {
            state.replicas.remove(i);
        }
        metrics().replicas.set(state.replicas.len() as f64);
        Some(report)
    }

    /// Registers an engine: places it on the ring and installs it on
    /// its first `replication` candidates.
    pub fn register_engine(&self, name: &str, source: EngineSource) -> Result<(), TransportError> {
        let mut state = self.state.write();
        if state.ring.is_empty() {
            return Err(protocol_error("no replicas to place engines on"));
        }
        if state.engines.iter().any(|e| e.name == name) {
            return Err(protocol_error(format!(
                "engine {name:?} already registered"
            )));
        }
        let desired: Vec<String> = state
            .ring
            .candidates(name)
            .into_iter()
            .take(self.replication())
            .map(String::from)
            .collect();
        let spec = InstallSpec {
            name: name.to_string(),
            source: Some(source.clone()),
            snapshot: None,
        };
        let mut holders = Vec::with_capacity(desired.len());
        let mut first_error = None;
        for id in &desired {
            let client = state
                .replicas
                .iter()
                .find(|r| &r.id == id)
                .expect("ring replica has an entry")
                .client
                .clone();
            match client.install(&spec) {
                Ok(()) => holders.push(id.clone()),
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if holders.is_empty() {
            return Err(
                first_error.unwrap_or_else(|| protocol_error("no candidate accepted the engine"))
            );
        }
        state.engines.push(EngineRecord {
            name: name.to_string(),
            source: Some(source),
            holders,
        });
        state.version += 1;
        metrics().engines.set(state.engines.len() as f64);
        Ok(())
    }

    /// Reconciles every engine's holders with the current ring:
    /// installs on new candidates (shipping a snapshot exported from a
    /// current holder when possible, regenerating one from the recorded
    /// source otherwise), then removes from former holders. Installs
    /// happen before removals, so an engine always has at least one
    /// holder throughout.
    pub fn rebalance(&self) -> RebalanceReport {
        let mut report = RebalanceReport::default();
        let mut state = self.state.write();
        let state = &mut *state;
        metrics().rebalances.inc();
        let clients: BTreeMap<&str, &ReplicaEntry> =
            state.replicas.iter().map(|r| (r.id.as_str(), r)).collect();
        let replication = self.config.replication.max(1);
        let mut changed = false;
        for record in &mut state.engines {
            let desired: Vec<String> = state
                .ring
                .candidates(&record.name)
                .into_iter()
                .take(replication)
                .map(String::from)
                .collect();
            let Some(diff) = diff_placement(&record.name, &record.holders, &desired) else {
                continue;
            };
            // One snapshot export covers every new holder: prefer a
            // live holder (snapshot shipping — the moved engine
            // hydrates without re-registration), fall back to
            // regenerating from the recorded in-process source.
            let mut shipped_from: Option<String> = None;
            let snapshot = if diff.install.is_empty() {
                None
            } else {
                record
                    .holders
                    .iter()
                    .find_map(|h| {
                        let entry = clients.get(h.as_str())?;
                        let snap = entry.client.export_engine(&record.name).ok()?;
                        shipped_from = Some(h.clone());
                        Some(snap)
                    })
                    .or_else(|| match &record.source {
                        Some(EngineSource::Local(engine)) => {
                            Some(EngineSnapshot::of_engine(&record.name, engine))
                        }
                        _ => None,
                    })
            };
            let mut installed = Vec::new();
            for to in &diff.install {
                let Some(entry) = clients.get(to.as_str()) else {
                    continue;
                };
                let spec = InstallSpec {
                    name: record.name.clone(),
                    source: record.source.clone(),
                    snapshot: snapshot.clone(),
                };
                match entry.client.install(&spec) {
                    Ok(()) => {
                        metrics().rebalance_moves.inc();
                        report.moves.push(Move {
                            engine: record.name.clone(),
                            from: shipped_from.clone(),
                            to: (*to).clone(),
                            shipped_snapshot: snapshot.is_some(),
                        });
                        installed.push((*to).clone());
                    }
                    Err(e) => report.errors.push((record.name.clone(), e)),
                }
            }
            // New holders are live; now drop the former ones.
            for from in &diff.remove {
                let Some(entry) = clients.get(from.as_str()) else {
                    continue;
                };
                match entry.client.remove_engine(&record.name) {
                    Ok(_) => report.removals.push((record.name.clone(), from.clone())),
                    Err(e) => report.errors.push((record.name.clone(), e)),
                }
            }
            record.holders = desired
                .into_iter()
                .filter(|d| record.holders.contains(d) || installed.contains(d))
                .collect();
            changed = true;
        }
        if changed {
            state.version += 1;
        }
        report
    }

    /// Pings every replica through its breaker; returns `(id, up)` in
    /// join order. Driving this on an interval is what recovers an open
    /// breaker: the probe is the half-open trial.
    pub fn probe_once(&self) -> Vec<(String, bool)> {
        let replicas: Vec<(String, Arc<dyn ReplicaClient>, Arc<CircuitBreaker>)> = {
            let state = self.state.read();
            state
                .replicas
                .iter()
                .map(|r| (r.id.clone(), r.client.clone(), r.breaker.clone()))
                .collect()
        };
        let now = self.clock.now_ms();
        replicas
            .into_iter()
            .map(|(id, client, breaker)| {
                if !breaker.allow(now) {
                    return (id, false);
                }
                match client.ping() {
                    Ok(()) => {
                        breaker.record_success();
                        (id, true)
                    }
                    Err(_) => {
                        if breaker.record_failure(self.clock.now_ms()) {
                            metrics().breaker_opens.inc();
                        }
                        (id, false)
                    }
                }
            })
            .collect()
    }

    /// Serves a request; see [`FrontDoor::execute_with_report`].
    pub fn execute(&self, req: &SearchRequest) -> SearchResponse {
        self.execute_with_report(req).0
    }

    /// Plans globally, dispatches to the owning replicas (failing over
    /// along each engine's candidate chain), and merges — plus the
    /// typed per-replica failure capture for this request.
    pub fn execute_with_report(&self, req: &SearchRequest) -> (SearchResponse, FederationReport) {
        let m = metrics();
        m.searches.inc();
        let timer = m.search_latency.start_timer();
        let mut active = seu_obs::tracer().start_trace("federated_search", req.explain);
        active.root_attr("query", &req.query);
        active.root_attr("threshold", req.threshold);
        let trace = active.handle();

        // Snapshot the cluster under the read lock; all replica I/O
        // happens lock-free on the copy.
        let (replicas, engines) = {
            let state = self.state.read();
            let replicas: Vec<(String, Arc<dyn ReplicaClient>, Arc<CircuitBreaker>)> = state
                .replicas
                .iter()
                .map(|r| (r.id.clone(), r.client.clone(), r.breaker.clone()))
                .collect();
            let engines: Vec<(String, Vec<usize>)> = state
                .engines
                .iter()
                .map(|e| {
                    let holder_idx = e
                        .holders
                        .iter()
                        .filter_map(|h| state.replicas.iter().position(|r| &r.id == h))
                        .collect();
                    (e.name.clone(), holder_idx)
                })
                .collect();
            (replicas, engines)
        };
        let mut report = FederationReport::default();

        // Phase 1: reassemble the global estimate vector, failing over
        // along each engine's candidate chain.
        let estimate_span = trace.span("federate_estimate");
        let mut usefulness: Vec<Option<Usefulness>> = vec![None; engines.len()];
        self.fan_out(
            &replicas,
            &engines,
            (0..engines.len()).collect(),
            FederationPhase::Estimate,
            &trace,
            estimate_span.id(),
            &mut report,
            |client, query, threshold, names| {
                client
                    .estimate_subset(query, threshold, names)
                    .map(|ests| ests.into_iter().map(|e| e.usefulness).collect())
            },
            req,
            |slot: &mut Option<Usefulness>, u| *slot = Some(u),
            &mut usefulness,
        );
        drop(estimate_span);

        // Phase 2: global selection over the engines every candidate
        // could estimate, in global registration order — the same
        // index-based tie-breaks as a single broker.
        let available: Vec<(usize, Usefulness)> = usefulness
            .iter()
            .enumerate()
            .filter_map(|(i, u)| u.map(|u| (i, u)))
            .collect();
        let values: Vec<Usefulness> = available.iter().map(|&(_, u)| u).collect();
        let invocation: Vec<usize> = req
            .policy
            .select(&values)
            .into_iter()
            .map(|i| available[i].0)
            .collect();
        report.unresolved = usefulness
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_none())
            .map(|(i, _)| engines[i].0.clone())
            .collect();

        // Phase 3: dispatch the selected engines to their holders.
        let search_span = trace.span("federate_search");
        let mut groups: Vec<Option<(Vec<MergedHit>, EngineDispatchStats)>> =
            vec![None; engines.len()];
        self.fan_out(
            &replicas,
            &engines,
            invocation.clone(),
            FederationPhase::Search,
            &trace,
            search_span.id(),
            &mut report,
            |client, query, threshold, names| {
                client.search_subset(query, threshold, names).map(|r| {
                    let mut by_name: BTreeMap<String, EngineDispatchStats> =
                        r.stats.into_iter().map(|s| (s.engine.clone(), s)).collect();
                    let mut hits_by_engine: BTreeMap<String, Vec<MergedHit>> = BTreeMap::new();
                    for h in r.hits {
                        hits_by_engine.entry(h.engine.clone()).or_default().push(h);
                    }
                    names
                        .iter()
                        .map(|n| {
                            let stats = by_name.remove(n).unwrap_or(EngineDispatchStats {
                                engine: n.clone(),
                                hits: 0,
                                seconds: 0.0,
                                outcome: DispatchOutcome::Failed,
                                error: None,
                            });
                            (hits_by_engine.remove(n).unwrap_or_default(), stats)
                        })
                        .collect()
                })
            },
            req,
            |slot: &mut Option<(Vec<MergedHit>, EngineDispatchStats)>, v| *slot = Some(v),
            &mut groups,
        );
        drop(search_span);

        // Phase 4: merge. merge_results is input-order-independent, so
        // merging the replicas' already-merged lists reproduces a
        // single broker's ranking bit for bit.
        let merge_span = trace.span("merge");
        let hit_groups: Vec<Vec<MergedHit>> = invocation
            .iter()
            .filter_map(|&i| groups[i].as_ref().map(|(h, _)| h.clone()))
            .collect();
        let mut hits = merge_results(hit_groups);
        if let Some(k) = req.top_k {
            hits.truncate(k);
        }
        drop(merge_span);

        // Invocation-order stats, then one Failed row per engine no
        // candidate could serve — the partial-result degradation is in
        // the response, not swallowed.
        let mut per_engine_stats: Vec<EngineDispatchStats> = Vec::new();
        for &i in &invocation {
            match &groups[i] {
                Some((_, stats)) => per_engine_stats.push(stats.clone()),
                None => per_engine_stats.push(EngineDispatchStats {
                    engine: engines[i].0.clone(),
                    hits: 0,
                    seconds: 0.0,
                    outcome: DispatchOutcome::Failed,
                    error: Some(protocol_error("no replica could serve the engine")),
                }),
            }
        }
        for name in &report.unresolved {
            per_engine_stats.push(EngineDispatchStats {
                engine: name.clone(),
                hits: 0,
                seconds: 0.0,
                outcome: DispatchOutcome::Failed,
                error: Some(protocol_error("no replica answered the estimate")),
            });
        }

        let estimates = if req.with_estimates {
            engines
                .iter()
                .zip(&usefulness)
                .filter_map(|((name, _), u)| {
                    u.map(|usefulness| EngineEstimate {
                        engine: name.clone(),
                        usefulness,
                    })
                })
                .collect()
        } else {
            Vec::new()
        };

        m.failovers.add(report.failovers);
        timer.stop();
        active.root_attr("hits", hits.len());
        active.root_attr("failovers", report.failovers);
        let finished = active.finish();
        let resp = SearchResponse {
            hits,
            estimates,
            per_engine_stats,
            trace: if req.explain { finished } else { None },
            served_from: None,
        };
        (resp, report)
    }

    /// The shared failover fan-out: for each attempt `a`, group the
    /// still-unresolved engines by their `a`-th holder and make one
    /// replica call per group, recording breaker outcomes and typed
    /// failures. Generic over the per-call result type so estimate and
    /// search share the exact same candidate-chain semantics.
    #[allow(clippy::too_many_arguments)]
    fn fan_out<T, C, F>(
        &self,
        replicas: &[(String, Arc<dyn ReplicaClient>, Arc<CircuitBreaker>)],
        engines: &[(String, Vec<usize>)],
        targets: Vec<usize>,
        phase: FederationPhase,
        trace: &seu_obs::TraceHandle,
        parent: seu_obs::SpanId,
        report: &mut FederationReport,
        call: C,
        req: &SearchRequest,
        fill: F,
        out: &mut [Option<T>],
    ) where
        C: Fn(&dyn ReplicaClient, &str, f64, &[String]) -> Result<Vec<T>, TransportError>,
        F: Fn(&mut Option<T>, T),
    {
        let m = metrics();
        let max_attempts = engines.iter().map(|(_, h)| h.len()).max().unwrap_or(0);
        let mut unresolved = targets;
        for attempt in 0..max_attempts {
            if unresolved.is_empty() {
                break;
            }
            // Group by this attempt's holder, preserving global order
            // within each group.
            let mut by_replica: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            let mut still = Vec::new();
            for &e in &unresolved {
                match engines[e].1.get(attempt) {
                    Some(&r) => by_replica.entry(r).or_default().push(e),
                    None => still.push(e), // candidate chain exhausted
                }
            }
            let mut next_round = still;
            for (r, group) in by_replica {
                let (id, client, breaker) = &replicas[r];
                let names: Vec<String> = group.iter().map(|&e| engines[e].0.clone()).collect();
                let now = self.clock.now_ms();
                if !breaker.allow(now) {
                    report.failures.push(ReplicaFailure {
                        replica: id.clone(),
                        engines: names,
                        error: TransportError::new(
                            TransportErrorKind::Refused,
                            format!("breaker open for replica {id}"),
                        ),
                        phase,
                    });
                    next_round.extend(&group);
                    continue;
                }
                let mut span = trace.child_span(&format!("replica:{id}"), parent);
                span.attr("engines", group.len());
                span.attr("attempt", attempt);
                m.replica_calls.inc();
                match call(client.as_ref(), &req.query, req.threshold, &names) {
                    Ok(values) if values.len() == names.len() => {
                        breaker.record_success();
                        if attempt > 0 {
                            report.failovers += group.len() as u64;
                        }
                        for (&e, v) in group.iter().zip(values) {
                            fill(&mut out[e], v);
                        }
                    }
                    Ok(_) => {
                        // A count-lying replica is a protocol failure.
                        if breaker.record_failure(self.clock.now_ms()) {
                            m.breaker_opens.inc();
                        }
                        m.replica_failures.inc();
                        report.failures.push(ReplicaFailure {
                            replica: id.clone(),
                            engines: names,
                            error: protocol_error("replica answered with a short vector"),
                            phase,
                        });
                        next_round.extend(&group);
                    }
                    Err(e) => {
                        span.attr("error", e.kind.label());
                        if breaker.record_failure(self.clock.now_ms()) {
                            m.breaker_opens.inc();
                        }
                        m.replica_failures.inc();
                        report.failures.push(ReplicaFailure {
                            replica: id.clone(),
                            engines: names,
                            error: e,
                            phase,
                        });
                        next_round.extend(&group);
                    }
                }
            }
            unresolved = next_round;
        }
    }

    /// Synthesized per-engine statuses for the admin API: the engine
    /// inventory with its primary holder as the "endpoint".
    pub fn engine_statuses(&self) -> Vec<EngineStatus> {
        let state = self.state.read();
        state
            .engines
            .iter()
            .map(|e| EngineStatus {
                name: e.name.clone(),
                shard: e
                    .holders
                    .first()
                    .and_then(|h| state.replicas.iter().position(|r| &r.id == h))
                    .unwrap_or(0),
                epoch: 0,
                stale: false,
                repr_terms: 0,
                repr_bytes: 0,
                remote: true,
                detached: e.holders.is_empty(),
                endpoint: e.holders.first().cloned(),
            })
            .collect()
    }

    /// A registry-snapshot-shaped view for `/healthz`: the cluster
    /// version stands in for the registry epoch.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        let statuses = self.engine_statuses();
        let state = self.state.read();
        RegistrySnapshot {
            statuses,
            epoch: state.version,
            shard_epochs: vec![0; state.replicas.len()],
        }
    }
}
