//! Broker federation: a two-tier cluster where a front-door broker
//! that owns no engines plans globally over back-end broker replicas.
//!
//! The paper's broker selects among engines; the front-door selects
//! among the same engines but through replica brokers that each hold a
//! consistent-hash slice of the engine namespace. The layering is:
//!
//! - [`placement`] — the consistent-hash [`Ring`] (pure FNV-1a,
//!   configurable virtual nodes) that maps engine names to replicas.
//! - [`discovery`] — static replica lists and the hosts-file watcher
//!   behind `seu front-door --hosts-file` / `seu serve --join`.
//! - [`health`] — the injectable [`Clock`] and per-replica
//!   [`CircuitBreaker`] (closed/open/half-open).
//! - [`rebalance`] — pure placement diffs and the rebalance report
//!   types; joins and leaves ship `FrozenSummary` snapshots so moved
//!   engines hydrate without re-registration.
//! - [`router`] — the [`FrontDoor`] itself, the [`ReplicaClient`]
//!   trait, and the in-process [`LocalReplica`] the conformance suite
//!   runs against.
//!
//! The load-bearing invariant, proven by
//! `tests/federation_conformance.rs`: a federated answer is
//! **bit-identical** (`f64::to_bits`) to a single broker's, for any
//! replica count, before and after a rebalance.

pub mod discovery;
pub mod health;
pub mod placement;
pub mod rebalance;
pub mod router;

pub use discovery::{announce, parse_hosts, Discovery, HostsFileWatcher, ReplicaSpec};
pub use health::{BreakerConfig, BreakerState, CircuitBreaker, Clock, ManualClock, SystemClock};
pub use placement::{hash_key, Ring, DEFAULT_VNODES};
pub use rebalance::{diff_placement, Move, PlacementDiff, RebalanceReport};
pub use router::{
    EngineSource, FederationPhase, FederationReport, FrontDoor, FrontDoorConfig, InstallSpec,
    LocalReplica, ReplicaClient, ReplicaFailure, SubsetResults,
};

use std::sync::{Arc, OnceLock};

/// Instrument handles cached once per process.
pub(crate) struct FederationMetrics {
    pub(crate) searches: Arc<seu_obs::Counter>,
    pub(crate) failovers: Arc<seu_obs::Counter>,
    pub(crate) replica_calls: Arc<seu_obs::Counter>,
    pub(crate) replica_failures: Arc<seu_obs::Counter>,
    pub(crate) breaker_opens: Arc<seu_obs::Counter>,
    pub(crate) rebalances: Arc<seu_obs::Counter>,
    pub(crate) rebalance_moves: Arc<seu_obs::Counter>,
    pub(crate) replicas: Arc<seu_obs::Gauge>,
    pub(crate) engines: Arc<seu_obs::Gauge>,
    pub(crate) search_latency: Arc<seu_obs::Histogram>,
}

pub(crate) fn metrics() -> &'static FederationMetrics {
    static METRICS: OnceLock<FederationMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FederationMetrics {
        searches: seu_obs::counter("federation_searches_total"),
        failovers: seu_obs::counter("federation_failovers_total"),
        replica_calls: seu_obs::counter("federation_replica_calls_total"),
        replica_failures: seu_obs::counter("federation_replica_failures_total"),
        breaker_opens: seu_obs::counter("federation_breaker_opens_total"),
        rebalances: seu_obs::counter("federation_rebalances_total"),
        rebalance_moves: seu_obs::counter("federation_rebalance_moves_total"),
        replicas: seu_obs::gauge("federation_replicas"),
        engines: seu_obs::gauge("federation_engines"),
        search_latency: seu_obs::histogram("federation_search_latency_seconds"),
    })
}

/// Forces creation of the `federation_*` instruments so expositions
/// include the whole family even before the first federated request.
pub fn register_metrics() {
    let _ = metrics();
}
