//! Replica discovery: a static list, or a hosts-file watcher.
//!
//! A cluster is described by its membership; the front-door learns it
//! either from a fixed list given at startup (`--replica` flags) or
//! from a hosts-style text file it polls for changes (`--hosts-file`),
//! which is also how `seu serve --join` announces a replica: it appends
//! its own line to the shared file and the watcher picks it up on the
//! next poll.
//!
//! The file format is one replica per line — `id endpoint` or just
//! `endpoint` (the endpoint doubles as the id) — with `#` comments and
//! blank lines ignored:
//!
//! ```text
//! # cluster members
//! r1 127.0.0.1:7501
//! r2 127.0.0.1:7502
//! 127.0.0.1:7503        # id defaults to the endpoint
//! ```

use std::path::{Path, PathBuf};

/// One discovered replica: a stable id (its ring identity) and the
/// endpoint the front-door dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// Ring identity — must be unique and stable across restarts.
    pub id: String,
    /// `host:port` of the replica's broker-protocol listener.
    pub endpoint: String,
}

impl ReplicaSpec {
    /// A spec whose id is its endpoint.
    pub fn from_endpoint(endpoint: &str) -> ReplicaSpec {
        ReplicaSpec {
            id: endpoint.to_string(),
            endpoint: endpoint.to_string(),
        }
    }
}

/// Parses hosts-file content into replica specs, in file order.
/// Malformed lines (more than two fields) are skipped rather than
/// failing the whole file — a half-written join line must not take the
/// cluster view down.
pub fn parse_hosts(content: &str) -> Vec<ReplicaSpec> {
    let mut specs: Vec<ReplicaSpec> = Vec::new();
    for line in content.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let spec = match (fields.next(), fields.next(), fields.next()) {
            (Some(endpoint), None, _) => ReplicaSpec::from_endpoint(endpoint),
            (Some(id), Some(endpoint), None) => ReplicaSpec {
                id: id.to_string(),
                endpoint: endpoint.to_string(),
            },
            _ => continue,
        };
        if !specs.iter().any(|s| s.id == spec.id) {
            specs.push(spec);
        }
    }
    specs
}

/// Appends a replica's line to a hosts file (the `seu serve --join`
/// announcement). Creates the file if missing; a duplicate id is not
/// re-appended.
pub fn announce(path: &Path, spec: &ReplicaSpec) -> std::io::Result<()> {
    let current = std::fs::read_to_string(path).unwrap_or_default();
    if parse_hosts(&current).iter().any(|s| s.id == spec.id) {
        return Ok(());
    }
    let mut line = String::new();
    if !current.is_empty() && !current.ends_with('\n') {
        line.push('\n');
    }
    line.push_str(&format!("{} {}\n", spec.id, spec.endpoint));
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?
        .write_all(line.as_bytes())
}

/// Polls a hosts file and reports membership changes.
#[derive(Debug)]
pub struct HostsFileWatcher {
    path: PathBuf,
    last: Option<Vec<ReplicaSpec>>,
}

impl HostsFileWatcher {
    /// A watcher that has seen nothing yet — its first
    /// [`poll`](HostsFileWatcher::poll) reports the file's current
    /// membership (even an empty one) as a change.
    pub fn new(path: impl Into<PathBuf>) -> HostsFileWatcher {
        HostsFileWatcher {
            path: path.into(),
            last: None,
        }
    }

    /// The watched path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-reads the file; returns the new membership if it differs from
    /// the last observed one (a missing file reads as an empty
    /// membership).
    pub fn poll(&mut self) -> Option<Vec<ReplicaSpec>> {
        let content = std::fs::read_to_string(&self.path).unwrap_or_default();
        let specs = parse_hosts(&content);
        if self.last.as_ref() == Some(&specs) {
            return None;
        }
        self.last = Some(specs.clone());
        Some(specs)
    }
}

/// Where the front-door learns its membership from.
#[derive(Debug)]
pub enum Discovery {
    /// A fixed list given at startup; never changes.
    Static(Vec<ReplicaSpec>),
    /// A hosts file polled for changes.
    HostsFile(HostsFileWatcher),
}

impl Discovery {
    /// The current membership, if it changed since the last poll. A
    /// static list reports once (its first poll) and never again.
    pub fn poll(&mut self) -> Option<Vec<ReplicaSpec>> {
        match self {
            Discovery::Static(specs) => {
                let out = std::mem::take(specs);
                if out.is_empty() {
                    None
                } else {
                    Some(out)
                }
            }
            Discovery::HostsFile(w) => w.poll(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_line_shapes_and_skips_noise() {
        let specs = parse_hosts(
            "# cluster\nr1 127.0.0.1:7501\n\n127.0.0.1:7503 # bare\nbad line with extra fields\nr1 127.0.0.1:9999\n",
        );
        assert_eq!(
            specs,
            vec![
                ReplicaSpec {
                    id: "r1".into(),
                    endpoint: "127.0.0.1:7501".into()
                },
                ReplicaSpec::from_endpoint("127.0.0.1:7503"),
            ]
        );
    }

    #[test]
    fn watcher_reports_only_changes() {
        let dir = std::env::temp_dir().join(format!("seu-hosts-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let mut w = HostsFileWatcher::new(&dir);
        // Missing file: first poll reports the empty membership.
        assert_eq!(w.poll(), Some(vec![]));
        assert_eq!(w.poll(), None);
        std::fs::write(&dir, "r1 127.0.0.1:7501\n").unwrap();
        assert_eq!(w.poll().map(|s| s.len()), Some(1));
        assert_eq!(w.poll(), None);
        announce(
            &dir,
            &ReplicaSpec {
                id: "r2".into(),
                endpoint: "127.0.0.1:7502".into(),
            },
        )
        .unwrap();
        assert_eq!(w.poll().map(|s| s.len()), Some(2));
        // Announcing an id already present is a no-op, and a duplicate
        // id appended anyway is ignored by the parser.
        announce(
            &dir,
            &ReplicaSpec {
                id: "r2".into(),
                endpoint: "127.0.0.1:9999".into(),
            },
        )
        .unwrap();
        assert_eq!(w.poll(), None);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn static_discovery_reports_once() {
        let mut d = Discovery::Static(vec![ReplicaSpec::from_endpoint("a:1")]);
        assert_eq!(d.poll().map(|s| s.len()), Some(1));
        assert_eq!(d.poll(), None);
    }
}
