//! The metasearch broker — the application the paper's estimator exists
//! for (Section 1).
//!
//! A [`Broker`] sits above a set of local [`SearchEngine`]s. It never
//! touches their documents; at registration time it builds (or receives)
//! each engine's [`Representative`] and thereafter decides, per query,
//! which engines to invoke:
//!
//! 1. the query text is analyzed per engine (each engine owns its
//!    vocabulary, exactly as real engines do);
//! 2. the configured [`UsefulnessEstimator`] predicts `(NoDoc, AvgSim)`
//!    for every engine from its representative alone;
//! 3. a [`SelectionPolicy`] turns the estimates into an invocation set;
//! 4. selected engines are searched in parallel and their results merged
//!    by global similarity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocate;
pub mod broker;
pub mod hierarchy;
pub mod merge;
pub mod selection;

pub use allocate::Allocation;
pub use broker::{Broker, EngineEstimate, MergedHit};
pub use hierarchy::SuperBroker;
pub use merge::merge_results;
pub use selection::SelectionPolicy;

// Re-exported for downstream convenience (the broker API surfaces these).
pub use seu_core::{Usefulness, UsefulnessEstimator};
pub use seu_engine::SearchEngine;
pub use seu_repr::Representative;
