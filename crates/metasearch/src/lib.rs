//! The metasearch broker — the application the paper's estimator exists
//! for (Section 1).
//!
//! A [`Broker`] sits above a set of local [`SearchEngine`]s. It never
//! touches their documents; at registration time it builds (or receives)
//! each engine's [`Representative`] and folds the engine's vocabulary
//! into a broker-global term space. Serving a query is a two-step
//! pipeline:
//!
//! 1. [`Broker::plan`] analyzes the [`SearchRequest`]'s text **once**
//!    against the global vocabulary, translates it into every engine's
//!    local term space, predicts `(NoDoc, AvgSim)` for every engine from
//!    its representative alone (the configured [`UsefulnessEstimator`]),
//!    and applies the [`SelectionPolicy`] → a [`QueryPlan`];
//! 2. [`Broker::execute`] dispatches the plan's selected engines over a
//!    bounded worker pool and merges their results by global similarity
//!    → a [`SearchResponse`] with hits, optional estimates, and
//!    per-engine dispatch stats.
//!
//! The pre-pipeline entry points ([`Broker::estimate_all`],
//! [`Broker::select`], [`Broker::search`]) are thin wrappers over the
//! same machinery.
//!
//! Representatives have a **lifecycle**: every registry entry is
//! epoch-versioned and records the fingerprint of the collection its
//! representative and term map were built from, so staleness is
//! detectable ([`Broker::engine_statuses`], [`Broker::is_stale`]) and
//! repairable in one sweep ([`Broker::refresh_if_stale`]). Plans record
//! the registry epoch they were made against; executing or re-estimating
//! a stale plan replans transparently by default, or surfaces a typed
//! [`StalePlanError`] under [`StaleMode::Error`].
//!
//! Representatives can also be **persisted**: a broker built with
//! [`BrokerBuilder::store`] writes every installed representative
//! through a tiered on-disk store (quantized cold tier under a decoded
//! hot tier) and installs the canonical quantized round-trip, so
//! [`Broker::snapshot_registry`] can persist a consistent registry cut
//! and [`Broker::restore`] can rebuild it after a restart — serving
//! statuses immediately and hydrating representatives lazily on the
//! first plan, with estimates bit-identical to the broker that wrote
//! the snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocate;
pub mod broker;
pub mod cache;
pub mod federation;
pub mod hierarchy;
pub mod merge;
mod persist;
pub mod plan;
pub mod pool;
pub mod registry;
pub mod remote;
pub mod request;
pub mod selection;

pub use allocate::Allocation;
pub use broker::{Broker, BrokerBuilder, EngineEstimate, MergedHit};
pub use cache::{CacheKey, CacheMode, CachePolicy, CacheStats, CacheTier};
pub use federation::{
    EngineSource, FederationReport, FrontDoor, FrontDoorConfig, LocalReplica, ReplicaClient,
};
pub use hierarchy::SuperBroker;
pub use merge::merge_results;
pub use plan::{PlannedEngine, QueryPlan, SharedAnalysis};
pub use pool::{JobStatus, PoolClosed, WorkerPool};
pub use registry::{shard_for, EngineStatus, RegistrySnapshot, StalePlanError};
pub use remote::{
    EngineSnapshot, RemoteHit, RemoteMeta, RemoteTransport, TransportError, TransportErrorKind,
};
pub use request::{DispatchOutcome, EngineDispatchStats, SearchRequest, SearchResponse, StaleMode};
pub use selection::SelectionPolicy;

// Re-exported for downstream convenience (the broker API surfaces these).
pub use seu_core::{Usefulness, UsefulnessEstimator};
pub use seu_engine::SearchEngine;
pub use seu_repr::Representative;
pub use seu_store::{
    open_tiered, EntryKind, Manifest, ManifestEntry, ReprStore, StoreError, StoreErrorKind,
};
