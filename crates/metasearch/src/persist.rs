//! Broker ↔ persistent store glue.
//!
//! [`StoreHandle`] wraps an `Arc<dyn ReprStore>` with deferred error
//! reporting: write-through happens on lifecycle paths that have no
//! natural place to surface an I/O error (refresh sweeps, push
//! invalidations, lazy hydration), so failures are stashed here and
//! re-raised by the next [`Broker::snapshot_registry`] call instead of
//! being silently dropped.
//!
//! The canonicalization contract lives here too: every representative
//! the broker installs while a store is attached is first pushed
//! through the store's quantized codec ([`ReprStore::put`] returns the
//! decoded round-trip), so the estimates a live broker computes are
//! bit-identical to those a restored broker computes after decoding
//! the very same bytes from disk. Even when a write fails, the broker
//! still installs the in-memory round-trip so its behaviour does not
//! depend on disk health.
//!
//! [`Broker::snapshot_registry`]: crate::Broker::snapshot_registry
//! [`ReprStore::put`]: seu_store::ReprStore::put

use crate::remote::RemoteMeta;
use parking_lot::Mutex;
use seu_engine::{Fingerprint, SearchEngine};
use seu_repr::Representative;
use seu_store::{codec, EngineRecord, ReprStore, StoreError};
use std::sync::Arc;

/// The broker's view of its attached representative store: the store
/// itself plus a one-slot mailbox for deferred errors.
pub(crate) struct StoreHandle {
    store: Arc<dyn ReprStore>,
    /// First store error since the last `snapshot_registry`; later
    /// errors are dropped (the first is the root cause).
    error: Mutex<Option<StoreError>>,
}

impl StoreHandle {
    pub(crate) fn new(store: Arc<dyn ReprStore>) -> StoreHandle {
        StoreHandle {
            store,
            error: Mutex::new(None),
        }
    }

    /// The wrapped store.
    pub(crate) fn store(&self) -> &Arc<dyn ReprStore> {
        &self.store
    }

    /// Writes `record` through to the store and returns the canonical
    /// (quantized round-trip) form the broker must install. If the
    /// write fails, the error is stashed for the next snapshot call
    /// and the round-trip is computed in memory instead — the live
    /// broker's estimates stay canonical either way.
    pub(crate) fn canonicalize(&self, record: &EngineRecord) -> Arc<EngineRecord> {
        match self.store.put(record) {
            Ok(canonical) => canonical,
            Err(e) => {
                self.stash(e);
                Arc::new(codec::roundtrip(record))
            }
        }
    }

    /// Fetches a record, stashing (and swallowing) any store error.
    pub(crate) fn get(&self, key: Fingerprint) -> Option<Arc<EngineRecord>> {
        match self.store.get(key) {
            Ok(r) => r,
            Err(e) => {
                self.stash(e);
                None
            }
        }
    }

    /// Records a deferred store error (first one wins).
    pub(crate) fn stash(&self, err: StoreError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// Takes the stashed error, clearing the slot.
    pub(crate) fn take_error(&self) -> Option<StoreError> {
        self.error.lock().take()
    }
}

/// Builds the storable record for a local engine's representative.
/// The vocabulary and document frequencies are written in collection
/// term-id order, so the decoded representative is id-aligned with the
/// collection that produced it.
pub(crate) fn record_for_local(
    name: &str,
    engine: &SearchEngine,
    repr: &Representative,
) -> EngineRecord {
    let c = engine.collection();
    EngineRecord {
        name: name.to_string(),
        analyzer: c.analyzer_config(),
        scheme: c.scheme(),
        fingerprint: engine.fingerprint(),
        doc_freq: Arc::new(c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect()),
        vocab: Arc::new(c.vocab().clone()),
        repr: Arc::new(repr.clone()),
    }
}

/// Builds the storable record for a remote engine from its
/// snapshot-derived planning metadata.
pub(crate) fn record_for_remote(
    name: &str,
    meta: &RemoteMeta,
    repr: &Representative,
) -> EngineRecord {
    EngineRecord {
        name: name.to_string(),
        analyzer: meta.analyzer,
        scheme: meta.scheme,
        fingerprint: meta.fingerprint,
        doc_freq: meta.doc_freq.clone(),
        vocab: meta.vocab.clone(),
        repr: Arc::new(repr.clone()),
    }
}
