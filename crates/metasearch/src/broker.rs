//! The broker itself.

use crate::merge::merge_results;
use crate::selection::SelectionPolicy;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use seu_core::{Usefulness, UsefulnessEstimator};
use seu_engine::SearchEngine;
use seu_repr::Representative;
use std::sync::{Arc, OnceLock};

/// Instrument handles cached once per process.
struct BrokerMetrics {
    query_latency: Arc<seu_obs::Histogram>,
    select_latency: Arc<seu_obs::Histogram>,
    queries: Arc<seu_obs::Counter>,
    selects: Arc<seu_obs::Counter>,
    estimates: Arc<seu_obs::Counter>,
    considered: Arc<seu_obs::Counter>,
    selected: Arc<seu_obs::Counter>,
    merge_hits: Arc<seu_obs::Counter>,
    merge_size: Arc<seu_obs::Histogram>,
}

fn metrics() -> &'static BrokerMetrics {
    static METRICS: OnceLock<BrokerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| BrokerMetrics {
        query_latency: seu_obs::histogram("broker_query_latency_seconds"),
        select_latency: seu_obs::histogram("broker_select_latency_seconds"),
        queries: seu_obs::counter("broker_queries_total"),
        selects: seu_obs::counter("broker_selects_total"),
        estimates: seu_obs::counter("broker_estimates_total"),
        considered: seu_obs::counter("broker_engines_considered_total"),
        selected: seu_obs::counter("broker_engines_selected_total"),
        merge_hits: seu_obs::counter("broker_merge_hits_total"),
        merge_size: seu_obs::histogram_with_buckets(
            "broker_merge_result_size",
            &seu_obs::SIZE_BUCKETS,
        ),
    })
}

/// Forces creation of the broker's instruments so snapshots and
/// expositions include the whole `broker_*` family — zero-valued if the
/// process never ran a query — instead of a family that appears only
/// after the first call touches it.
pub fn register_metrics() {
    let _ = metrics();
}

/// One engine's estimate for a query, as reported by the broker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineEstimate {
    /// Engine name (registration key).
    pub engine: String,
    /// Estimated usefulness.
    pub usefulness: Usefulness,
}

/// One merged result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedHit {
    /// Engine that returned the document.
    pub engine: String,
    /// Document name within that engine.
    pub doc: String,
    /// Global (cosine) similarity.
    pub sim: f64,
}

struct RegisteredEngine {
    name: String,
    engine: Arc<SearchEngine>,
    repr: Representative,
}

/// A metasearch broker generic over the usefulness estimator.
///
/// # Examples
///
/// ```
/// use seu_metasearch::{Broker, SelectionPolicy};
/// use seu_core::SubrangeEstimator;
/// use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
/// use seu_text::Analyzer;
///
/// let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
/// b.add_document("d0", "mushroom soup with cream");
/// let cooking = SearchEngine::new(b.build());
///
/// let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
/// broker.register("cooking", cooking);
///
/// let selected = broker.select("mushroom soup", 0.2, SelectionPolicy::EstimatedUseful);
/// assert_eq!(selected, vec!["cooking".to_string()]);
/// let hits = broker.search("mushroom soup", 0.2, SelectionPolicy::EstimatedUseful);
/// assert_eq!(hits[0].doc, "d0");
/// ```
pub struct Broker<E> {
    estimator: E,
    engines: RwLock<Vec<RegisteredEngine>>,
}

impl<E: UsefulnessEstimator + Sync> Broker<E> {
    /// Creates an empty broker.
    pub fn new(estimator: E) -> Self {
        Broker {
            estimator,
            engines: RwLock::new(Vec::new()),
        }
    }

    /// Registers an engine; its representative is built from its
    /// collection on the spot (in a deployment the engine would ship the
    /// serialized representative instead — see
    /// [`Broker::register_with_representative`]).
    pub fn register(&self, name: &str, engine: SearchEngine) {
        let repr = Representative::build(engine.collection());
        self.register_with_representative(name, engine, repr);
    }

    /// Registers an engine together with a representative it supplied
    /// (e.g. deserialized from [`Representative::to_bytes`], or a
    /// quantized one).
    pub fn register_with_representative(
        &self,
        name: &str,
        engine: SearchEngine,
        repr: Representative,
    ) {
        self.engines.write().push(RegisteredEngine {
            name: name.to_string(),
            engine: Arc::new(engine),
            repr,
        });
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.read().len()
    }

    /// Whether no engine is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.read().is_empty()
    }

    /// Registered engine names, in registration order.
    pub fn engine_names(&self) -> Vec<String> {
        self.engines.read().iter().map(|e| e.name.clone()).collect()
    }

    /// Shared handles to the registered engines, in registration order
    /// (used by the hierarchy layer to build group summaries).
    pub fn engines(&self) -> Vec<Arc<SearchEngine>> {
        self.engines
            .read()
            .iter()
            .map(|e| e.engine.clone())
            .collect()
    }

    /// Rebuilds the named engine's representative from its current
    /// collection — the paper's infrequent metadata-propagation step
    /// (§1). Returns false if no engine has that name.
    pub fn refresh_representative(&self, name: &str) -> bool {
        let mut engines = self.engines.write();
        match engines.iter_mut().find(|e| e.name == name) {
            Some(e) => {
                e.repr = Representative::build(e.engine.collection());
                true
            }
            None => false,
        }
    }

    /// Replaces the named engine's representative with one it shipped
    /// (e.g. a quantized or accumulator-snapshotted one). Returns false
    /// if no engine has that name.
    pub fn update_representative(&self, name: &str, repr: Representative) -> bool {
        let mut engines = self.engines.write();
        match engines.iter_mut().find(|e| e.name == name) {
            Some(e) => {
                e.repr = repr;
                true
            }
            None => false,
        }
    }

    /// Estimates every engine's usefulness for a query text at a
    /// threshold. The query is re-analyzed per engine against that
    /// engine's vocabulary.
    pub fn estimate_all(&self, query_text: &str, threshold: f64) -> Vec<EngineEstimate> {
        let engines = self.engines.read();
        metrics().estimates.add(engines.len() as u64);
        engines
            .iter()
            .map(|e| {
                let query = e.engine.collection().query_from_text(query_text);
                EngineEstimate {
                    engine: e.name.clone(),
                    usefulness: self.estimator.estimate(&e.repr, &query, threshold),
                }
            })
            .collect()
    }

    /// Selects engines for a query under a policy. Returns names in
    /// invocation order.
    pub fn select(&self, query_text: &str, threshold: f64, policy: SelectionPolicy) -> Vec<String> {
        let m = metrics();
        let timer = m.select_latency.start_timer();
        let estimates = self.estimate_all(query_text, threshold);
        let us: Vec<Usefulness> = estimates.iter().map(|e| e.usefulness).collect();
        let selected: Vec<String> = policy
            .select(&us)
            .into_iter()
            .map(|i| estimates[i].engine.clone())
            .collect();
        m.selects.inc();
        m.considered.add(estimates.len() as u64);
        m.selected.add(selected.len() as u64);
        timer.stop();
        selected
    }

    /// Full metasearch: select engines, dispatch the query to them in
    /// parallel, and merge results above the threshold by global
    /// similarity.
    pub fn search(
        &self,
        query_text: &str,
        threshold: f64,
        policy: SelectionPolicy,
    ) -> Vec<MergedHit> {
        let m = metrics();
        let timer = m.query_latency.start_timer();
        let engines = self.engines.read();
        let us: Vec<Usefulness> = engines
            .iter()
            .map(|e| {
                let query = e.engine.collection().query_from_text(query_text);
                self.estimator.estimate(&e.repr, &query, threshold)
            })
            .collect();
        let selected = policy.select(&us);

        let mut per_engine: Vec<Vec<MergedHit>> = Vec::with_capacity(selected.len());
        crossbeam::scope(|scope| {
            let handles: Vec<_> = selected
                .iter()
                .map(|&i| {
                    let e = &engines[i];
                    scope.spawn(move |_| {
                        let query = e.engine.collection().query_from_text(query_text);
                        e.engine
                            .search_threshold(&query, threshold)
                            .into_iter()
                            .map(|h| MergedHit {
                                engine: e.name.clone(),
                                doc: e.engine.collection().doc(h.doc).name.clone(),
                                sim: h.sim,
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                per_engine.push(h.join().expect("engine search panicked"));
            }
        })
        .expect("dispatch scope");
        let merged = merge_results(per_engine);
        m.queries.inc();
        m.considered.add(engines.len() as u64);
        m.selected.add(selected.len() as u64);
        m.merge_hits.add(merged.len() as u64);
        m.merge_size.observe(merged.len() as f64);
        timer.stop();
        merged
    }

    /// Ground-truth selection (which engines truly have a document above
    /// the threshold) — the oracle the evaluation compares against.
    pub fn oracle_select(&self, query_text: &str, threshold: f64) -> Vec<String> {
        let engines = self.engines.read();
        engines
            .iter()
            .filter(|e| {
                let query = e.engine.collection().query_from_text(query_text);
                e.engine.true_usefulness(&query, threshold).no_doc >= 1
            })
            .map(|e| e.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_core::SubrangeEstimator;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn engine_from(texts: &[&str]) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&format!("doc{i}"), t);
        }
        SearchEngine::new(b.build())
    }

    fn broker() -> Broker<SubrangeEstimator> {
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register(
            "databases",
            engine_from(&[
                "relational databases and query optimization",
                "transaction processing in databases",
                "distributed query processing systems",
            ]),
        );
        b.register(
            "cooking",
            engine_from(&[
                "mushroom soup recipes with cream",
                "baking sourdough bread at home",
            ]),
        );
        b.register(
            "mixed",
            engine_from(&[
                "databases of bread recipes",
                "soup kitchens and processing plants",
            ]),
        );
        b
    }

    #[test]
    fn registration_and_names() {
        let b = broker();
        assert_eq!(b.len(), 3);
        assert_eq!(b.engine_names(), vec!["databases", "cooking", "mixed"]);
        assert!(!b.is_empty());
    }

    #[test]
    fn estimates_favor_matching_engine() {
        let b = broker();
        let ests = b.estimate_all("databases query", 0.1);
        let by_name = |n: &str| {
            ests.iter()
                .find(|e| e.engine == n)
                .unwrap()
                .usefulness
                .no_doc
        };
        assert!(by_name("databases") > by_name("cooking"));
    }

    #[test]
    fn selection_excludes_useless_engines() {
        let b = broker();
        let sel = b.select("mushroom soup", 0.25, SelectionPolicy::EstimatedUseful);
        assert!(sel.contains(&"cooking".to_string()));
        assert!(!sel.contains(&"databases".to_string()));
    }

    #[test]
    fn search_merges_across_engines() {
        let b = broker();
        let hits = b.search("databases", 0.0, SelectionPolicy::All);
        assert!(!hits.is_empty());
        // Sorted descending.
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
        // Hits come from both engines that mention databases.
        let engines: Vec<&str> = hits.iter().map(|h| h.engine.as_str()).collect();
        assert!(engines.contains(&"databases"));
        assert!(engines.contains(&"mixed"));
        assert!(!engines.contains(&"cooking"));
    }

    #[test]
    fn selective_search_returns_subset_of_all() {
        let b = broker();
        let all = b.search("soup", 0.1, SelectionPolicy::All);
        let selected = b.search("soup", 0.1, SelectionPolicy::EstimatedUseful);
        // Everything the selective search returns is in the full search.
        for h in &selected {
            assert!(all.contains(h));
        }
    }

    #[test]
    fn oracle_matches_reality() {
        let b = broker();
        let oracle = b.oracle_select("sourdough", 0.1);
        assert_eq!(oracle, vec!["cooking".to_string()]);
    }

    #[test]
    fn top_k_selection() {
        let b = broker();
        let sel = b.select("databases processing", 0.05, SelectionPolicy::TopK(1));
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0], "databases");
    }

    #[test]
    fn representative_refresh_and_update() {
        let b = broker();
        // Cripple one engine's representative, watch selection change,
        // then refresh it back.
        let empty = Representative::from_parts(0, Vec::new(), 0);
        assert!(b.update_representative("cooking", empty));
        let sel = b.select("mushroom soup", 0.25, SelectionPolicy::EstimatedUseful);
        assert!(!sel.contains(&"cooking".to_string()), "{sel:?}");
        assert!(b.refresh_representative("cooking"));
        let sel = b.select("mushroom soup", 0.25, SelectionPolicy::EstimatedUseful);
        assert!(sel.contains(&"cooking".to_string()), "{sel:?}");
        // Unknown names report failure.
        assert!(!b.refresh_representative("nope"));
        assert!(!b.update_representative("nope", Representative::from_parts(0, Vec::new(), 0)));
    }

    #[test]
    fn unknown_query_selects_nothing_useful() {
        let b = broker();
        let sel = b.select("zebra quantum", 0.1, SelectionPolicy::EstimatedUseful);
        assert!(sel.is_empty());
        let hits = b.search("zebra quantum", 0.1, SelectionPolicy::EstimatedUseful);
        assert!(hits.is_empty());
    }
}
