//! The broker itself.
//!
//! The public API is the [`SearchRequest`] pipeline:
//!
//! 1. [`Broker::plan`] analyzes the query once against the broker-global
//!    vocabulary, builds per-engine query vectors through each engine's
//!    registration-time [`TermMap`], estimates every engine, and applies
//!    the selection policy → [`QueryPlan`];
//! 2. [`Broker::execute`] dispatches the plan over a bounded
//!    [`WorkerPool`] and merges the results → [`SearchResponse`].
//!
//! The pre-pipeline entry points ([`Broker::estimate_all`],
//! [`Broker::select`], [`Broker::search`]) remain as thin wrappers over
//! the same implementation.

use crate::cache::{
    CacheKey, CachePolicy, CacheStats, CacheTier, CachedResponse, CachedValue, QueryCache,
};
use crate::merge::merge_results;
use crate::persist::{record_for_local, record_for_remote, StoreHandle};
use crate::plan::{PlannedEngine, QueryPlan, SharedAnalysis};
use crate::pool::{JobStatus, WorkerPool};
use crate::registry::{
    shard_for, ColdEntry, EngineHandle, EngineStatus, RegisteredEngine, RegistrySnapshot,
    ReprProvenance, Shard, ShardedRegistry, StalePlanError,
};
use crate::remote::{
    EngineSnapshot, RemoteMeta, RemoteTransport, TransportError, TransportErrorKind,
};
use crate::request::{
    DispatchOutcome, EngineDispatchStats, SearchRequest, SearchResponse, StaleMode,
};
use crate::selection::SelectionPolicy;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use seu_core::{Usefulness, UsefulnessEstimator};
use seu_engine::{Fingerprint, SearchEngine, TermMap};
use seu_obs::{SpanRecord, TraceHandle};
use seu_repr::Representative;
use seu_store::{EntryKind, Manifest, ManifestEntry, ReprStore, StoreError};
use seu_text::{Analyzer, AnalyzerConfig, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A shard-sweep job for the worker pool, returning the `(registration
/// sequence, name)` of every engine it refreshed.
type SweepJob = Box<dyn FnOnce() -> Vec<(u64, String)> + Send>;

/// One engine's dispatch job: its merged hits and its wall-clock, or the
/// typed transport failure that produced neither.
type DispatchJob = Box<dyn FnOnce() -> Result<(Vec<MergedHit>, f64), TransportError> + Send>;

/// A shard-hydration job for the worker pool, returning how many cold
/// entries it decoded from the store.
type HydrateJob = Box<dyn FnOnce() -> usize + Send>;

/// Instrument handles cached once per process.
struct BrokerMetrics {
    query_latency: Arc<seu_obs::Histogram>,
    select_latency: Arc<seu_obs::Histogram>,
    plan_latency: Arc<seu_obs::Histogram>,
    dispatch_latency: Arc<seu_obs::Histogram>,
    queries: Arc<seu_obs::Counter>,
    selects: Arc<seu_obs::Counter>,
    estimates: Arc<seu_obs::Counter>,
    analyses: Arc<seu_obs::Counter>,
    considered: Arc<seu_obs::Counter>,
    selected: Arc<seu_obs::Counter>,
    merge_hits: Arc<seu_obs::Counter>,
    merge_size: Arc<seu_obs::Histogram>,
    engine_failures: Arc<seu_obs::Counter>,
    engine_timeouts: Arc<seu_obs::Counter>,
    representative_refreshes: Arc<seu_obs::Counter>,
    stale_plans: Arc<seu_obs::Counter>,
    push_invalidations: Arc<seu_obs::Counter>,
    registry_engines: Arc<seu_obs::Gauge>,
    representative_bytes: Arc<seu_obs::Gauge>,
    store_hydration: Arc<seu_obs::Histogram>,
}

fn metrics() -> &'static BrokerMetrics {
    static METRICS: OnceLock<BrokerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| BrokerMetrics {
        query_latency: seu_obs::histogram("broker_query_latency_seconds"),
        select_latency: seu_obs::histogram("broker_select_latency_seconds"),
        plan_latency: seu_obs::histogram("broker_plan_latency_seconds"),
        dispatch_latency: seu_obs::histogram("broker_dispatch_latency_seconds"),
        queries: seu_obs::counter("broker_queries_total"),
        selects: seu_obs::counter("broker_selects_total"),
        estimates: seu_obs::counter("broker_estimates_total"),
        analyses: seu_obs::counter("broker_query_analyses_total"),
        considered: seu_obs::counter("broker_engines_considered_total"),
        selected: seu_obs::counter("broker_engines_selected_total"),
        merge_hits: seu_obs::counter("broker_merge_hits_total"),
        merge_size: seu_obs::histogram_with_buckets(
            "broker_merge_result_size",
            &seu_obs::SIZE_BUCKETS,
        ),
        engine_failures: seu_obs::counter("broker_engine_failures_total"),
        engine_timeouts: seu_obs::counter("broker_engine_timeouts_total"),
        representative_refreshes: seu_obs::counter("broker_representative_refreshes_total"),
        stale_plans: seu_obs::counter("broker_stale_plans_total"),
        push_invalidations: seu_obs::counter("broker_push_invalidations_total"),
        registry_engines: seu_obs::gauge("broker_registry_engines"),
        representative_bytes: seu_obs::gauge("broker_representative_bytes_resident"),
        store_hydration: seu_obs::histogram("broker_store_hydration_seconds"),
    })
}

/// Forces creation of the broker's instruments so snapshots and
/// expositions include the whole `broker_*` family — zero-valued if the
/// process never ran a query — instead of a family that appears only
/// after the first call touches it.
pub fn register_metrics() {
    let _ = metrics();
    crate::pool::register_metrics();
    crate::cache::register_metrics();
    seu_store::register_metrics();
}

/// Default query-cache byte budget (32 MiB); `cache_bytes(0)` disables
/// the cache entirely.
pub const DEFAULT_CACHE_BYTES: usize = 32 << 20;

/// Default hot-tier byte budget for [`BrokerBuilder::store`] (64 MiB):
/// the decoded-record cache in front of the quantized cold tier.
pub const DEFAULT_HOT_TIER_BYTES: usize = 64 << 20;

/// One engine's estimate for a query, as reported by the broker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineEstimate {
    /// Engine name (registration key).
    pub engine: String,
    /// Estimated usefulness.
    pub usefulness: Usefulness,
}

/// One merged result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedHit {
    /// Engine that returned the document.
    pub engine: String,
    /// Document name within that engine.
    pub doc: String,
    /// Global (cosine) similarity.
    pub sim: f64,
}

/// Configures a [`Broker`] before construction.
///
/// ```
/// use seu_metasearch::Broker;
/// use seu_core::SubrangeEstimator;
///
/// let broker = Broker::builder(SubrangeEstimator::paper_six_subrange())
///     .worker_threads(8)
///     .build();
/// assert!(broker.is_empty());
/// ```
pub struct BrokerBuilder<E> {
    estimator: E,
    shards: usize,
    worker_threads: Option<usize>,
    pool_label: Option<String>,
    cache_bytes: usize,
    cache_policy: CachePolicy,
    store: Option<Arc<StoreHandle>>,
}

impl<E: UsefulnessEstimator + Sync> BrokerBuilder<E> {
    /// Fixes the dispatch worker-pool size. Without this the pool is
    /// sized `min(registered engines, available cores)` when the first
    /// query executes.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = Some(threads.max(1));
        self
    }

    /// Splits the registry across `n` independently locked shards
    /// (engine ids route by [`crate::shard_for`]), so registration,
    /// refresh, and push invalidation on one shard never block planning
    /// over another. The default of 1 is the flat registry; raise it
    /// for registries in the thousands of engines. Results are
    /// bit-identical at any shard count (proven by the
    /// `shard_conformance` suite). Values are clamped to at least 1.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Names this broker's dispatch pool, so its queue depth and worker
    /// count are additionally published under exclusive, label-suffixed
    /// gauges (`broker_pool_<label>_queue_depth`,
    /// `broker_pool_<label>_workers`) instead of only the process-wide
    /// sums — see [`WorkerPool::named`]. Use a Prometheus-safe fragment
    /// (`[a-z0-9_]+`).
    pub fn pool_label(mut self, label: impl Into<String>) -> Self {
        self.pool_label = Some(label.into());
        self
    }

    /// Sets the query cache's approximate resident-byte budget
    /// (default [`DEFAULT_CACHE_BYTES`]). `0` disables the cache: every
    /// request runs the full cold pipeline, as before the cache
    /// existed.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the cache's admission/eviction policy (default
    /// [`CachePolicy::SegmentedLru`]).
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Attaches a persistent representative store rooted at `path`
    /// (created if absent), opened as the full tiered stack — a
    /// [`DEFAULT_HOT_TIER_BYTES`] decoded-record cache over the
    /// quantized on-disk cold tier. Every representative the broker
    /// installs is written through (and **canonicalized**: the broker
    /// serves the quantized round-trip, so its estimates are
    /// bit-identical to a broker restored from the store later);
    /// [`Broker::snapshot_registry`] persists a consistent registry cut
    /// and [`Broker::restore`] rebuilds a registry from one.
    pub fn store(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        let store = seu_store::open_tiered(path, DEFAULT_HOT_TIER_BYTES)?;
        self.store = Some(Arc::new(StoreHandle::new(Arc::new(store))));
        Ok(self)
    }

    /// Attaches an already-constructed representative store (e.g. a
    /// custom tier stack, or a shared in-memory store in tests). Same
    /// write-through and canonicalization semantics as
    /// [`BrokerBuilder::store`].
    pub fn store_handle(mut self, store: Arc<dyn ReprStore>) -> Self {
        self.store = Some(Arc::new(StoreHandle::new(store)));
        self
    }

    /// Builds the (empty) broker.
    pub fn build(self) -> Broker<E> {
        // Per-shard gauges only exist for actually sharded brokers: a
        // flat (1-shard) broker keeps the historical metric surface.
        let shard_gauges = if self.shards > 1 {
            (0..self.shards)
                .map(|i| ShardGauges {
                    engines: seu_obs::gauge(&format!("broker_registry_engines_shard_{i}")),
                    bytes: seu_obs::gauge(&format!(
                        "broker_representative_bytes_resident_shard_{i}"
                    )),
                })
                .collect()
        } else {
            Vec::new()
        };
        Broker {
            estimator: self.estimator,
            registry: Arc::new(ShardedRegistry::new(self.shards)),
            vocab: Arc::new(RwLock::new(Vocabulary::new())),
            shard_gauges: Arc::new(shard_gauges),
            worker_threads: self.worker_threads,
            pool_label: self.pool_label,
            pool: OnceLock::new(),
            cache: (self.cache_bytes > 0)
                .then(|| QueryCache::new(self.cache_bytes, self.cache_policy)),
            store: self.store,
            cold_engines: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// A metasearch broker generic over the usefulness estimator.
///
/// # Examples
///
/// ```
/// use seu_metasearch::{Broker, SearchRequest, SelectionPolicy};
/// use seu_core::SubrangeEstimator;
/// use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
/// use seu_text::Analyzer;
///
/// let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
/// b.add_document("d0", "mushroom soup with cream");
/// let cooking = SearchEngine::new(b.build());
///
/// let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
/// broker.register("cooking", cooking);
///
/// // The request pipeline: plan once, execute over the worker pool.
/// let req = SearchRequest::new("mushroom soup")
///     .threshold(0.2)
///     .with_estimates(true);
/// let plan = broker.plan(&req, None);
/// assert_eq!(plan.selected_names(), vec!["cooking".to_string()]);
/// let resp = broker.execute(&req);
/// assert_eq!(resp.hits[0].doc, "d0");
/// assert_eq!(resp.estimates.len(), 1);
///
/// // The legacy wrappers delegate to the same pipeline.
/// let selected = broker.select("mushroom soup", 0.2, SelectionPolicy::EstimatedUseful);
/// assert_eq!(selected, vec!["cooking".to_string()]);
/// let hits = broker.search("mushroom soup", 0.2, SelectionPolicy::EstimatedUseful);
/// assert_eq!(hits, resp.hits);
/// ```
pub struct Broker<E> {
    estimator: E,
    /// The registry: N independently locked shards, each owning its
    /// entries, its epoch counter, and its gauge bookkeeping. The
    /// broker-wide registry epoch is derived as the sum of the shard
    /// epochs — bumped under the owning shard's write lock on every
    /// registration and per-engine lifecycle change (refresh,
    /// representative update, engine replacement), never behind a
    /// global lock. [`QueryPlan`] records the sum it was planned
    /// against; a mismatch later means the plan is stale. `Arc` so
    /// per-shard refresh sweeps can run as `'static` worker-pool jobs.
    registry: Arc<ShardedRegistry>,
    /// Union vocabulary over every registered engine — the target of the
    /// single query-analysis pass. Locked *after* a shard's entries lock
    /// everywhere both are held.
    vocab: Arc<RwLock<Vocabulary>>,
    /// Per-shard gauge handles (`broker_registry_engines_shard_<i>`,
    /// `broker_representative_bytes_resident_shard_<i>`); empty for flat
    /// (1-shard) brokers.
    shard_gauges: Arc<Vec<ShardGauges>>,
    /// Builder override for the dispatch pool size.
    worker_threads: Option<usize>,
    /// Builder override for the dispatch pool's metric label.
    pool_label: Option<String>,
    /// The dispatch pool, sized lazily at first execution.
    pool: OnceLock<WorkerPool>,
    /// The query cache (`None` when built with `cache_bytes(0)`). Keys
    /// embed the registry epoch, so staleness falls out of the existing
    /// epoch machinery — see [`crate::cache`] for the design.
    cache: Option<QueryCache>,
    /// The attached representative store (`None` without
    /// [`BrokerBuilder::store`]). Installs write through it; restores
    /// read back from it.
    store: Option<Arc<StoreHandle>>,
    /// Number of restored entries whose representative still lives only
    /// in the cold tier. Planning hydrates lazily: the first plan after
    /// a restore decodes every cold entry (per shard, in parallel),
    /// after which this is 0 and the check is a single atomic load.
    cold_engines: Arc<AtomicU64>,
}

/// Per-shard registry gauge handles.
struct ShardGauges {
    engines: Arc<seu_obs::Gauge>,
    bytes: Arc<seu_obs::Gauge>,
}

/// Re-publishes one shard's contribution to the registry gauges as a
/// delta against what it last reported, so several live brokers (e.g.
/// in one test binary) sum correctly, and so `Drop` can retract exactly
/// what was published. Call with the shard's entries write lock held —
/// publication must be atomic with the change it reports.
fn publish_shard_gauges(
    shard: &Shard,
    shard_idx: usize,
    entries: &[RegisteredEngine],
    per_shard: &[ShardGauges],
) {
    let m = metrics();
    let n = entries.len() as u64;
    // Cold (not-yet-hydrated) entries report the encoded size the
    // manifest recorded; hydrated ones their decoded resident bytes.
    let bytes: u64 = entries
        .iter()
        .map(|e| match e.cold {
            Some(c) => c.repr_bytes,
            None => e.repr.bytes_resident(),
        })
        .sum();
    let prev_n = shard.gauge_engines.swap(n, Ordering::SeqCst);
    let prev_bytes = shard.gauge_repr_bytes.swap(bytes, Ordering::SeqCst);
    let dn = n as f64 - prev_n as f64;
    let dbytes = bytes as f64 - prev_bytes as f64;
    m.registry_engines.add(dn);
    m.representative_bytes.add(dbytes);
    if let Some(g) = per_shard.get(shard_idx) {
        g.engines.add(dn);
        g.bytes.add(dbytes);
    }
}

/// Sweeps one shard for stale entries and refreshes them, bumping the
/// shard epoch once per refresh and republishing the shard's gauges.
/// Returns `(registration seq, name)` of every engine refreshed. Free
/// function (not a method) so multi-shard sweeps can run it as
/// `'static` worker-pool jobs holding only `Arc` handles.
fn sweep_shard(
    registry: &ShardedRegistry,
    idx: usize,
    vocab: &RwLock<Vocabulary>,
    gauges: &[ShardGauges],
    store: Option<&StoreHandle>,
) -> Vec<(u64, String)> {
    let shard = &registry.shards()[idx];
    let mut entries = shard.entries.write();
    let mut refreshed = Vec::new();
    for e in entries.iter_mut() {
        if e.is_stale() && e.try_refresh(&mut vocab.write(), store).is_ok() {
            metrics().representative_refreshes.inc();
            shard.epoch.fetch_add(1, Ordering::SeqCst);
            refreshed.push((e.seq, e.name.clone()));
        }
    }
    if !refreshed.is_empty() {
        publish_shard_gauges(shard, idx, &entries, gauges);
    }
    refreshed
}

/// Hydrates every cold entry in one shard from the store: decodes the
/// stored record, rebuilds the entry's planning metadata and term map
/// from it, and installs the canonical representative. Runs under the
/// shard's write lock; bumps **no** epochs — hydration is invisible to
/// planning because every plan hydrates first, so no plan (or cache
/// entry) can ever have observed the pre-hydration placeholder state.
/// A record that is missing or unreadable marks its entry
/// `pending_invalidation` (surfaced as stale, reconciled by attach)
/// and stashes the error for the next `snapshot_registry`, instead of
/// re-reading the store on every plan.
fn hydrate_shard(
    registry: &ShardedRegistry,
    idx: usize,
    vocab: &RwLock<Vocabulary>,
    gauges: &[ShardGauges],
    store: &StoreHandle,
    cold_engines: &AtomicU64,
) -> usize {
    let shard = &registry.shards()[idx];
    if shard.entries.read().iter().all(|e| e.cold.is_none()) {
        return 0;
    }
    let m = metrics();
    let mut entries = shard.entries.write();
    let mut hydrated = 0usize;
    for e in entries.iter_mut() {
        if e.cold.is_none() {
            continue;
        }
        let timer = m.store_hydration.start_timer();
        let key = e
            .stored_fingerprint
            .expect("cold entries always carry their store key");
        match store.get(key) {
            Some(record) => {
                let endpoint = e.handle.endpoint();
                let meta = RemoteMeta {
                    analyzer: record.analyzer,
                    scheme: record.scheme,
                    n_docs: record.n_docs(),
                    doc_freq: record.doc_freq.clone(),
                    vocab: record.vocab.clone(),
                    fingerprint: record.fingerprint,
                };
                // The record's vocabulary is written in the source
                // collection's term-id order, so this map is valid for
                // any collection with the same fingerprint — which is
                // what lets `replace_engine`/`attach_engine` with
                // identical content plan immediately, exactly like a
                // never-restarted broker.
                e.map = TermMap::from_vocab(&mut vocab.write(), &meta.vocab);
                e.map_fingerprint = Some(record.fingerprint);
                e.repr = record.repr.clone();
                e.handle = EngineHandle::Detached { meta, endpoint };
            }
            None => {
                store.stash(StoreError::missing(format!(
                    "stored representative for engine {:?} ({key:?}) is missing or unreadable",
                    e.name
                )));
                e.pending_invalidation = true;
            }
        }
        e.cold = None;
        cold_engines.fetch_sub(1, Ordering::SeqCst);
        hydrated += 1;
        timer.stop();
    }
    if hydrated > 0 {
        publish_shard_gauges(shard, idx, &entries, gauges);
    }
    hydrated
}

impl<E> Drop for Broker<E> {
    fn drop(&mut self) {
        let m = metrics();
        for (i, shard) in self.registry.shards().iter().enumerate() {
            let n = shard.gauge_engines.swap(0, Ordering::SeqCst);
            let bytes = shard.gauge_repr_bytes.swap(0, Ordering::SeqCst);
            m.registry_engines.add(-(n as f64));
            m.representative_bytes.add(-(bytes as f64));
            if let Some(g) = self.shard_gauges.get(i) {
                g.engines.add(-(n as f64));
                g.bytes.add(-(bytes as f64));
            }
        }
    }
}

impl<E: UsefulnessEstimator + Sync> Broker<E> {
    /// Creates an empty broker with default dispatch configuration.
    pub fn new(estimator: E) -> Self {
        Broker::builder(estimator).build()
    }

    /// Starts configuring a broker.
    pub fn builder(estimator: E) -> BrokerBuilder<E> {
        BrokerBuilder {
            estimator,
            shards: 1,
            worker_threads: None,
            pool_label: None,
            cache_bytes: DEFAULT_CACHE_BYTES,
            cache_policy: CachePolicy::default(),
            store: None,
        }
    }

    /// The query cache's live stats (`None` when the cache is disabled
    /// via `cache_bytes(0)`).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The cache to use for a request: `None` when the cache is
    /// disabled, the request bypasses it, or the request wants an
    /// `explain` trace (whose span tree must describe real work).
    fn cache_for(&self, req: &SearchRequest) -> Option<&QueryCache> {
        if req.explain || !req.cache.reads() {
            return None;
        }
        self.cache.as_ref()
    }

    /// Eagerly reclaims cache entries made stale by a lifecycle event.
    /// Correctness never depends on this — keys embed their epoch, so a
    /// stale entry already misses every lookup — it only returns the
    /// dead entries' bytes to the budget immediately.
    fn purge_cache(&self) {
        if let Some(c) = &self.cache {
            c.purge_stale(self.registry.epoch());
        }
    }

    /// Registers an engine; its representative is built from its
    /// collection on the spot (in a deployment the engine would ship the
    /// serialized representative instead — see
    /// [`Broker::register_with_representative`]).
    pub fn register(&self, name: &str, engine: SearchEngine) {
        self.register_shared(name, Arc::new(engine));
    }

    /// [`Broker::register`] for an engine shared by handle — the
    /// federation replication path, where several broker replicas hold
    /// standby copies of the same in-process engine. Registration is
    /// byte-identical to [`Broker::register`]: the representative is
    /// built from the same collection either way.
    pub fn register_shared(&self, name: &str, engine: Arc<SearchEngine>) {
        let repr = Representative::build(engine.collection());
        let provenance = ReprProvenance::Local(engine.fingerprint());
        self.register_inner(name, engine, repr, provenance);
    }

    /// Registers an engine together with a representative it supplied
    /// (e.g. deserialized from [`Representative::to_bytes`], or a
    /// quantized one). The engine's vocabulary is folded into the
    /// broker-global vocabulary so queries are analyzed once, not once
    /// per engine.
    pub fn register_with_representative(
        &self,
        name: &str,
        engine: SearchEngine,
        repr: Representative,
    ) {
        let provenance = ReprProvenance::Shipped {
            n_docs: repr.n_docs(),
            raw_bytes: repr.collection_bytes(),
        };
        self.register_inner(name, Arc::new(engine), repr, provenance);
    }

    /// Shared registration path. Lock order: the owning shard's
    /// `entries` before `vocab`, matching every lifecycle method that
    /// touches both. Only the routed shard is locked — registration in
    /// one shard never blocks planning over another.
    fn register_inner(
        &self,
        name: &str,
        engine: Arc<SearchEngine>,
        repr: Representative,
        provenance: ReprProvenance,
    ) {
        let (idx, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        let map = TermMap::build(&mut self.vocab.write(), engine.collection());
        let map_fingerprint = Some(engine.fingerprint());
        // Write-through: an attached store receives the representative
        // and hands back the canonical (quantized round-trip) form,
        // which is what the broker must serve to stay bit-identical
        // with a broker restored from the store later.
        let (repr, stored_fingerprint) = match self.store.as_deref() {
            Some(store) => {
                let record = record_for_local(name, &engine, &repr);
                let canonical = store.canonicalize(&record);
                (canonical.repr.clone(), Some(canonical.fingerprint))
            }
            None => (Arc::new(repr), None),
        };
        entries.push(RegisteredEngine {
            name: name.to_string(),
            seq: self.registry.next_seq(),
            handle: EngineHandle::Local(engine),
            repr,
            map,
            map_fingerprint,
            epoch: 0,
            provenance,
            pending_invalidation: false,
            cold: None,
            stored_fingerprint,
        });
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        drop(entries);
        self.purge_cache();
    }

    /// Registers an engine that lives in another process, reached through
    /// `transport`: fetches its [`EngineSnapshot`](crate::EngineSnapshot)
    /// (name, analyzer configuration, weighting statistics, fingerprint,
    /// and its representative + vocabulary at full precision), folds its
    /// vocabulary into the broker-global term space, and registers it
    /// under its advertised name. From then on the broker plans for it
    /// exactly as for a local engine — same shared analysis, same term
    /// translation, same estimates, byte for byte — and dispatches to it
    /// over the transport.
    ///
    /// Returns the engine's advertised name, or the [`TransportError`]
    /// if the snapshot could not be fetched or was inconsistent.
    pub fn register_remote(
        &self,
        transport: Arc<dyn RemoteTransport>,
    ) -> Result<String, TransportError> {
        let snapshot = transport.fetch_snapshot()?;
        if !snapshot.is_consistent() {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "engine {:?} shipped an inconsistent snapshot",
                    snapshot.name
                ),
            ));
        }
        let meta = RemoteMeta::from_snapshot(&snapshot);
        let name = snapshot.name.clone();
        let (idx, shard) = self.registry.shard_of(&name);
        let mut entries = shard.entries.write();
        let map = TermMap::from_vocab(&mut self.vocab.write(), &meta.vocab);
        let (repr, stored_fingerprint) = match self.store.as_deref() {
            Some(store) => {
                let record = record_for_remote(&name, &meta, &snapshot.summary.repr);
                let canonical = store.canonicalize(&record);
                (canonical.repr.clone(), Some(canonical.fingerprint))
            }
            None => (Arc::new(snapshot.summary.repr), None),
        };
        entries.push(RegisteredEngine {
            name: name.clone(),
            seq: self.registry.next_seq(),
            handle: EngineHandle::Remote { transport, meta },
            repr,
            map,
            map_fingerprint: None,
            epoch: 0,
            provenance: ReprProvenance::Remote(snapshot.fingerprint),
            pending_invalidation: false,
            cold: None,
            stored_fingerprint,
        });
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        drop(entries);
        self.purge_cache();
        Ok(name)
    }

    /// Installs an engine from a shipped [`EngineSnapshot`] — the
    /// federation rebalance path, where a moved engine hydrates on this
    /// broker from the snapshot alone instead of re-registering against
    /// the original collection. With a live `engine` handle (an
    /// in-process source shared across replicas) the entry dispatches
    /// immediately; with only an `endpoint` it is registered detached —
    /// planning and estimates work bit-identically from the shipped
    /// representative, and [`Broker::attach_remote`] upgrades it to a
    /// live remote once a transport dials the endpoint.
    pub fn install_snapshot(
        &self,
        snapshot: EngineSnapshot,
        engine: Option<Arc<SearchEngine>>,
        endpoint: Option<String>,
    ) -> Result<String, TransportError> {
        if !snapshot.is_consistent() {
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "engine {:?} shipped an inconsistent snapshot",
                    snapshot.name
                ),
            ));
        }
        let meta = RemoteMeta::from_snapshot(&snapshot);
        let name = snapshot.name.clone();
        let (idx, shard) = self.registry.shard_of(&name);
        let mut entries = shard.entries.write();
        let map = TermMap::from_vocab(&mut self.vocab.write(), &meta.vocab);
        let (repr, stored_fingerprint) = match self.store.as_deref() {
            Some(store) => {
                let record = record_for_remote(&name, &meta, &snapshot.summary.repr);
                let canonical = store.canonicalize(&record);
                (canonical.repr.clone(), Some(canonical.fingerprint))
            }
            None => (Arc::new(snapshot.summary.repr.clone()), None),
        };
        // The snapshot's vocabulary is id-aligned with the source
        // collection, so when the live engine *is* that collection the
        // map is valid for it and planning may trust it.
        let map_fingerprint = engine
            .as_ref()
            .map(|e| e.fingerprint())
            .filter(|fp| *fp == snapshot.fingerprint);
        let handle = match engine {
            Some(engine) => EngineHandle::Local(engine),
            None => EngineHandle::Detached { meta, endpoint },
        };
        entries.push(RegisteredEngine {
            name: name.clone(),
            seq: self.registry.next_seq(),
            handle,
            repr,
            map,
            map_fingerprint,
            epoch: 0,
            provenance: ReprProvenance::Remote(snapshot.fingerprint),
            pending_invalidation: false,
            cold: None,
            stored_fingerprint,
        });
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        drop(entries);
        self.purge_cache();
        Ok(name)
    }

    /// Removes an engine from the registry, bumping the shard epoch so
    /// outstanding plans that include it are detectably stale. Returns
    /// `false` for an unknown name. This is the federation rebalance
    /// counterpart of [`Broker::install_snapshot`]: a replica drops an
    /// engine once the ring no longer places it here.
    pub fn deregister(&self, name: &str) -> bool {
        let (idx, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        let Some(pos) = entries.iter().position(|e| e.name == name) else {
            return false;
        };
        if entries[pos].cold.is_some() {
            self.cold_engines.fetch_sub(1, Ordering::SeqCst);
        }
        entries.remove(pos);
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        drop(entries);
        self.purge_cache();
        true
    }

    /// Exports an engine's [`EngineSnapshot`] for shipping to another
    /// broker (the federation rebalance path). Local engines snapshot
    /// their collection, remote engines refetch over their transport,
    /// and detached entries refuse — there is nothing live to export
    /// from.
    pub fn export_snapshot(&self, name: &str) -> Result<EngineSnapshot, TransportError> {
        let (_, shard) = self.registry.shard_of(name);
        let handle = {
            let entries = shard.entries.read();
            entries
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.handle.clone())
        };
        match handle {
            None => Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!("unknown engine {name:?}"),
            )),
            Some(EngineHandle::Local(engine)) => Ok(EngineSnapshot::of_engine(name, &engine)),
            Some(EngineHandle::Remote { transport, .. }) => transport.fetch_snapshot(),
            Some(EngineHandle::Detached { .. }) => Err(TransportError::new(
                TransportErrorKind::Refused,
                format!("engine {name:?} is detached; nothing live to export"),
            )),
        }
    }

    /// Applies a push invalidation notice from a remote engine: the
    /// engine's collection changed and its snapshot fingerprint is now
    /// `fingerprint`. If the registry already holds that snapshot the
    /// notice is a no-op; otherwise the broker refetches the snapshot
    /// over the engine's transport and installs it (representative, term
    /// map, planning metadata, and provenance move together), bumping the
    /// engine's epoch and the registry epoch so outstanding plans are
    /// detectably stale.
    ///
    /// This is the push half of the representative lifecycle — the
    /// polling [`Broker::refresh_if_stale`] sweep never has to run for an
    /// engine that notifies. Counted by `broker_push_invalidations_total`.
    ///
    /// Returns `Ok(true)` if the notice targeted a known engine (whether
    /// or not a refetch was needed), `Ok(false)` for an unknown name, and
    /// the [`TransportError`] if the refetch failed — in which case the
    /// entry is marked stale so a later sweep retries it.
    pub fn apply_invalidation(
        &self,
        name: &str,
        fingerprint: Fingerprint,
    ) -> Result<bool, TransportError> {
        let m = metrics();
        let (idx, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        let Some(i) = entries.iter().position(|e| e.name == name) else {
            return Ok(false);
        };
        m.push_invalidations.inc();
        if entries[i].provenance.matches(fingerprint) && !entries[i].pending_invalidation {
            // The notice describes the snapshot the registry already
            // holds (e.g. a redelivery); nothing to refetch. Restored
            // entries compare against the manifest's fingerprint, so a
            // redelivered pre-snapshot notice is a no-op even before
            // hydration.
            return Ok(true);
        }
        entries[i].try_refresh(&mut self.vocab.write(), self.store.as_deref())?;
        m.representative_refreshes.inc();
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        // The push half of cache invalidation: entries keyed at the
        // pre-notice epoch are dropped eagerly, not just unreachable.
        drop(entries);
        self.purge_cache();
        Ok(true)
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether no engine is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of registry shards (1 for a flat broker).
    pub fn shards(&self) -> usize {
        self.registry.n_shards()
    }

    /// Registered engine names, in registration order.
    pub fn engine_names(&self) -> Vec<String> {
        let mut named: Vec<(u64, String)> = Vec::new();
        for shard in self.registry.shards() {
            named.extend(shard.entries.read().iter().map(|e| (e.seq, e.name.clone())));
        }
        named.sort_unstable_by_key(|&(seq, _)| seq);
        named.into_iter().map(|(_, name)| name).collect()
    }

    /// Shared handles to the registered **local** engines, in
    /// registration order (used by the hierarchy layer to build group
    /// summaries). Remote engines are skipped: their collections are not
    /// resident in this process.
    pub fn engines(&self) -> Vec<Arc<SearchEngine>> {
        let mut handles: Vec<(u64, Arc<SearchEngine>)> = Vec::new();
        for shard in self.registry.shards() {
            handles.extend(
                shard
                    .entries
                    .read()
                    .iter()
                    .filter_map(|e| e.handle.local().cloned().map(|h| (e.seq, h))),
            );
        }
        handles.sort_unstable_by_key(|&(seq, _)| seq);
        handles.into_iter().map(|(_, h)| h).collect()
    }

    /// The dispatch pool, created at first use: `worker_threads` from the
    /// builder if set, else `min(registered engines, available cores)`.
    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| {
            let threads = self.worker_threads.unwrap_or_else(|| {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                cores.min(self.len().max(1))
            });
            match &self.pool_label {
                Some(label) => WorkerPool::named(label, threads),
                None => WorkerPool::new(threads),
            }
        })
    }

    /// The configured or effective dispatch pool size, and the peak
    /// number of concurrently dispatched engine searches observed so far
    /// (0 before the first execution).
    pub fn pool_stats(&self) -> (usize, u64) {
        match self.pool.get() {
            Some(pool) => (pool.threads(), pool.peak_active()),
            None => (self.worker_threads.unwrap_or(0), 0),
        }
    }

    /// Rebuilds the named engine's representative — from its current
    /// collection for a local engine (the paper's infrequent
    /// metadata-propagation step, §1), by refetching its snapshot for a
    /// remote one — and, atomically with it, the engine's term map
    /// against the broker-global vocabulary, so terms that entered the
    /// collection after registration reach every subsequent plan. Bumps
    /// the engine's epoch and the registry epoch. Returns false if no
    /// engine has that name or a remote refetch failed (the entry is
    /// then marked stale for the next sweep).
    pub fn refresh_representative(&self, name: &str) -> bool {
        let (idx, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        match entries.iter_mut().find(|e| e.name == name) {
            Some(e) => {
                if e.try_refresh(&mut self.vocab.write(), self.store.as_deref())
                    .is_err()
                {
                    return false;
                }
                metrics().representative_refreshes.inc();
                shard.epoch.fetch_add(1, Ordering::SeqCst);
                publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
                drop(entries);
                self.purge_cache();
                true
            }
            None => false,
        }
    }

    /// Replaces the named engine's representative with one it shipped
    /// (e.g. a quantized or accumulator-snapshotted one), rebuilding the
    /// engine's term map alongside it. Bumps the engine's epoch and the
    /// registry epoch. Returns false if no engine has that name, or if
    /// the engine is remote (remote entries receive whole snapshots via
    /// push invalidation or [`Broker::refresh_representative`]).
    pub fn update_representative(&self, name: &str, repr: Representative) -> bool {
        let (idx, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        match entries
            .iter_mut()
            .find(|e| e.name == name && e.handle.local().is_some())
        {
            Some(e) => {
                e.install_shipped(&mut self.vocab.write(), repr, self.store.as_deref());
                metrics().representative_refreshes.inc();
                shard.epoch.fetch_add(1, Ordering::SeqCst);
                publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
                drop(entries);
                self.purge_cache();
                true
            }
            None => false,
        }
    }

    /// Swaps the named engine for a new snapshot of it **without**
    /// touching its representative or term map — modelling a remote
    /// engine that re-indexed while the broker's metadata lags behind
    /// (the paper's propagation is infrequent by design). The entry
    /// becomes stale if the new collection's fingerprint differs; a
    /// [`Broker::refresh_if_stale`] sweep (or an explicit
    /// [`Broker::refresh_representative`]) reconciles it. Bumps the
    /// registry epoch so outstanding plans are detectably stale. Returns
    /// false if no **local** engine has that name (a remote engine's
    /// snapshot lives in its own process; it announces changes with push
    /// invalidation instead).
    pub fn replace_engine(&self, name: &str, engine: SearchEngine) -> bool {
        // Hydrate first so a restored entry's term map and canonical
        // representative are in place: swapping in a collection with
        // the stored fingerprint then plans immediately (the hydrated
        // map is id-aligned with it), and any other collection follows
        // the usual sidelined-until-sweep path.
        self.ensure_hydrated();
        let (_, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        match entries
            .iter_mut()
            .find(|e| e.name == name && !e.handle.is_remote())
        {
            Some(e) => {
                e.handle = EngineHandle::Local(Arc::new(engine));
                e.epoch += 1;
                shard.epoch.fetch_add(1, Ordering::SeqCst);
                // The epoch bump at the same instant as the swap also
                // closes the cache's mid-replacement window: plans and
                // results cached against the sidelined engine are keyed
                // at the pre-swap epoch, so they can never be served —
                // and the purge reclaims them immediately.
                drop(entries);
                self.purge_cache();
                true
            }
            None => false,
        }
    }

    /// Sweeps the registry and rebuilds the representative (and term
    /// map) of every engine whose collection fingerprint no longer
    /// matches what its representative was built from. The comparison is
    /// O(1) per engine — fingerprints are cached at engine construction;
    /// a remote engine is stale only if a push invalidation (or a failed
    /// refetch) marked it — so the sweep is cheap when nothing changed.
    /// A remote refetch that fails leaves its entry stale for the next
    /// sweep. Returns the names of the engines it refreshed, in
    /// registration order.
    ///
    /// Sharded brokers sweep each shard as an independent worker-pool
    /// job: shards refresh concurrently, and a slow shard (e.g. one
    /// full of remote refetches) only holds its own lock while the
    /// others are already serving plans again.
    pub fn refresh_if_stale(&self) -> Vec<String> {
        self.ensure_hydrated();
        let mut refreshed: Vec<(u64, String)> = Vec::new();
        if self.registry.n_shards() == 1 {
            refreshed = sweep_shard(
                &self.registry,
                0,
                &self.vocab,
                &self.shard_gauges,
                self.store.as_deref(),
            );
        } else {
            let jobs: Vec<SweepJob> = (0..self.registry.n_shards())
                .map(|i| {
                    let registry = Arc::clone(&self.registry);
                    let vocab = Arc::clone(&self.vocab);
                    let gauges = Arc::clone(&self.shard_gauges);
                    let store = self.store.clone();
                    Box::new(move || sweep_shard(&registry, i, &vocab, &gauges, store.as_deref()))
                        as SweepJob
                })
                .collect();
            for status in self.pool().run_collect(jobs, None) {
                if let Some(mut names) = status.into_done() {
                    refreshed.append(&mut names);
                }
            }
        }
        refreshed.sort_unstable_by_key(|&(seq, _)| seq);
        if !refreshed.is_empty() {
            self.purge_cache();
        }
        refreshed.into_iter().map(|(_, name)| name).collect()
    }

    /// Whether the named engine's representative is stale (its
    /// collection fingerprint no longer matches). `None` if no engine
    /// has that name.
    pub fn is_stale(&self, name: &str) -> Option<bool> {
        let (_, shard) = self.registry.shard_of(name);
        shard
            .entries
            .read()
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.is_stale())
    }

    /// Per-engine lifecycle status, in registration order. One snapshot
    /// per shard — see [`Broker::registry_snapshot`] for the epoch cut
    /// that comes with it.
    pub fn engine_statuses(&self) -> Vec<EngineStatus> {
        self.registry_snapshot().statuses
    }

    /// Per-engine lifecycle statuses together with the epoch cut they
    /// were captured at. Each shard contributes its statuses *and* its
    /// epoch from under a single read-lock acquisition (one lock
    /// round-trip per shard, not per engine), so within every shard the
    /// statuses and the epoch describe the same instant — the
    /// consistency contract [`RegistrySnapshot`] documents.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        let mut tagged: Vec<(u64, EngineStatus)> = Vec::new();
        let mut shard_epochs = Vec::with_capacity(self.registry.n_shards());
        for (idx, shard) in self.registry.shards().iter().enumerate() {
            let entries = shard.entries.read();
            // Read under the same guard as the entries: the pair is a
            // consistent cut of this shard.
            shard_epochs.push(shard.epoch.load(Ordering::SeqCst));
            tagged.extend(entries.iter().map(|e| {
                (
                    e.seq,
                    EngineStatus {
                        name: e.name.clone(),
                        shard: idx,
                        epoch: e.epoch,
                        stale: e.is_stale(),
                        // Cold entries report the manifest's bookkeeping
                        // (statuses never force hydration).
                        repr_terms: match e.cold {
                            Some(c) => c.repr_terms as usize,
                            None => e.repr.distinct_terms(),
                        },
                        repr_bytes: match e.cold {
                            Some(c) => c.repr_bytes,
                            None => e.repr.bytes_resident(),
                        },
                        remote: e.handle.is_remote(),
                        detached: e.handle.is_detached(),
                        endpoint: e.handle.endpoint(),
                    },
                )
            }));
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        RegistrySnapshot {
            statuses: tagged.into_iter().map(|(_, s)| s).collect(),
            epoch: shard_epochs.iter().sum(),
            shard_epochs,
        }
    }

    /// The current registry epoch — the sum of the per-shard epochs,
    /// derived without a global lock. Plans made at an older epoch are
    /// stale: their term translations and estimates may no longer
    /// describe the registered representatives.
    pub fn registry_epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Whether a persistent representative store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Persists a consistent cut of the registry to the attached store
    /// and returns the committed [`Manifest`]. Each shard contributes
    /// its entries and epoch from under a single read-lock acquisition
    /// (the same cut discipline as [`Broker::registry_snapshot`]); the
    /// representatives themselves were already written through at
    /// install time, so this only flushes segments and swaps the
    /// manifest atomically.
    ///
    /// Fails with [`StoreErrorKind::Invalid`] if the broker was built
    /// without a store, and re-raises the first store error deferred
    /// from a write-through or hydration since the last snapshot —
    /// a snapshot must not silently describe state the store failed
    /// to absorb.
    ///
    /// [`StoreErrorKind::Invalid`]: seu_store::StoreErrorKind
    pub fn snapshot_registry(&self) -> Result<Manifest, StoreError> {
        let store = self.store.as_deref().ok_or_else(|| {
            StoreError::invalid(
                "broker was built without a store; use BrokerBuilder::store to attach one",
            )
        })?;
        if let Some(err) = store.take_error() {
            return Err(err);
        }
        let mut tagged: Vec<(u64, ManifestEntry)> = Vec::new();
        let mut shard_epochs = Vec::with_capacity(self.registry.n_shards());
        for shard in self.registry.shards() {
            let entries = shard.entries.read();
            shard_epochs.push(shard.epoch.load(Ordering::SeqCst));
            for e in entries.iter() {
                let fingerprint = e.stored_fingerprint.ok_or_else(|| {
                    StoreError::missing(format!(
                        "engine {:?} has no stored representative (was it registered \
                         before the store was attached?)",
                        e.name
                    ))
                })?;
                let kind = if matches!(e.provenance, ReprProvenance::Shipped { .. }) {
                    EntryKind::Shipped
                } else {
                    match &e.handle {
                        EngineHandle::Local(_) => EntryKind::Local,
                        EngineHandle::Remote { transport, .. } => EntryKind::Remote {
                            endpoint: transport.endpoint(),
                        },
                        // A still-detached entry keeps whatever kind it
                        // was snapshotted with.
                        EngineHandle::Detached { endpoint, .. } => match endpoint {
                            Some(ep) => EntryKind::Remote {
                                endpoint: ep.clone(),
                            },
                            None => EntryKind::Local,
                        },
                    }
                };
                tagged.push((
                    e.seq,
                    ManifestEntry {
                        name: e.name.clone(),
                        seq: e.seq,
                        epoch: e.epoch,
                        fingerprint,
                        kind,
                        analyzer: e.handle.analyzer_config(),
                        scheme: e.handle.scheme(),
                        repr_terms: match e.cold {
                            Some(c) => c.repr_terms,
                            None => e.repr.distinct_terms() as u64,
                        },
                        repr_bytes: match e.cold {
                            Some(c) => c.repr_bytes,
                            None => e.repr.bytes_resident(),
                        },
                    },
                ));
            }
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        let manifest = Manifest {
            epoch: shard_epochs.iter().sum(),
            shard_epochs,
            next_seq: self.registry.seq_watermark(),
            entries: tagged.into_iter().map(|(_, e)| e).collect(),
        };
        store.store().commit(&manifest)?;
        Ok(manifest)
    }

    /// Rebuilds the registry from the attached store's last committed
    /// manifest and returns how many engines were restored. The broker
    /// serves immediately: every entry comes up **detached** (statuses,
    /// staleness, and invalidation notices work right away) with its
    /// representative left in the cold tier; the first plan hydrates
    /// each shard lazily — see [`Broker::hydrate`]. Re-attach live
    /// engines with [`Broker::attach_engine`] /
    /// [`Broker::attach_remote`] to dispatch to them.
    ///
    /// The restored broker may use a different shard count than the one
    /// that snapshotted: entries re-route by [`crate::shard_for`] and
    /// each shard's epoch is recomputed to keep the registry invariant
    /// (`shard epoch == entries + Σ entry epochs`), so a restored
    /// broker at the same shard count reports exactly the epochs the
    /// snapshotting broker had.
    ///
    /// Fails with [`StoreErrorKind::Invalid`] if no store is attached
    /// or the broker already has engines registered (restore is a
    /// cold-start operation, not a merge).
    ///
    /// [`StoreErrorKind::Invalid`]: seu_store::StoreErrorKind
    pub fn restore(&self) -> Result<usize, StoreError> {
        let store = self.store.as_deref().ok_or_else(|| {
            StoreError::invalid(
                "broker was built without a store; use BrokerBuilder::store to attach one",
            )
        })?;
        if !self.is_empty() {
            return Err(StoreError::invalid(
                "restore requires an empty broker (it rebuilds the registry from scratch)",
            ));
        }
        let manifest = store.store().manifest();
        let n = manifest.entries.len();
        let n_shards = self.registry.n_shards();
        let mut by_shard: Vec<Vec<&ManifestEntry>> = vec![Vec::new(); n_shards];
        for entry in &manifest.entries {
            by_shard[shard_for(&entry.name, n_shards)].push(entry);
        }
        for (idx, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.registry.shards()[idx];
            let mut entries = shard.entries.write();
            for e in group {
                let fp = e.fingerprint;
                let endpoint = match &e.kind {
                    EntryKind::Remote { endpoint } => Some(endpoint.clone()),
                    EntryKind::Local | EntryKind::Shipped => None,
                };
                let provenance = match &e.kind {
                    EntryKind::Local => ReprProvenance::Local(fp),
                    EntryKind::Remote { .. } => ReprProvenance::Remote(fp),
                    EntryKind::Shipped => ReprProvenance::Shipped {
                        n_docs: fp.n_docs,
                        raw_bytes: fp.raw_bytes,
                    },
                };
                // Placeholders until hydration: an empty representative
                // and vocabulary are enough for statuses and staleness;
                // no plan can observe them (plans hydrate first).
                let meta = RemoteMeta {
                    analyzer: e.analyzer,
                    scheme: e.scheme,
                    n_docs: fp.n_docs.min(u64::from(u32::MAX)) as u32,
                    doc_freq: Arc::new(Vec::new()),
                    vocab: Arc::new(Vocabulary::new()),
                    fingerprint: fp,
                };
                entries.push(RegisteredEngine {
                    name: e.name.clone(),
                    seq: e.seq,
                    handle: EngineHandle::Detached { meta, endpoint },
                    repr: Arc::new(Representative::from_parts(
                        fp.n_docs,
                        Vec::new(),
                        fp.raw_bytes,
                    )),
                    map: TermMap::from_vocab(&mut self.vocab.write(), &Vocabulary::new()),
                    map_fingerprint: None,
                    epoch: e.epoch,
                    provenance,
                    pending_invalidation: false,
                    cold: Some(ColdEntry {
                        repr_terms: e.repr_terms,
                        repr_bytes: e.repr_bytes,
                    }),
                    stored_fingerprint: Some(fp),
                });
            }
            entries.sort_unstable_by_key(|e| e.seq);
            let entry_epochs: u64 = entries.iter().map(|e| e.epoch).sum();
            // Restore the registry invariant for *this* shard count:
            // one registration bump per entry plus its own epoch.
            shard
                .epoch
                .store(entries.len() as u64 + entry_epochs, Ordering::SeqCst);
            publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        }
        self.registry.set_seq(manifest.next_seq);
        self.cold_engines.store(n as u64, Ordering::SeqCst);
        Ok(n)
    }

    /// Hydrates every still-cold restored entry from the store now,
    /// instead of waiting for the first plan to do it lazily; returns
    /// how many entries were decoded. Sharded brokers hydrate each
    /// shard as an independent worker-pool job. Idempotent and cheap
    /// (one atomic load) once everything is hydrated.
    pub fn hydrate(&self) -> usize {
        let Some(store) = &self.store else {
            return 0;
        };
        if self.cold_engines.load(Ordering::SeqCst) == 0 {
            return 0;
        }
        if self.registry.n_shards() == 1 {
            return hydrate_shard(
                &self.registry,
                0,
                &self.vocab,
                &self.shard_gauges,
                store,
                &self.cold_engines,
            );
        }
        let jobs: Vec<HydrateJob> = (0..self.registry.n_shards())
            .map(|i| {
                let registry = Arc::clone(&self.registry);
                let vocab = Arc::clone(&self.vocab);
                let gauges = Arc::clone(&self.shard_gauges);
                let store = Arc::clone(store);
                let cold = Arc::clone(&self.cold_engines);
                Box::new(move || hydrate_shard(&registry, i, &vocab, &gauges, &store, &cold))
                    as HydrateJob
            })
            .collect();
        self.pool()
            .run_collect(jobs, None)
            .into_iter()
            .filter_map(|s| s.into_done())
            .sum()
    }

    /// The fast path in front of [`Broker::hydrate`]: a single atomic
    /// load once the registry is fully hydrated.
    fn ensure_hydrated(&self) {
        if self.cold_engines.load(Ordering::SeqCst) != 0 {
            self.hydrate();
        }
    }

    /// Re-attaches a live local engine to a restored (detached) entry.
    /// If the engine's collection fingerprint matches the stored record
    /// the hydrated canonical representative and term map are kept —
    /// estimates stay bit-identical to the broker that wrote the
    /// snapshot; otherwise the representative and map are rebuilt from
    /// the new collection (and written through the store). Bumps the
    /// entry's epoch and the registry epoch either way. Returns false
    /// if no detached entry has that name.
    pub fn attach_engine(&self, name: &str, engine: SearchEngine) -> bool {
        self.ensure_hydrated();
        let (idx, shard) = self.registry.shard_of(name);
        let mut entries = shard.entries.write();
        let Some(e) = entries
            .iter_mut()
            .find(|e| e.name == name && e.handle.is_detached())
        else {
            return false;
        };
        let engine = Arc::new(engine);
        if e.map_fingerprint == Some(engine.fingerprint()) && !e.pending_invalidation {
            // Same collection content as the stored record: the
            // hydrated map is id-aligned with it and the canonical
            // representative describes it.
            e.handle = EngineHandle::Local(engine);
            e.provenance = match e.provenance {
                ReprProvenance::Shipped { .. } => e.provenance,
                _ => ReprProvenance::Local(e.stored_fingerprint.expect("hydrated from store")),
            };
            e.epoch += 1;
        } else {
            e.handle = EngineHandle::Local(engine);
            // Content differs (or hydration failed): rebuild from the
            // live collection — always succeeds for local engines, and
            // bumps the entry epoch itself.
            let _ = e.try_refresh(&mut self.vocab.write(), self.store.as_deref());
        }
        metrics().representative_refreshes.inc();
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        drop(entries);
        self.purge_cache();
        true
    }

    /// Re-attaches a transport to a restored (detached) entry, keyed by
    /// the engine name its snapshot advertises. If the snapshot's
    /// fingerprint matches the stored record the hydrated metadata and
    /// canonical representative are kept (bit-identical estimates);
    /// otherwise the fresh snapshot is installed (and written through
    /// the store). Returns `Ok(false)` if no detached entry matches the
    /// advertised name, and the [`TransportError`] if the snapshot
    /// fetch failed or was inconsistent — the entry then stays detached
    /// and stale.
    pub fn attach_remote(
        &self,
        transport: Arc<dyn RemoteTransport>,
    ) -> Result<bool, TransportError> {
        self.ensure_hydrated();
        let snapshot = transport.fetch_snapshot()?;
        let name = snapshot.name.clone();
        let (idx, shard) = self.registry.shard_of(&name);
        let mut entries = shard.entries.write();
        let Some(e) = entries
            .iter_mut()
            .find(|e| e.name == name && e.handle.is_detached())
        else {
            return Ok(false);
        };
        let hydrated_meta = match &e.handle {
            EngineHandle::Detached { meta, .. } => meta.clone(),
            _ => unreachable!("filtered to detached entries above"),
        };
        let result = if hydrated_meta.fingerprint == snapshot.fingerprint && !e.pending_invalidation
        {
            e.handle = EngineHandle::Remote {
                transport,
                meta: hydrated_meta,
            };
            e.map_fingerprint = None;
            e.epoch += 1;
            Ok(())
        } else {
            e.handle = EngineHandle::Remote {
                transport,
                meta: RemoteMeta::from_snapshot(&snapshot),
            };
            match e.install_remote(&mut self.vocab.write(), &snapshot, self.store.as_deref()) {
                Ok(()) => Ok(()),
                Err(err) => {
                    // The handle moved even though the install failed;
                    // count the change so outstanding plans go stale.
                    e.epoch += 1;
                    Err(err)
                }
            }
        };
        metrics().representative_refreshes.inc();
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        publish_shard_gauges(shard, idx, &entries, &self.shard_gauges);
        drop(entries);
        self.purge_cache();
        result.map(|()| true)
    }

    /// Analyzes a query text once per distinct analyzer configuration
    /// among the registered engines (normally: exactly once) against the
    /// broker-global vocabulary. The result translates into any engine's
    /// term space without further string processing, and can be reused
    /// across thresholds.
    pub fn analyze(&self, query_text: &str) -> SharedAnalysis {
        // Distinct configs in exact registration order (first occurrence
        // wins), regardless of which shard each engine landed in.
        let mut tagged: Vec<(u64, AnalyzerConfig)> = Vec::new();
        for shard in self.registry.shards() {
            tagged.extend(
                shard
                    .entries
                    .read()
                    .iter()
                    .map(|e| (e.seq, e.handle.analyzer_config())),
            );
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        let mut configs: Vec<AnalyzerConfig> = Vec::new();
        for (_, config) in tagged {
            if !configs.contains(&config) {
                configs.push(config);
            }
        }
        let vocab = self.vocab.read();
        let m = metrics();
        let per_config = configs
            .into_iter()
            .map(|config| {
                m.analyses.inc();
                let tokens = Analyzer::new(config).analyze(query_text);
                (config, seu_engine::shared::global_tf(&vocab, &tokens))
            })
            .collect();
        SharedAnalysis { per_config }
    }

    /// Plans a request: one shared analysis pass, a query vector and a
    /// usefulness estimate per engine, and the policy's invocation set.
    /// No engine is contacted.
    ///
    /// Passing `Some(trace)` records spans into the active trace: one
    /// `plan` span with `analyze`, per-shard `shard_walk`, and `select`
    /// children.
    ///
    /// Unless the request bypasses the cache, the plan is served from
    /// (and inserted into) the plan tier of the query cache, and the
    /// analysis pass from the analysis tier — so a threshold sweep over
    /// the same query text re-estimates from the cached analysis
    /// instead of re-tokenizing (see [`crate::cache`]).
    pub fn plan(&self, req: &SearchRequest, trace: Option<&TraceHandle>) -> QueryPlan {
        self.plan_cached(req, trace).0
    }

    /// Deprecated alias for [`Broker::plan`] with a trace.
    #[deprecated(note = "use `plan(req, Some(trace))`")]
    pub fn plan_traced(&self, req: &SearchRequest, trace: &TraceHandle) -> QueryPlan {
        self.plan(req, Some(trace))
    }

    /// [`Broker::plan`], also reporting which cache tier (if any) the
    /// planning work came from: `Some(Plan)` for a plan-tier hit,
    /// `Some(Analysis)` when only the analysis was reused, `None` for a
    /// fully cold plan.
    fn plan_cached(
        &self,
        req: &SearchRequest,
        trace: Option<&TraceHandle>,
    ) -> (QueryPlan, Option<CacheTier>) {
        // Hydration before the epoch read: restored-but-cold entries
        // are decoded from the store now, so no plan (or cache key) is
        // ever computed against the pre-hydration placeholder state.
        // O(1) — one atomic load — once everything is hydrated.
        self.ensure_hydrated();
        let disabled = TraceHandle::disabled();
        let trace = trace.unwrap_or(&disabled);
        let m = metrics();
        let timer = m.plan_latency.start_timer();
        let mut plan_span = trace.span("plan");
        let plan_span_id = plan_span.id();
        // Epoch is read before analysis: a refresh landing mid-plan makes
        // the plan detectably stale rather than silently half-updated.
        // Cache keys carry this same epoch, so a cached value is only
        // ever served for the registry state it was computed against.
        let epoch = self.registry.epoch();
        let cache = self.cache_for(req);
        if let Some(c) = cache {
            if let Some(CachedValue::Plan(p)) = c.get(&CacheKey::plan(req, epoch)) {
                plan_span.attr("cache", "hit");
                plan_span.attr("epoch", epoch);
                plan_span.finish();
                timer.stop();
                return ((*p).clone(), Some(CacheTier::Plan));
            }
        }
        let mut analysis_hit = false;
        let analysis: Arc<SharedAnalysis> =
            match cache.and_then(|c| c.get(&CacheKey::analysis(&req.query, epoch))) {
                Some(CachedValue::Analysis(a)) => {
                    analysis_hit = true;
                    a
                }
                _ => {
                    let a = {
                        let _span = trace.child_span("analyze", plan_span_id);
                        Arc::new(self.analyze(&req.query))
                    };
                    if req.cache.writes() {
                        if let Some(c) = cache {
                            c.insert(
                                CacheKey::analysis(&req.query, epoch),
                                CachedValue::Analysis(Arc::clone(&a)),
                            );
                        }
                    }
                    a
                }
            };
        // One shard's read lock at a time: a lifecycle event on shard A
        // (refresh, registration, invalidation) never blocks planning
        // over shard B. Per-engine estimates are independent, so only
        // the presentation order matters — entries are tagged with
        // their registration seq and sorted afterwards, giving exactly
        // the order a flat registry would have produced (selection
        // tie-breaks and merge order depend on it).
        let mut tagged: Vec<(u64, PlannedEngine)> = Vec::new();
        for (shard_idx, shard) in self.registry.shards().iter().enumerate() {
            let entries = shard.entries.read();
            let mut shard_span = trace.child_span("shard_walk", plan_span_id);
            shard_span.attr("shard", shard_idx);
            shard_span.attr("engines", entries.len());
            m.estimates.add(entries.len() as u64);
            tagged.extend(entries.iter().map(|e| {
                let query = match &e.handle {
                    EngineHandle::Local(engine) => {
                        let collection = engine.collection();
                        // The term map is only valid against the exact
                        // collection it was built from. replace_engine
                        // swaps the collection without rebuilding the
                        // map, so until a refresh reconciles them the
                        // map's local ids may be out of range (or mean
                        // different terms) in the live collection, and
                        // the representative still describes the old
                        // one — no query vector can be consistent with
                        // both. A mid-propagation entry therefore
                        // contributes nothing (empty query, zero
                        // estimate, zero hits) until the sweep
                        // reconciles it, instead of panicking inside
                        // query weighting or estimating through
                        // mismatched term ids.
                        let aligned = e.map_fingerprint == Some(engine.fingerprint());
                        match (aligned, analysis.tf_for(collection.analyzer_config())) {
                            (true, Some(tf)) => collection.query_from_shared(tf, &e.map),
                            // An engine with a config the analysis pass
                            // did not cover (registered concurrently):
                            // analyze directly.
                            (true, None) => collection.query_from_text(&req.query),
                            (false, _) => collection.query_from_tf(Vec::new()),
                        }
                    }
                    EngineHandle::Remote { meta, .. } => match analysis.tf_for(meta.analyzer) {
                        Some(tf) => meta.query_from_shared(tf, &e.map),
                        None => meta.query_from_text(&req.query),
                    },
                    // A restored entry plans exactly like a remote one:
                    // its hydrated metadata carries the stored
                    // vocabulary and weighting statistics, so estimates
                    // are bit-identical to the broker that wrote the
                    // snapshot. Only dispatch needs a live handle.
                    EngineHandle::Detached { meta, .. } => match analysis.tf_for(meta.analyzer) {
                        Some(tf) => meta.query_from_shared(tf, &e.map),
                        None => meta.query_from_text(&req.query),
                    },
                };
                let usefulness = self.estimator.estimate(&e.repr, &query, req.threshold);
                (
                    e.seq,
                    PlannedEngine {
                        name: e.name.clone(),
                        usefulness,
                        query,
                        repr: e.repr.clone(),
                        handle: e.handle.clone(),
                    },
                )
            }));
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        let planned: Vec<PlannedEngine> = tagged.into_iter().map(|(_, e)| e).collect();
        let us: Vec<Usefulness> = planned.iter().map(|e| e.usefulness).collect();
        let selected = {
            let mut span = trace.child_span("select", plan_span_id);
            span.attr("considered", planned.len());
            let selected = req.policy.select(&us);
            span.attr("selected", selected.len());
            selected
        };
        plan_span.attr("epoch", epoch);
        if analysis_hit {
            plan_span.attr("cache", "analysis_hit");
        }
        plan_span.finish();
        timer.stop();
        let plan = QueryPlan {
            query: req.query.clone(),
            threshold: req.threshold,
            policy: req.policy,
            epoch,
            engines: planned,
            selected,
        };
        if req.cache.writes() {
            if let Some(c) = cache {
                c.insert(
                    CacheKey::plan(req, epoch),
                    CachedValue::Plan(Arc::new(plan.clone())),
                );
            }
        }
        (plan, analysis_hit.then_some(CacheTier::Analysis))
    }

    /// Re-estimates a plan's engines at a different threshold without
    /// re-analyzing the query — the query vectors are threshold-free, so
    /// threshold sweeps (e.g. document allocation's bisection) pay for
    /// analysis once. Fails with [`StalePlanError`] if the registry has
    /// changed since the plan was made: the plan's representatives and
    /// term translations may no longer describe the registered engines,
    /// so estimates from them could not be compared against fresh ones.
    ///
    /// Passing `Some(trace)` records one `reestimate` span carrying the
    /// threshold, engine count, and whether the plan was rejected as
    /// stale. Threshold sweeps that obtained their plan via
    /// [`Broker::plan`] share the cached plan across the sweep: every
    /// per-threshold call here reuses the one analysis and shard walk.
    pub fn try_reestimate(
        &self,
        plan: &QueryPlan,
        threshold: f64,
        trace: Option<&TraceHandle>,
    ) -> Result<Vec<EngineEstimate>, StalePlanError> {
        let disabled = TraceHandle::disabled();
        let trace = trace.unwrap_or(&disabled);
        let mut span = trace.span("reestimate");
        span.attr("threshold", threshold);
        span.attr("engines", plan.engines.len());
        let registry_epoch = self.registry.epoch();
        if plan.epoch != registry_epoch {
            metrics().stale_plans.inc();
            span.attr("stale", "true");
            return Err(StalePlanError {
                plan_epoch: plan.epoch,
                registry_epoch,
            });
        }
        metrics().estimates.add(plan.engines.len() as u64);
        Ok(plan
            .engines
            .iter()
            .map(|e| EngineEstimate {
                engine: e.name.clone(),
                usefulness: self.estimator.estimate(&e.repr, &e.query, threshold),
            })
            .collect())
    }

    /// Deprecated alias for [`Broker::try_reestimate`] with a trace.
    #[deprecated(note = "use `try_reestimate(plan, threshold, Some(trace))`")]
    pub fn try_reestimate_traced(
        &self,
        plan: &QueryPlan,
        threshold: f64,
        trace: &TraceHandle,
    ) -> Result<Vec<EngineEstimate>, StalePlanError> {
        self.try_reestimate(plan, threshold, Some(trace))
    }

    /// Re-estimates a plan's engines at a different threshold,
    /// transparently replanning from the plan's recorded query text if
    /// the registry has changed since the plan was made (counted by
    /// `broker_stale_plans_total`). Callers that must not silently switch
    /// registries mid-sweep use [`Broker::try_reestimate`].
    pub fn reestimate(&self, plan: &QueryPlan, threshold: f64) -> Vec<EngineEstimate> {
        match self.try_reestimate(plan, threshold, None) {
            Ok(estimates) => estimates,
            Err(_) => self
                .plan(
                    &SearchRequest::new(plan.query.clone())
                        .threshold(threshold)
                        .policy(plan.policy),
                    None,
                )
                .estimates(),
        }
    }

    /// Executes a request end to end: plan, dispatch the selected engines
    /// over the bounded worker pool, merge by global similarity.
    ///
    /// A panicking engine contributes no hits and is reported as
    /// [`DispatchOutcome::Failed`] (counted by
    /// `broker_engine_failures_total`) instead of poisoning the query;
    /// engines that miss the request's timeout budget are reported as
    /// [`DispatchOutcome::TimedOut`]. If a representative refresh lands
    /// between planning and dispatch, the request is replanned once
    /// (counted by `broker_stale_plans_total`).
    ///
    /// Unless the request bypasses the cache, a complete merged response
    /// cached at the current registry epoch is served directly
    /// (`served_from: Some(Results)`, bit-identical to the cold
    /// execution that populated it); otherwise planning goes through the
    /// plan/analysis tiers and a complete response is written back for
    /// the next hit. `explain` requests always run cold so their span
    /// trees describe real work.
    pub fn execute(&self, req: &SearchRequest) -> SearchResponse {
        let m = metrics();
        let timer = m.query_latency.start_timer();
        let mut active = seu_obs::tracer().start_trace("search", req.explain);
        active.root_attr("query", &req.query);
        active.root_attr("threshold", req.threshold);
        let trace = active.handle();
        if let Some(c) = self.cache_for(req) {
            let epoch = self.registry.epoch();
            if let Some(CachedValue::Results(r)) = c.get(&CacheKey::results(req, epoch)) {
                m.queries.inc();
                let mut resp = SearchResponse {
                    hits: r.hits.clone(),
                    estimates: r.estimates.clone(),
                    per_engine_stats: r.per_engine_stats.clone(),
                    trace: None,
                    served_from: Some(CacheTier::Results),
                };
                timer.stop();
                resp.trace = self.finish_trace(active, req, &resp);
                return resp;
            }
        }
        let (mut plan, mut tier) = self.plan_cached(req, Some(&trace));
        if plan.epoch != self.registry.epoch() {
            m.stale_plans.inc();
            (plan, tier) = self.plan_cached(req, Some(&trace));
        }
        let mut resp = self.dispatch_traced(req, &plan, &trace);
        resp.served_from = tier;
        // Only complete responses are cached: a response missing an
        // engine's hits (timeout, failure) must not be replayed after
        // the engine recovers.
        if req.cache.writes() && resp.is_complete() {
            if let Some(c) = self.cache_for(req) {
                c.insert(
                    CacheKey::results(req, plan.epoch),
                    CachedValue::Results(Arc::new(CachedResponse {
                        hits: resp.hits.clone(),
                        estimates: resp.estimates.clone(),
                        per_engine_stats: resp.per_engine_stats.clone(),
                    })),
                );
            }
        }
        timer.stop();
        resp.trace = self.finish_trace(active, req, &resp);
        resp
    }

    /// Closes a request's trace: back-fills coarse per-engine spans for
    /// slow-but-unsampled traces, emits the slow-query log line when the
    /// request ran over budget, and returns the finished trace when the
    /// request asked for it (`explain`).
    fn finish_trace(
        &self,
        mut active: seu_obs::ActiveTrace,
        req: &SearchRequest,
        resp: &SearchResponse,
    ) -> Option<Arc<seu_obs::FinishedTrace>> {
        let tracer = seu_obs::tracer();
        let elapsed = active.elapsed();
        let slow = tracer.is_slow(elapsed);
        active.root_attr("hits", resp.hits.len());
        active.root_attr("complete", resp.is_complete());
        if slow && !active.is_sampled() {
            // The head sampler skipped this request, so no fine-grained
            // spans were recorded — synthesize one coarse span per
            // engine from the dispatch stats so the retained slow trace
            // still shows where the time went. Start offsets are
            // unknown at this point; only the durations are meaningful.
            let root = active.root_span();
            let handle = active.handle();
            handle.adopt_spans(resp.per_engine_stats.iter().map(|s| SpanRecord {
                id: seu_obs::SpanId(0),
                parent: root,
                name: format!("dispatch:{}", s.engine),
                start_unix_ns: 0,
                duration_ns: (s.seconds * 1e9) as u64,
                attrs: vec![
                    ("engine".to_string(), s.engine.clone()),
                    ("hits".to_string(), s.hits.to_string()),
                    ("outcome".to_string(), format!("{:?}", s.outcome)),
                    ("synthesized".to_string(), "true".to_string()),
                ],
            }));
        }
        let trace_id = active.trace_id();
        let finished = active.finish();
        if slow {
            self.emit_slow_query_line(trace_id, req, resp, elapsed);
        }
        if req.explain {
            finished
        } else {
            None
        }
    }

    /// One structured line per over-budget request: total latency plus
    /// the per-engine breakdown, to the tracer's slow-query sink
    /// (stderr or the `--trace-out` file).
    fn emit_slow_query_line(
        &self,
        trace_id: seu_obs::TraceId,
        req: &SearchRequest,
        resp: &SearchResponse,
        elapsed: std::time::Duration,
    ) {
        use std::fmt::Write as _;
        let mut line = String::from("{\"event\": \"slow_query\", \"trace_id\": \"");
        let _ = write!(line, "{}", trace_id.to_hex());
        line.push_str("\", \"query\": ");
        seu_obs::json::write_escaped(&mut line, &req.query);
        let _ = write!(
            line,
            ", \"threshold\": {}, \"duration_ms\": {:.3}, \"hits\": {}, \"engines\": [",
            req.threshold,
            elapsed.as_secs_f64() * 1e3,
            resp.hits.len()
        );
        for (i, s) in resp.per_engine_stats.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            line.push_str("{\"engine\": ");
            seu_obs::json::write_escaped(&mut line, &s.engine);
            let outcome = match s.outcome {
                crate::DispatchOutcome::Completed => "completed",
                crate::DispatchOutcome::Failed => "failed",
                crate::DispatchOutcome::TimedOut => "timed_out",
            };
            let _ = write!(
                line,
                ", \"seconds\": {:.6}, \"hits\": {}, \"outcome\": \"{outcome}\"}}",
                s.seconds, s.hits
            );
        }
        line.push_str("]}");
        seu_obs::tracer().slow_log_line(&line);
    }

    /// Executes an externally supplied plan — e.g. one the caller
    /// inspected or adjusted before committing to dispatch. If the
    /// registry has changed since the plan was made, the request's
    /// [`StaleMode`] decides: replan transparently (the default) or
    /// surface a [`StalePlanError`]. Either way the staleness is counted
    /// by `broker_stale_plans_total`.
    pub fn execute_plan(
        &self,
        req: &SearchRequest,
        plan: &QueryPlan,
    ) -> Result<SearchResponse, StalePlanError> {
        let m = metrics();
        let timer = m.query_latency.start_timer();
        let registry_epoch = self.registry.epoch();
        let resp = if plan.epoch != registry_epoch {
            m.stale_plans.inc();
            match req.stale_mode {
                StaleMode::Error => {
                    return Err(StalePlanError {
                        plan_epoch: plan.epoch,
                        registry_epoch,
                    });
                }
                StaleMode::Replan => {
                    let (fresh, tier) = self.plan_cached(req, None);
                    let mut resp = self.dispatch(req, &fresh);
                    resp.served_from = tier;
                    resp
                }
            }
        } else {
            self.dispatch(req, plan)
        };
        timer.stop();
        Ok(resp)
    }

    /// Dispatches a plan's invocation set over the worker pool and merges
    /// the results. The accounting half of [`Broker::execute`].
    fn dispatch(&self, req: &SearchRequest, plan: &QueryPlan) -> SearchResponse {
        self.dispatch_traced(req, plan, &TraceHandle::disabled())
    }

    /// [`Broker::dispatch`] with span recording: one `dispatch` span
    /// with a `dispatch:<engine>` child per invoked engine (carrying the
    /// queue-wait measured from submission to job start, separate from
    /// the span's own run time) and a `merge` child. Remote engines are
    /// called with the trace context so their server-side spans come
    /// back over the wire and join the same tree.
    fn dispatch_traced(
        &self,
        req: &SearchRequest,
        plan: &QueryPlan,
        trace: &TraceHandle,
    ) -> SearchResponse {
        let m = metrics();
        let dispatch_timer = m.dispatch_latency.start_timer();
        let mut dispatch_span = trace.span("dispatch");
        dispatch_span.attr("engines", plan.selected.len());
        let dispatch_span_id = dispatch_span.id();
        let threshold = req.threshold;
        let jobs: Vec<DispatchJob> = plan
            .selected
            .iter()
            .map(|&i| {
                let e = &plan.engines[i];
                let name = e.name.clone();
                let trace = trace.clone();
                let enqueued = Instant::now();
                match &e.handle {
                    EngineHandle::Local(engine) => {
                        let engine = engine.clone();
                        let query = e.query.clone();
                        Box::new(move || {
                            let mut span =
                                trace.child_span(&format!("dispatch:{name}"), dispatch_span_id);
                            span.attr("engine", &name);
                            span.attr("kind", "local");
                            span.attr(
                                "queue_wait_s",
                                format!("{:.6}", enqueued.elapsed().as_secs_f64()),
                            );
                            let start = Instant::now();
                            let hits: Vec<MergedHit> = engine
                                .search_threshold(&query, threshold)
                                .into_iter()
                                .map(|h| MergedHit {
                                    engine: name.clone(),
                                    doc: engine.collection().doc(h.doc).name.clone(),
                                    sim: h.sim,
                                })
                                .collect();
                            span.attr("hits", hits.len());
                            Ok((hits, start.elapsed().as_secs_f64()))
                        }) as DispatchJob
                    }
                    EngineHandle::Remote { transport, .. } => {
                        let transport = transport.clone();
                        let text = plan.query.clone();
                        Box::new(move || {
                            let mut span =
                                trace.child_span(&format!("dispatch:{name}"), dispatch_span_id);
                            span.attr("engine", &name);
                            span.attr("kind", "remote");
                            span.attr("endpoint", transport.endpoint());
                            span.attr(
                                "queue_wait_s",
                                format!("{:.6}", enqueued.elapsed().as_secs_f64()),
                            );
                            let start = Instant::now();
                            let ctx = trace.context(span.id());
                            let (remote_hits, remote_spans) =
                                transport.search(&text, threshold, Some(&ctx))?;
                            trace.adopt_spans(remote_spans);
                            let hits: Vec<MergedHit> = remote_hits
                                .into_iter()
                                .map(|h| MergedHit {
                                    engine: name.clone(),
                                    doc: h.doc,
                                    sim: h.sim,
                                })
                                .collect();
                            span.attr("hits", hits.len());
                            Ok((hits, start.elapsed().as_secs_f64()))
                        }) as DispatchJob
                    }
                    EngineHandle::Detached { .. } => Box::new(move || {
                        let mut span =
                            trace.child_span(&format!("dispatch:{name}"), dispatch_span_id);
                        span.attr("engine", &name);
                        span.attr("kind", "detached");
                        Err(TransportError::new(
                            TransportErrorKind::Refused,
                            format!(
                                "engine {name:?} is detached (restored from store); \
                                 attach a live engine or transport to dispatch to it"
                            ),
                        ))
                    }) as DispatchJob,
                }
            })
            .collect();
        let statuses = self.pool().run_collect(jobs, req.timeout);

        let mut per_engine: Vec<Vec<MergedHit>> = Vec::with_capacity(statuses.len());
        let mut per_engine_stats = Vec::with_capacity(statuses.len());
        for (&i, status) in plan.selected.iter().zip(statuses) {
            let name = plan.engines[i].name.clone();
            let (hits, seconds, outcome, error) = match status {
                JobStatus::Done(Ok((hits, seconds))) => {
                    (hits, seconds, DispatchOutcome::Completed, None)
                }
                JobStatus::Done(Err(err)) => {
                    let outcome = match err.kind {
                        TransportErrorKind::Timeout => {
                            m.engine_timeouts.inc();
                            DispatchOutcome::TimedOut
                        }
                        _ => {
                            m.engine_failures.inc();
                            DispatchOutcome::Failed
                        }
                    };
                    (Vec::new(), 0.0, outcome, Some(err))
                }
                JobStatus::Panicked | JobStatus::Rejected => {
                    m.engine_failures.inc();
                    (Vec::new(), 0.0, DispatchOutcome::Failed, None)
                }
                JobStatus::TimedOut => {
                    m.engine_timeouts.inc();
                    (Vec::new(), 0.0, DispatchOutcome::TimedOut, None)
                }
            };
            per_engine_stats.push(EngineDispatchStats {
                engine: name,
                hits: hits.len(),
                seconds,
                outcome,
                error,
            });
            per_engine.push(hits);
        }
        let mut merged = {
            let mut span = trace.child_span("merge", dispatch_span_id);
            span.attr(
                "sources",
                per_engine.iter().filter(|h| !h.is_empty()).count(),
            );
            let merged = merge_results(per_engine);
            span.attr("hits", merged.len());
            merged
        };
        if let Some(k) = req.top_k {
            merged.truncate(k);
        }
        dispatch_span.finish();
        dispatch_timer.stop();

        m.queries.inc();
        m.considered.add(plan.engines.len() as u64);
        m.selected.add(plan.selected.len() as u64);
        m.merge_hits.add(merged.len() as u64);
        m.merge_size.observe(merged.len() as f64);

        SearchResponse {
            hits: merged,
            estimates: if req.with_estimates {
                plan.estimates()
            } else {
                Vec::new()
            },
            per_engine_stats,
            trace: None,
            served_from: None,
        }
    }

    /// Estimates every engine's usefulness for a query text at a
    /// threshold, in registration order.
    ///
    /// Wrapper over [`Broker::plan`]; prefer the request pipeline
    /// (`plan(&req).estimates()`) in new code.
    pub fn estimate_all(&self, query_text: &str, threshold: f64) -> Vec<EngineEstimate> {
        self.plan(
            &SearchRequest::new(query_text)
                .threshold(threshold)
                .policy(SelectionPolicy::All),
            None,
        )
        .estimates()
    }

    /// Selects engines for a query under a policy. Returns names in
    /// invocation order.
    ///
    /// Wrapper over [`Broker::plan`]; prefer the request pipeline
    /// (`plan(&req).selected_names()`) in new code.
    pub fn select(&self, query_text: &str, threshold: f64, policy: SelectionPolicy) -> Vec<String> {
        let m = metrics();
        let timer = m.select_latency.start_timer();
        let plan = self.plan(
            &SearchRequest::new(query_text)
                .threshold(threshold)
                .policy(policy),
            None,
        );
        let selected = plan.selected_names();
        m.selects.inc();
        m.considered.add(plan.len() as u64);
        m.selected.add(selected.len() as u64);
        timer.stop();
        selected
    }

    /// Full metasearch: select engines, dispatch the query to them over
    /// the worker pool, and merge results above the threshold by global
    /// similarity.
    ///
    /// Wrapper over [`Broker::execute`]; prefer the request pipeline in
    /// new code — it also exposes estimates, per-engine stats, result
    /// caps, and timeout budgets.
    pub fn search(
        &self,
        query_text: &str,
        threshold: f64,
        policy: SelectionPolicy,
    ) -> Vec<MergedHit> {
        self.execute(
            &SearchRequest::new(query_text)
                .threshold(threshold)
                .policy(policy),
        )
        .hits
    }

    /// Ground-truth selection (which engines truly have a document above
    /// the threshold) — the oracle the evaluation compares against. A
    /// remote engine answers over its transport; one whose transport
    /// fails is treated as not useful.
    pub fn oracle_select(&self, query_text: &str, threshold: f64) -> Vec<String> {
        let mut useful: Vec<(u64, String)> = Vec::new();
        for shard in self.registry.shards() {
            useful.extend(
                shard
                    .entries
                    .read()
                    .iter()
                    .filter(|e| match &e.handle {
                        EngineHandle::Local(engine) => {
                            let query = engine.collection().query_from_text(query_text);
                            engine.true_usefulness(&query, threshold).no_doc >= 1
                        }
                        EngineHandle::Remote { transport, .. } => transport
                            .true_usefulness(query_text, threshold)
                            .map(|u| u.no_doc >= 1)
                            .unwrap_or(false),
                        // No live engine to ask — like a failed
                        // transport, a detached entry is not useful.
                        EngineHandle::Detached { .. } => false,
                    })
                    .map(|e| (e.seq, e.name.clone())),
            );
        }
        useful.sort_unstable_by_key(|&(seq, _)| seq);
        useful.into_iter().map(|(_, name)| name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_core::SubrangeEstimator;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;
    use std::time::Duration;

    fn engine_from(texts: &[&str]) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&format!("doc{i}"), t);
        }
        SearchEngine::new(b.build())
    }

    fn broker() -> Broker<SubrangeEstimator> {
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register(
            "databases",
            engine_from(&[
                "relational databases and query optimization",
                "transaction processing in databases",
                "distributed query processing systems",
            ]),
        );
        b.register(
            "cooking",
            engine_from(&[
                "mushroom soup recipes with cream",
                "baking sourdough bread at home",
            ]),
        );
        b.register(
            "mixed",
            engine_from(&[
                "databases of bread recipes",
                "soup kitchens and processing plants",
            ]),
        );
        b
    }

    #[test]
    fn registration_and_names() {
        let b = broker();
        assert_eq!(b.len(), 3);
        assert_eq!(b.engine_names(), vec!["databases", "cooking", "mixed"]);
        assert!(!b.is_empty());
    }

    #[test]
    fn estimates_favor_matching_engine() {
        let b = broker();
        let ests = b.estimate_all("databases query", 0.1);
        let by_name = |n: &str| {
            ests.iter()
                .find(|e| e.engine == n)
                .unwrap()
                .usefulness
                .no_doc
        };
        assert!(by_name("databases") > by_name("cooking"));
    }

    #[test]
    fn selection_excludes_useless_engines() {
        let b = broker();
        let sel = b.select("mushroom soup", 0.25, SelectionPolicy::EstimatedUseful);
        assert!(sel.contains(&"cooking".to_string()));
        assert!(!sel.contains(&"databases".to_string()));
    }

    #[test]
    fn search_merges_across_engines() {
        let b = broker();
        let hits = b.search("databases", 0.0, SelectionPolicy::All);
        assert!(!hits.is_empty());
        // Sorted descending.
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
        // Hits come from both engines that mention databases.
        let engines: Vec<&str> = hits.iter().map(|h| h.engine.as_str()).collect();
        assert!(engines.contains(&"databases"));
        assert!(engines.contains(&"mixed"));
        assert!(!engines.contains(&"cooking"));
    }

    #[test]
    fn selective_search_returns_subset_of_all() {
        let b = broker();
        let all = b.search("soup", 0.1, SelectionPolicy::All);
        let selected = b.search("soup", 0.1, SelectionPolicy::EstimatedUseful);
        // Everything the selective search returns is in the full search.
        for h in &selected {
            assert!(all.contains(h));
        }
    }

    #[test]
    fn oracle_matches_reality() {
        let b = broker();
        let oracle = b.oracle_select("sourdough", 0.1);
        assert_eq!(oracle, vec!["cooking".to_string()]);
    }

    #[test]
    fn top_k_selection() {
        let b = broker();
        let sel = b.select("databases processing", 0.05, SelectionPolicy::TopK(1));
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0], "databases");
    }

    #[test]
    fn representative_refresh_and_update() {
        let b = broker();
        // Cripple one engine's representative, watch selection change,
        // then refresh it back.
        let empty = Representative::from_parts(0, Vec::new(), 0);
        assert!(b.update_representative("cooking", empty));
        let sel = b.select("mushroom soup", 0.25, SelectionPolicy::EstimatedUseful);
        assert!(!sel.contains(&"cooking".to_string()), "{sel:?}");
        assert!(b.refresh_representative("cooking"));
        let sel = b.select("mushroom soup", 0.25, SelectionPolicy::EstimatedUseful);
        assert!(sel.contains(&"cooking".to_string()), "{sel:?}");
        // Unknown names report failure.
        assert!(!b.refresh_representative("nope"));
        assert!(!b.update_representative("nope", Representative::from_parts(0, Vec::new(), 0)));
    }

    #[test]
    fn unknown_query_selects_nothing_useful() {
        let b = broker();
        let sel = b.select("zebra quantum", 0.1, SelectionPolicy::EstimatedUseful);
        assert!(sel.is_empty());
        let hits = b.search("zebra quantum", 0.1, SelectionPolicy::EstimatedUseful);
        assert!(hits.is_empty());
    }

    #[test]
    fn plan_matches_wrappers() {
        let b = broker();
        let req = SearchRequest::new("databases processing")
            .threshold(0.05)
            .policy(SelectionPolicy::TopK(2));
        let plan = b.plan(&req, None);
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.estimates(),
            b.estimate_all("databases processing", 0.05)
        );
        assert_eq!(
            plan.selected_names(),
            b.select("databases processing", 0.05, SelectionPolicy::TopK(2))
        );
    }

    #[test]
    fn execute_reports_per_engine_stats() {
        let b = broker();
        let req = SearchRequest::new("databases")
            .threshold(0.0)
            .policy(SelectionPolicy::All)
            .with_estimates(true);
        let resp = b.execute(&req);
        assert_eq!(resp.estimates.len(), 3);
        assert_eq!(resp.per_engine_stats.len(), 3);
        assert!(resp.is_complete());
        let total: usize = resp.per_engine_stats.iter().map(|s| s.hits).sum();
        assert_eq!(total, resp.hits.len());
        assert_eq!(resp.hits, b.search("databases", 0.0, SelectionPolicy::All));
    }

    #[test]
    fn execute_honors_top_k_cap() {
        let b = broker();
        let all = b.execute(
            &SearchRequest::new("databases")
                .threshold(0.0)
                .policy(SelectionPolicy::All),
        );
        assert!(all.hits.len() > 2);
        let capped = b.execute(
            &SearchRequest::new("databases")
                .threshold(0.0)
                .policy(SelectionPolicy::All)
                .top_k(2),
        );
        assert_eq!(capped.hits.len(), 2);
        assert_eq!(capped.hits[..], all.hits[..2]);
    }

    #[test]
    fn zero_timeout_budget_reports_timeouts() {
        let b = broker();
        let resp = b.execute(
            &SearchRequest::new("databases")
                .threshold(0.0)
                .policy(SelectionPolicy::All)
                .timeout(Duration::ZERO),
        );
        assert!(resp.hits.is_empty());
        assert!(!resp.is_complete());
        assert!(resp
            .per_engine_stats
            .iter()
            .all(|s| s.outcome == DispatchOutcome::TimedOut));
    }

    #[test]
    fn reestimate_sweeps_thresholds_without_reanalysis() {
        let b = broker();
        let plan = b.plan(
            &SearchRequest::new("soup").policy(SelectionPolicy::All),
            None,
        );
        for t in [0.0, 0.1, 0.3, 0.9] {
            assert_eq!(b.reestimate(&plan, t), b.estimate_all("soup", t), "t={t}");
        }
    }

    #[test]
    fn mixed_analyzer_configs_are_each_analyzed() {
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register("plain", engine_from(&["btree indexes win for range scans"]));
        let mut stemmed = CollectionBuilder::new(
            Analyzer::new(seu_text::AnalyzerConfig {
                remove_stopwords: true,
                stem: true,
            }),
            WeightingScheme::CosineTf,
        );
        stemmed.add_document("d0", "btree indexes win for range scans");
        b.register("stemmed", SearchEngine::new(stemmed.build()));

        let analysis = b.analyze("indexes scanning");
        assert_eq!(analysis.configs(), 2);
        // The stemmed engine resolves both stems; the plain engine only
        // the literal surface form.
        let plan = b.plan(
            &SearchRequest::new("indexes scanning").policy(SelectionPolicy::All),
            None,
        );
        let by =
            |n: &str| &plan.engines()[plan.engines().iter().position(|e| e.name == n).unwrap()];
        assert_eq!(by("plain").query().len(), 1);
        assert_eq!(by("stemmed").query().len(), 2);
    }

    #[test]
    fn pool_stats_reflect_builder_override() {
        let b = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .worker_threads(2)
            .build();
        b.register("only", engine_from(&["solo document here"]));
        assert_eq!(b.pool_stats(), (2, 0));
        let _ = b.search("solo", 0.0, SelectionPolicy::All);
        let (threads, peak) = b.pool_stats();
        assert_eq!(threads, 2);
        assert!((1..=2).contains(&peak), "{peak}");
    }

    #[test]
    fn explain_returns_connected_span_tree() {
        let b = broker();
        let resp = b.execute(
            &SearchRequest::new("databases")
                .policy(SelectionPolicy::All)
                .explain(true),
        );
        let trace = resp.trace.as_ref().expect("explain forces a trace");
        assert!(trace.sampled);
        assert_eq!(trace.spans[0].name, "search");
        assert_eq!(trace.spans[0].parent, seu_obs::SpanId(0));
        let root = trace.spans[0].id;
        // The request pipeline's phases are all present.
        for phase in ["plan", "analyze", "select", "dispatch", "merge"] {
            assert!(
                trace.spans.iter().any(|s| s.name == phase),
                "missing span {phase:?}"
            );
        }
        assert!(trace.spans.iter().any(|s| s.name == "shard_walk"));
        // One dispatch child per selected engine, carrying the
        // queue-wait attribute.
        let dispatch = trace.spans.iter().find(|s| s.name == "dispatch").unwrap();
        assert_eq!(dispatch.parent, root);
        let engine_spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("dispatch:"))
            .collect();
        assert_eq!(engine_spans.len(), 3);
        for s in &engine_spans {
            assert_eq!(s.parent, dispatch.id);
            assert!(s.attrs.iter().any(|(k, _)| k == "queue_wait_s"));
        }
        // Every non-root span's parent exists: the tree is connected.
        for s in &trace.spans[1..] {
            assert!(
                trace.spans.iter().any(|p| p.id == s.parent),
                "orphan span {:?}",
                s.name
            );
        }
        // The trace is queryable from the store afterwards.
        let stored = seu_obs::tracer().store().get(trace.trace_id).unwrap();
        assert_eq!(stored.trace_id, trace.trace_id);
    }

    #[test]
    fn unexplained_query_returns_no_trace() {
        let b = broker();
        let resp = b.execute(&SearchRequest::new("databases").policy(SelectionPolicy::All));
        assert!(resp.trace.is_none());
    }

    #[test]
    fn traced_reestimate_records_span() {
        let b = broker();
        let plan = b.plan(
            &SearchRequest::new("soup").policy(SelectionPolicy::All),
            None,
        );
        let trace = seu_obs::tracer().start_trace("reestimate_test", true);
        let handle = trace.handle();
        let ests = b.try_reestimate(&plan, 0.2, Some(&handle)).unwrap();
        assert_eq!(ests.len(), 3);
        let finished = trace.finish().unwrap();
        let span = finished
            .spans
            .iter()
            .find(|s| s.name == "reestimate")
            .unwrap();
        assert!(span.attrs.iter().any(|(k, v)| k == "engines" && v == "3"));
    }
}
