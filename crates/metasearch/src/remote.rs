//! Remote engines: the transport abstraction the broker dispatches to
//! when an engine lives in another process.
//!
//! The paper's architecture *assumes* broker and engines are separate
//! systems exchanging only compact representatives and per-query results
//! (§1); this module is the broker-side half of making that literal. A
//! [`RemoteTransport`] is anything that can answer the three calls the
//! broker makes of an engine it cannot touch directly:
//!
//! * **search** — raw query text + threshold in, named scored hits out
//!   (the remote engine analyzes the text itself, with the same analyzer
//!   configuration the broker plans with, so results are identical to
//!   the in-process path);
//! * **true usefulness** — the oracle call the evaluation layer uses;
//! * **snapshot** — the engine's [`EngineSnapshot`]: its representative
//!   (at full f64 precision), vocabulary, and the three statistics query
//!   weighting consumes (scheme, document count, document frequencies).
//!   From these the broker forms per-engine query vectors and estimates
//!   **byte-identical** to an all-local broker over the same corpus.
//!
//! The concrete TCP transport lives in the `seu-net` crate
//! ([`RemoteTransport`] keeps `seu-metasearch` free of any networking);
//! tests implement the trait in-process.
//!
//! Remote entries shard by engine name exactly like local ones, and a
//! snapshot refetch replaces representative, term map, and weighting
//! statistics in one write — so a remote entry's planning metadata is
//! always internally consistent and never hits the mid-propagation
//! sidelining that protects locally replaced engines (see
//! `Broker::plan`).
//!
//! Failures are **typed**: every call returns a [`TransportError`] whose
//! [`TransportErrorKind`] distinguishes refused connections, deadline
//! misses, connections lost mid-frame, protocol violations, and errors
//! the remote side reported. Dispatch maps them into the per-engine
//! failure capture of [`SearchResponse`](crate::SearchResponse) instead
//! of failing the query.

use seu_engine::{weighted_query, Fingerprint, Query, TermMap, TrueUsefulness, WeightingScheme};
use seu_repr::{FrozenSummary, Representative};
use seu_text::{Analyzer, AnalyzerConfig, TermId, Vocabulary};
use std::sync::Arc;

/// Why a remote engine call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// The connection could not be established (refused, unreachable,
    /// or connect deadline exceeded).
    Refused,
    /// The call did not complete within its deadline.
    Timeout,
    /// The connection dropped mid-exchange (e.g. the engine died between
    /// frames or mid-frame).
    ConnectionLost,
    /// The peer spoke the protocol wrong: bad magic, oversized or
    /// truncated frame, undecodable message, version mismatch.
    Protocol,
    /// The remote engine answered with a typed error of its own.
    Remote,
}

impl TransportErrorKind {
    /// Stable lowercase label (used in metrics and reports).
    pub fn label(&self) -> &'static str {
        match self {
            TransportErrorKind::Refused => "refused",
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::ConnectionLost => "connection_lost",
            TransportErrorKind::Protocol => "protocol",
            TransportErrorKind::Remote => "remote",
        }
    }
}

/// A failed call to a remote engine: the kind plus human-readable
/// detail. Flows into [`EngineDispatchStats::error`]
/// (crate::EngineDispatchStats) so a response reports *why* an engine
/// contributed nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// What class of failure this was.
    pub kind: TransportErrorKind,
    /// Human-readable context (addresses, byte counts, io error text).
    pub detail: String,
}

impl TransportError {
    /// Convenience constructor.
    pub fn new(kind: TransportErrorKind, detail: impl Into<String>) -> Self {
        TransportError {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

impl std::error::Error for TransportError {}

/// One hit a remote engine returned: the document name (ids are
/// meaningless across processes) and its global similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteHit {
    /// Document name within the remote engine.
    pub doc: String,
    /// Global (cosine) similarity.
    pub sim: f64,
}

/// Everything the broker needs to plan for an engine it cannot touch:
/// the representative and vocabulary (for estimates and term mapping)
/// plus the query-weighting statistics and analyzer configuration (for
/// byte-identical query vectors).
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The engine's advertised name.
    pub name: String,
    /// Analyzer configuration its documents were built with.
    pub analyzer: AnalyzerConfig,
    /// Weighting scheme of its collection.
    pub scheme: WeightingScheme,
    /// Number of documents in its collection.
    pub n_docs: u32,
    /// Per-term document frequency, indexed by the vocabulary's term id.
    pub doc_freq: Vec<u32>,
    /// Content fingerprint of the collection the snapshot describes.
    pub fingerprint: Fingerprint,
    /// The representative + vocabulary pair, id-aligned with `doc_freq`.
    pub summary: FrozenSummary,
}

impl EngineSnapshot {
    /// Builds the snapshot an engine server ships for a local engine:
    /// representative and vocabulary **id-aligned with the collection**
    /// (term ids, and therefore query vectors, match the in-process
    /// registration path exactly — unlike a frozen
    /// [`PortableRepresentative`](seu_repr::PortableRepresentative),
    /// which reorders terms lexicographically).
    pub fn of_engine(name: &str, engine: &seu_engine::SearchEngine) -> EngineSnapshot {
        let c = engine.collection();
        EngineSnapshot {
            name: name.to_string(),
            analyzer: c.analyzer_config(),
            scheme: c.scheme(),
            n_docs: c.len() as u32,
            doc_freq: c.vocab().iter().map(|(id, _)| c.doc_freq(id)).collect(),
            fingerprint: engine.fingerprint(),
            summary: FrozenSummary {
                repr: Representative::build(c),
                vocab: c.vocab().clone(),
            },
        }
    }

    /// Whether the snapshot is internally consistent: `doc_freq` must
    /// cover exactly the vocabulary (one entry per term).
    pub fn is_consistent(&self) -> bool {
        self.doc_freq.len() == self.summary.vocab.len()
            && self.summary.repr.distinct_terms() == self.summary.vocab.len()
    }
}

/// The calls the broker makes of an engine in another process. The
/// concrete TCP client lives in `seu-net`; anything implementing this
/// trait can be registered via `Broker::register_remote`.
pub trait RemoteTransport: Send + Sync + std::fmt::Debug {
    /// Where the engine lives, for reports and error messages (e.g.
    /// `"127.0.0.1:41237"`).
    fn endpoint(&self) -> String;

    /// Searches the remote engine: it analyzes `query_text` with its own
    /// (identical) analyzer configuration and returns every document
    /// with similarity above `threshold`, best first.
    ///
    /// Passing `Some(ctx)` propagates trace context; the returned spans
    /// are whatever the remote side recorded under `ctx` (empty when
    /// `ctx` is `None` or the transport does not support tracing — an
    /// implementation is free to ignore the context entirely). seu-net's
    /// client carries the context over the wire and falls back
    /// transparently when the peer predates the traced message kind.
    fn search(
        &self,
        query_text: &str,
        threshold: f64,
        ctx: Option<&seu_obs::TraceContext>,
    ) -> Result<(Vec<RemoteHit>, Vec<seu_obs::SpanRecord>), TransportError>;

    /// Deprecated alias for [`RemoteTransport::search`] with a trace
    /// context.
    #[deprecated(note = "use `search(query_text, threshold, Some(ctx))`")]
    fn search_traced(
        &self,
        query_text: &str,
        threshold: f64,
        ctx: &seu_obs::TraceContext,
    ) -> Result<(Vec<RemoteHit>, Vec<seu_obs::SpanRecord>), TransportError> {
        self.search(query_text, threshold, Some(ctx))
    }

    /// The engine's exact usefulness for a query at a threshold — the
    /// oracle the evaluation compares estimates against.
    fn true_usefulness(
        &self,
        query_text: &str,
        threshold: f64,
    ) -> Result<TrueUsefulness, TransportError>;

    /// [`Self::true_usefulness`] for many queries at once, answers in
    /// request order. The default loops the per-query call; transports
    /// with a wire-level batch (the `seu-net` TCP client sends one
    /// `EstimateBatch` frame) override it to amortize round trips on
    /// oracle sweeps.
    fn true_usefulness_batch(
        &self,
        queries: &[String],
        threshold: f64,
    ) -> Result<Vec<TrueUsefulness>, TransportError> {
        queries
            .iter()
            .map(|q| self.true_usefulness(q, threshold))
            .collect()
    }

    /// Fetches the engine's current snapshot (representative, vocabulary,
    /// weighting statistics).
    fn fetch_snapshot(&self) -> Result<EngineSnapshot, TransportError>;
}

/// The broker-side planning state for one remote engine — the subset of
/// an [`EngineSnapshot`] that query planning consumes, kept behind `Arc`s
/// so plans stay self-contained when the registry moves on.
#[derive(Debug, Clone)]
pub struct RemoteMeta {
    /// Analyzer configuration (drives the shared-analysis pass).
    pub analyzer: AnalyzerConfig,
    /// Weighting scheme for query vectors.
    pub scheme: WeightingScheme,
    /// Collection size for query weighting.
    pub n_docs: u32,
    /// Per-term document frequency, id-aligned with `vocab`.
    pub doc_freq: Arc<Vec<u32>>,
    /// The engine's vocabulary (term-id space of its queries and
    /// representative).
    pub vocab: Arc<Vocabulary>,
    /// Fingerprint of the collection this metadata describes, as the
    /// engine reported it.
    pub fingerprint: Fingerprint,
}

impl RemoteMeta {
    /// Builds the planning state from a fetched snapshot.
    pub fn from_snapshot(snapshot: &EngineSnapshot) -> RemoteMeta {
        RemoteMeta {
            analyzer: snapshot.analyzer,
            scheme: snapshot.scheme,
            n_docs: snapshot.n_docs,
            doc_freq: Arc::new(snapshot.doc_freq.clone()),
            vocab: Arc::new(snapshot.summary.vocab.clone()),
            fingerprint: snapshot.fingerprint,
        }
    }

    fn doc_freq_of(&self, t: TermId) -> u32 {
        self.doc_freq.get(t.index()).copied().unwrap_or(0)
    }

    /// Builds the engine-local query vector from broker-global
    /// `(term, count)` pairs through the engine's [`TermMap`] — the
    /// remote twin of `Collection::query_from_shared`, byte-identical to
    /// what the engine's own collection would produce.
    pub fn query_from_shared(&self, global_tf: &[(u32, u32)], map: &TermMap) -> Query {
        weighted_query(
            self.scheme,
            self.n_docs,
            |t| self.doc_freq_of(t),
            map.to_local(global_tf),
        )
    }

    /// Builds the engine-local query vector directly from text — the
    /// fallback when the shared analysis pass did not cover this
    /// engine's analyzer configuration.
    pub fn query_from_text(&self, text: &str) -> Query {
        let mut tf: std::collections::HashMap<TermId, u32> = std::collections::HashMap::new();
        for token in Analyzer::new(self.analyzer).analyze(text) {
            if let Some(id) = self.vocab.get(&token) {
                *tf.entry(id).or_insert(0) += 1;
            }
        }
        weighted_query(self.scheme, self.n_docs, |t| self.doc_freq_of(t), tf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, SearchEngine};
    use seu_repr::PortableRepresentative;

    fn engine(texts: &[&str]) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&format!("d{i}"), t);
        }
        SearchEngine::new(b.build())
    }

    fn snapshot_of(name: &str, e: &SearchEngine) -> EngineSnapshot {
        EngineSnapshot::of_engine(name, e)
    }

    #[test]
    fn remote_meta_query_matches_collection_query() {
        let e = engine(&["apple banana apple", "banana cherry", "durian apple"]);
        let snapshot = snapshot_of("fruits", &e);
        assert!(snapshot.is_consistent());
        let meta = RemoteMeta::from_snapshot(&snapshot);

        let mut global = Vocabulary::new();
        global.intern("unrelated");
        let map_local = TermMap::build(&mut global, e.collection());
        let map_remote = TermMap::from_vocab(&mut global, &meta.vocab);

        for text in ["apple", "apple banana cherry", "zebra", ""] {
            let tokens = Analyzer::paper_default().analyze(text);
            let tf = seu_engine::shared::global_tf(&global, &tokens);
            let local = e.collection().query_from_shared(&tf, &map_local);
            let remote = meta.query_from_shared(&tf, &map_remote);
            assert_eq!(local, remote, "{text:?}");
            assert_eq!(meta.query_from_text(text), local, "{text:?} (direct)");
        }
    }

    #[test]
    fn transport_error_formats_kind_and_detail() {
        let e = TransportError::new(TransportErrorKind::Refused, "127.0.0.1:1 unreachable");
        assert_eq!(e.to_string(), "refused: 127.0.0.1:1 unreachable");
        assert_eq!(
            TransportErrorKind::ConnectionLost.label(),
            "connection_lost"
        );
    }

    #[test]
    fn inconsistent_snapshot_is_detected() {
        let e = engine(&["apple banana"]);
        let mut snapshot = snapshot_of("x", &e);
        snapshot.doc_freq.pop();
        assert!(!snapshot.is_consistent());
    }

    #[test]
    fn portable_summary_freeze_is_not_id_aligned_but_direct_build_is() {
        // Guard the invariant the snapshot relies on: shipping
        // `Representative::build` + the collection's own vocabulary keeps
        // term ids aligned with `doc_freq`, whereas a frozen
        // `PortableRepresentative` reorders terms lexicographically.
        let e = engine(&["zebra apple", "apple"]);
        let c = e.collection();
        let direct = snapshot_of("x", &e);
        assert_eq!(
            direct.summary.vocab.term(TermId(0)),
            c.vocab().term(TermId(0))
        );
        let frozen = PortableRepresentative::build(c).freeze();
        // Lexicographic: "apple" first, even though "zebra" was interned first.
        assert_eq!(frozen.vocab.term(TermId(0)), "apple");
    }
}
