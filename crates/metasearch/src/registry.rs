//! The representative lifecycle: epoch-versioned registry entries and
//! staleness detection.
//!
//! The paper's broker keeps a *representative* per engine and assumes
//! infrequent metadata propagation keeps it consistent with the engine's
//! collection (§1). This module is the machinery that makes that
//! consistency checkable and restorable instead of assumed:
//!
//! * every registry entry carries a monotonically increasing **epoch**,
//!   bumped on any change to the entry (representative refresh or
//!   replacement, engine snapshot swap);
//! * the entry records the [`Fingerprint`] of the collection its
//!   representative and term map were built from, so a sweep
//!   (`Broker::refresh_if_stale`) can compare it against the engine's
//!   current fingerprint and rebuild only what actually changed;
//! * a [`QueryPlan`](crate::QueryPlan) records the broker-wide registry
//!   epoch it was planned against, so `Broker::execute_plan` and
//!   `Broker::try_reestimate` can detect that a plan's term translation
//!   no longer matches the registry and replan (or surface a typed
//!   [`StalePlanError`] under [`StaleMode::Error`](crate::StaleMode)).
//!
//! The headline invariant: **any** path that changes a representative
//! also rebuilds the engine's `TermMap` against the broker-global
//! vocabulary. Terms added to a collection after registration therefore
//! reach the global vocabulary and every subsequent plan, instead of
//! being silently dropped from query translation.
//!
//! # Sharding
//!
//! At 10k+ engines a single registry lock turns every lifecycle event
//! into a broker-wide stall: one engine's refresh blocks every query's
//! plan. [`ShardedRegistry`] splits the entries across N independently
//! locked shards, routed by [`shard_for`] (a pure FNV-1a hash of the
//! engine id, so the assignment is stable across restarts and
//! re-sharding with the same shard count moves nothing). Each shard
//! carries its own epoch counter, bumped under that shard's write lock;
//! the broker-global epoch is **derived** as the sum of the shard
//! epochs, so no global lock exists anywhere in the lifecycle. Entries
//! carry a global registration sequence number so cross-shard views
//! (planning, statuses, oracle selection) can be presented in exact
//! registration order — the order selection tie-breaks and result
//! merging depend on, which is what makes a sharded broker bit-identical
//! to a flat one.

use crate::persist::{record_for_local, record_for_remote, StoreHandle};
use crate::remote::{
    EngineSnapshot, RemoteMeta, RemoteTransport, TransportError, TransportErrorKind,
};
use parking_lot::RwLock;
use seu_engine::{Fingerprint, SearchEngine, TermMap, WeightingScheme};
use seu_repr::Representative;
use seu_text::{AnalyzerConfig, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a offset basis (same constants as
/// [`seu_engine::Fingerprint`]'s content hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Routes an engine id to a shard: FNV-1a over the id's bytes, modulo
/// the shard count.
///
/// The function is pure — no per-process salt, no randomized hasher —
/// so the same id maps to the same shard in every process and across
/// restarts, and re-sharding a registry to the *same* shard count is a
/// no-op (no engine moves). Ids spread uniformly: over any reasonably
/// sized id population each shard receives its expected share within a
/// few percent (property-tested in `tests/shard_routing.rs`).
pub fn shard_for(engine_id: &str, n_shards: usize) -> usize {
    let mut h = FNV_OFFSET;
    for b in engine_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % n_shards.max(1) as u64) as usize
}

/// One independently locked slice of the registry.
///
/// Epoch discipline: `epoch` is bumped (`SeqCst`) **while holding the
/// `entries` write lock**, exactly once per registration and once per
/// entry change. Two consequences:
///
/// * reading `epoch` under the `entries` read lock observes a
///   consistent cut of this shard — the entries and the epoch belong to
///   the same moment;
/// * within any such cut, `epoch == entries.len() + Σ entry.epoch`
///   (each registration contributes 1 with the entry starting at epoch
///   0; each subsequent entry-epoch bump pairs with one shard bump).
///   [`RegistrySnapshot`] exposes the pieces so tests can assert the
///   invariant under concurrency.
pub(crate) struct Shard {
    pub(crate) entries: RwLock<Vec<RegisteredEngine>>,
    /// This shard's lifecycle version; see the struct docs for the
    /// bump discipline.
    pub(crate) epoch: AtomicU64,
    /// This shard's last-published contribution to the engine-count
    /// gauges, so republication is a delta (several brokers sum) and
    /// `Drop` can retract it.
    pub(crate) gauge_engines: AtomicU64,
    /// Ditto for representative resident bytes.
    pub(crate) gauge_repr_bytes: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            entries: RwLock::new(Vec::new()),
            epoch: AtomicU64::new(0),
            gauge_engines: AtomicU64::new(0),
            gauge_repr_bytes: AtomicU64::new(0),
        }
    }
}

/// The broker's registry: N independently locked shards plus the global
/// registration sequence counter.
pub(crate) struct ShardedRegistry {
    shards: Vec<Shard>,
    /// Next registration sequence number. Sequence numbers give every
    /// entry a place in one broker-wide registration order without any
    /// cross-shard lock.
    seq: AtomicU64,
}

impl ShardedRegistry {
    pub(crate) fn new(n_shards: usize) -> ShardedRegistry {
        ShardedRegistry {
            shards: (0..n_shards.max(1)).map(|_| Shard::new()).collect(),
            seq: AtomicU64::new(0),
        }
    }

    pub(crate) fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard (index and reference) an engine id routes to.
    pub(crate) fn shard_of(&self, engine_id: &str) -> (usize, &Shard) {
        let i = shard_for(engine_id, self.shards.len());
        (i, &self.shards[i])
    }

    /// The broker-global registry epoch, derived as the sum of the
    /// shard epochs — no global lock. Each term is monotonic, so the
    /// sum is monotonic; a plan that records the sum goes stale the
    /// moment any shard changes.
    pub(crate) fn epoch(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.epoch.load(Ordering::SeqCst))
            .sum()
    }

    /// Claims the next registration sequence number.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// The next sequence number that *would* be claimed — the snapshot
    /// watermark a manifest records so a restore resumes the sequence
    /// space without colliding with pre-snapshot registrations.
    pub(crate) fn seq_watermark(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Fast-forwards the sequence counter (restore only; never goes
    /// backwards).
    pub(crate) fn set_seq(&self, watermark: u64) {
        self.seq.fetch_max(watermark, Ordering::SeqCst);
    }

    /// Total registered engines (takes each shard's read lock briefly).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.read().len()).sum()
    }
}

/// What the registry knows about the collection a representative
/// summarized — the baseline a staleness check compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReprProvenance {
    /// The broker built the representative from the engine's collection
    /// itself: the full content fingerprint is known.
    Local(Fingerprint),
    /// The engine shipped the representative (possibly quantized or
    /// accumulator-snapshotted): only the summary's own totals are
    /// known, so staleness is judged on document count and raw bytes.
    Shipped {
        /// `n_docs` the shipped summary claims.
        n_docs: u64,
        /// `collection_bytes` the shipped summary claims.
        raw_bytes: u64,
    },
    /// A remote engine shipped a full [`EngineSnapshot`]: the snapshot
    /// carries the collection's content fingerprint, so push
    /// invalidations can be compared exactly.
    Remote(Fingerprint),
}

impl ReprProvenance {
    /// Whether a collection with fingerprint `current` is still the one
    /// this representative describes.
    pub(crate) fn matches(&self, current: Fingerprint) -> bool {
        match *self {
            ReprProvenance::Local(fp) | ReprProvenance::Remote(fp) => fp == current,
            ReprProvenance::Shipped { n_docs, raw_bytes } => {
                n_docs == current.n_docs && raw_bytes == current.raw_bytes
            }
        }
    }
}

/// How the broker reaches one registered engine: in-process, or through
/// a [`RemoteTransport`] with broker-side planning metadata.
///
/// Cloning is cheap (`Arc`s all the way down); plans hold a clone so
/// they stay dispatchable after the registry moves on.
#[derive(Debug, Clone)]
pub(crate) enum EngineHandle {
    /// The engine lives in this process; the broker holds it directly.
    Local(Arc<SearchEngine>),
    /// The engine lives elsewhere; the broker holds a transport to it
    /// and the snapshot-derived metadata planning needs.
    Remote {
        /// The wire to the engine.
        transport: Arc<dyn RemoteTransport>,
        /// Planning metadata from the engine's last snapshot.
        meta: RemoteMeta,
    },
    /// The entry was restored from a persistent store and has not been
    /// re-attached to a live engine yet. The broker can still *plan*
    /// over it (its representative and vocabulary come from the store),
    /// but dispatching to it fails until
    /// [`Broker::attach_engine`](crate::Broker::attach_engine) or
    /// [`Broker::attach_remote`](crate::Broker::attach_remote) supplies
    /// the live handle.
    Detached {
        /// Planning metadata decoded from the stored record (a
        /// placeholder until lazy hydration fills it in).
        meta: RemoteMeta,
        /// The endpoint recorded at snapshot time, when the engine was
        /// remote — advisory, for operators re-attaching transports.
        endpoint: Option<String>,
    },
}

impl EngineHandle {
    /// The engine's analyzer configuration (drives the shared-analysis
    /// pass).
    pub(crate) fn analyzer_config(&self) -> AnalyzerConfig {
        match self {
            EngineHandle::Local(e) => e.collection().analyzer_config(),
            EngineHandle::Remote { meta, .. } => meta.analyzer,
            EngineHandle::Detached { meta, .. } => meta.analyzer,
        }
    }

    /// The engine's weighting scheme (recorded in store manifests).
    pub(crate) fn scheme(&self) -> WeightingScheme {
        match self {
            EngineHandle::Local(e) => e.collection().scheme(),
            EngineHandle::Remote { meta, .. } => meta.scheme,
            EngineHandle::Detached { meta, .. } => meta.scheme,
        }
    }

    /// The in-process engine, when there is one.
    pub(crate) fn local(&self) -> Option<&Arc<SearchEngine>> {
        match self {
            EngineHandle::Local(e) => Some(e),
            EngineHandle::Remote { .. } | EngineHandle::Detached { .. } => None,
        }
    }

    /// Whether this engine is reached over a transport.
    pub(crate) fn is_remote(&self) -> bool {
        matches!(self, EngineHandle::Remote { .. })
    }

    /// Whether this entry is restored-but-unattached.
    pub(crate) fn is_detached(&self) -> bool {
        matches!(self, EngineHandle::Detached { .. })
    }

    /// The remote endpoint, when there is one (for detached entries,
    /// the endpoint recorded at snapshot time).
    pub(crate) fn endpoint(&self) -> Option<String> {
        match self {
            EngineHandle::Local(_) => None,
            EngineHandle::Remote { transport, .. } => Some(transport.endpoint()),
            EngineHandle::Detached { endpoint, .. } => endpoint.clone(),
        }
    }
}

/// One engine's registry entry: the engine handle, its representative,
/// the global→local term translation, and the lifecycle bookkeeping.
pub(crate) struct RegisteredEngine {
    pub(crate) name: String,
    /// Broker-wide registration sequence number: cross-shard views sort
    /// by it to recover exact registration order.
    pub(crate) seq: u64,
    pub(crate) handle: EngineHandle,
    pub(crate) repr: Arc<Representative>,
    /// Broker-global → engine-local term translation; rebuilt together
    /// with the representative, never independently of it.
    pub(crate) map: TermMap,
    /// For local engines: the full fingerprint of the collection `map`
    /// was built from. [`Broker::replace_engine`](crate::Broker) swaps
    /// the collection *without* rebuilding the map (metadata
    /// propagation is infrequent by design), so planning must check
    /// this before translating through `map` — the old map's local term
    /// ids may be out of range (or denote different terms) in the new
    /// collection. `None` for remote entries, whose map and metadata
    /// always move together.
    pub(crate) map_fingerprint: Option<Fingerprint>,
    /// Per-engine version, starting at 0 and bumped on every refresh,
    /// representative update, or engine replacement.
    pub(crate) epoch: u64,
    /// Fingerprint (or shipped totals) of the collection `repr` and
    /// `map` were built from.
    pub(crate) provenance: ReprProvenance,
    /// Remote engines only: a push invalidation notice arrived (or a
    /// snapshot refetch failed) and the entry has not been refreshed
    /// yet, so [`RegisteredEngine::is_stale`] reports true until a
    /// refetch succeeds.
    pub(crate) pending_invalidation: bool,
    /// Set while a restored entry's representative still lives only in
    /// the cold tier; cleared by lazy hydration. Carries the manifest's
    /// size bookkeeping so statuses and gauges stay meaningful before
    /// the first plan touches the shard.
    pub(crate) cold: Option<ColdEntry>,
    /// The fingerprint this entry's representative is stored under in
    /// the attached store, when there is one — the key `snapshot`
    /// writes into the manifest and `restore` hydrates from.
    pub(crate) stored_fingerprint: Option<Fingerprint>,
}

/// Size bookkeeping for a restored entry that has not been hydrated
/// from the cold tier yet.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColdEntry {
    /// Distinct terms in the stored representative.
    pub(crate) repr_terms: u64,
    /// Encoded bytes of the stored record.
    pub(crate) repr_bytes: u64,
}

impl RegisteredEngine {
    /// Whether the engine's current collection no longer matches the
    /// collection its representative was built from. For local engines
    /// this is an O(1) fingerprint comparison; for remote engines the
    /// broker cannot poll cheaply, so staleness is what push
    /// invalidation (or a failed refetch) has marked.
    pub(crate) fn is_stale(&self) -> bool {
        match &self.handle {
            EngineHandle::Local(e) => !self.provenance.matches(e.fingerprint()),
            EngineHandle::Remote { .. } | EngineHandle::Detached { .. } => {
                self.pending_invalidation
            }
        }
    }

    /// Rebuilds the representative — from the collection for local
    /// engines, by refetching the snapshot for remote ones — and,
    /// atomically with it, the term map against the global vocabulary,
    /// folding any new terms in. This is the single code path behind
    /// every representative change, so the map can never lag the
    /// representative again. A remote refetch that fails leaves the
    /// entry marked stale so the next sweep retries it.
    pub(crate) fn try_refresh(
        &mut self,
        global_vocab: &mut Vocabulary,
        store: Option<&StoreHandle>,
    ) -> Result<(), TransportError> {
        match &self.handle {
            EngineHandle::Local(engine) => {
                let engine = engine.clone();
                let repr = Representative::build(engine.collection());
                self.install(
                    global_vocab,
                    repr,
                    ReprProvenance::Local(engine.fingerprint()),
                    store,
                );
                Ok(())
            }
            EngineHandle::Remote { transport, .. } => {
                let snapshot = match transport.clone().fetch_snapshot() {
                    Ok(s) => s,
                    Err(e) => {
                        self.pending_invalidation = true;
                        return Err(e);
                    }
                };
                self.install_remote(global_vocab, &snapshot, store)
            }
            EngineHandle::Detached { .. } => {
                // Nothing to refresh from: the entry has no live
                // engine. Stay marked stale until something attaches.
                self.pending_invalidation = true;
                Err(TransportError::new(
                    TransportErrorKind::Refused,
                    format!(
                        "engine {:?} is detached (restored from store); \
                         attach a live engine or transport to refresh it",
                        self.name
                    ),
                ))
            }
        }
    }

    /// Installs a freshly fetched remote snapshot: representative, term
    /// map, planning metadata, and fingerprint provenance move together.
    pub(crate) fn install_remote(
        &mut self,
        global_vocab: &mut Vocabulary,
        snapshot: &EngineSnapshot,
        store: Option<&StoreHandle>,
    ) -> Result<(), TransportError> {
        if !snapshot.is_consistent() {
            self.pending_invalidation = true;
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "engine {:?} shipped an inconsistent snapshot",
                    snapshot.name
                ),
            ));
        }
        let meta = RemoteMeta::from_snapshot(snapshot);
        self.map = TermMap::from_vocab(global_vocab, &meta.vocab);
        self.map_fingerprint = None;
        self.repr = match store {
            Some(store) => {
                let record = record_for_remote(&self.name, &meta, &snapshot.summary.repr);
                let canonical = store.canonicalize(&record);
                self.stored_fingerprint = Some(canonical.fingerprint);
                canonical.repr.clone()
            }
            None => Arc::new(snapshot.summary.repr.clone()),
        };
        self.provenance = ReprProvenance::Remote(snapshot.fingerprint);
        if let EngineHandle::Remote { meta: m, .. } = &mut self.handle {
            *m = meta;
        }
        self.pending_invalidation = false;
        self.cold = None;
        self.epoch += 1;
        Ok(())
    }

    /// Installs a representative the engine shipped, rebuilding the term
    /// map from the engine's current collection (shipped representatives
    /// are id-aligned with it). Local engines only — remote entries
    /// receive whole snapshots via [`RegisteredEngine::install_remote`].
    pub(crate) fn install_shipped(
        &mut self,
        global_vocab: &mut Vocabulary,
        repr: Representative,
        store: Option<&StoreHandle>,
    ) {
        let provenance = ReprProvenance::Shipped {
            n_docs: repr.n_docs(),
            raw_bytes: repr.collection_bytes(),
        };
        self.install(global_vocab, repr, provenance, store);
    }

    fn install(
        &mut self,
        global_vocab: &mut Vocabulary,
        repr: Representative,
        provenance: ReprProvenance,
        store: Option<&StoreHandle>,
    ) {
        let engine = self
            .handle
            .local()
            .expect("install targets local engines; remote entries use install_remote")
            .clone();
        self.map = TermMap::build(global_vocab, engine.collection());
        self.map_fingerprint = Some(engine.fingerprint());
        self.repr = match store {
            Some(store) => {
                let record = record_for_local(&self.name, &engine, &repr);
                let canonical = store.canonicalize(&record);
                self.stored_fingerprint = Some(canonical.fingerprint);
                canonical.repr.clone()
            }
            None => Arc::new(repr),
        };
        self.provenance = provenance;
        self.cold = None;
        self.epoch += 1;
    }
}

/// One engine's lifecycle status, as reported by
/// [`Broker::engine_statuses`](crate::Broker::engine_statuses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStatus {
    /// Engine name (registration key).
    pub name: String,
    /// The registry shard the engine routes to (see [`shard_for`]).
    pub shard: usize,
    /// Per-engine epoch: how many times this entry has changed since
    /// registration.
    pub epoch: u64,
    /// Whether the engine's collection no longer matches its
    /// representative (a `refresh_if_stale` sweep would rebuild it).
    pub stale: bool,
    /// Distinct terms in the representative.
    pub repr_terms: usize,
    /// Approximate resident bytes of the representative.
    pub repr_bytes: u64,
    /// Whether the engine is reached over a transport.
    pub remote: bool,
    /// Whether the entry was restored from a persistent store and has
    /// not been re-attached to a live engine or transport yet (it can
    /// be planned over but not dispatched to).
    pub detached: bool,
    /// The remote endpoint, when the engine is remote (for detached
    /// entries, the endpoint recorded at snapshot time).
    pub endpoint: Option<String>,
}

/// A consistent cut of the registry's lifecycle state, as reported by
/// [`Broker::registry_snapshot`](crate::Broker::registry_snapshot).
///
/// Each shard contributes its statuses and its epoch from under a
/// single read-lock acquisition, so per shard the pair is a consistent
/// cut and the invariant
/// `shard_epochs[i] == |statuses with shard == i| + Σ their epochs`
/// holds even while other threads mutate the registry. (A torn
/// implementation that re-locked per engine could observe an entry
/// epoch bump without the matching shard bump and violate it.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Per-engine statuses, in registration order.
    pub statuses: Vec<EngineStatus>,
    /// The broker-global epoch at the cut (sum of `shard_epochs`).
    pub epoch: u64,
    /// Each shard's epoch at its cut.
    pub shard_epochs: Vec<u64>,
}

/// A plan was made against an older registry state than the broker
/// currently holds: its per-engine term translations and estimates may
/// no longer describe the registered representatives.
///
/// Returned by [`Broker::try_reestimate`](crate::Broker::try_reestimate)
/// always, and by [`Broker::execute_plan`](crate::Broker::execute_plan)
/// under [`StaleMode::Error`](crate::StaleMode); under the default
/// [`StaleMode::Replan`](crate::StaleMode) the broker replans instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalePlanError {
    /// The registry epoch the plan was made against.
    pub plan_epoch: u64,
    /// The registry epoch the broker holds now.
    pub registry_epoch: u64,
}

impl std::fmt::Display for StalePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan was made against registry epoch {} but the registry is at epoch {}",
            self.plan_epoch, self.registry_epoch
        )
    }
}

impl std::error::Error for StalePlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_provenance_matches_on_totals_only() {
        let p = ReprProvenance::Shipped {
            n_docs: 3,
            raw_bytes: 100,
        };
        assert!(p.matches(Fingerprint {
            n_docs: 3,
            raw_bytes: 100,
            hash: 0xdead,
        }));
        assert!(!p.matches(Fingerprint {
            n_docs: 4,
            raw_bytes: 100,
            hash: 0xdead,
        }));
    }

    #[test]
    fn local_provenance_matches_on_full_fingerprint() {
        let fp = Fingerprint {
            n_docs: 3,
            raw_bytes: 100,
            hash: 7,
        };
        let p = ReprProvenance::Local(fp);
        assert!(p.matches(fp));
        assert!(!p.matches(Fingerprint { hash: 8, ..fp }));
    }

    #[test]
    fn shard_routing_is_pure_and_in_range() {
        for n in [1usize, 2, 4, 16, 31] {
            for id in ["", "cooking", "databases", "engine-9999"] {
                let s = shard_for(id, n);
                assert!(s < n, "shard_for({id:?}, {n}) = {s}");
                assert_eq!(s, shard_for(id, n), "routing must be deterministic");
            }
        }
        // One shard degenerates to the flat registry.
        assert_eq!(shard_for("anything", 1), 0);
        // Zero shards is clamped rather than dividing by zero.
        assert_eq!(shard_for("anything", 0), 0);
    }

    #[test]
    fn sharded_registry_epoch_sums_shards() {
        let r = ShardedRegistry::new(4);
        assert_eq!(r.epoch(), 0);
        r.shards()[1].epoch.fetch_add(3, Ordering::SeqCst);
        r.shards()[3].epoch.fetch_add(2, Ordering::SeqCst);
        assert_eq!(r.epoch(), 5);
        assert_eq!(r.len(), 0);
        assert_eq!(r.next_seq(), 0);
        assert_eq!(r.next_seq(), 1);
    }

    #[test]
    fn stale_plan_error_formats_epochs() {
        let e = StalePlanError {
            plan_epoch: 2,
            registry_epoch: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("epoch 2"), "{msg}");
        assert!(msg.contains("epoch 5"), "{msg}");
    }
}
