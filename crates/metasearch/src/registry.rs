//! The representative lifecycle: epoch-versioned registry entries and
//! staleness detection.
//!
//! The paper's broker keeps a *representative* per engine and assumes
//! infrequent metadata propagation keeps it consistent with the engine's
//! collection (§1). This module is the machinery that makes that
//! consistency checkable and restorable instead of assumed:
//!
//! * every registry entry carries a monotonically increasing **epoch**,
//!   bumped on any change to the entry (representative refresh or
//!   replacement, engine snapshot swap);
//! * the entry records the [`Fingerprint`] of the collection its
//!   representative and term map were built from, so a sweep
//!   (`Broker::refresh_if_stale`) can compare it against the engine's
//!   current fingerprint and rebuild only what actually changed;
//! * a [`QueryPlan`](crate::QueryPlan) records the broker-wide registry
//!   epoch it was planned against, so `Broker::execute_plan` and
//!   `Broker::try_reestimate` can detect that a plan's term translation
//!   no longer matches the registry and replan (or surface a typed
//!   [`StalePlanError`] under [`StaleMode::Error`](crate::StaleMode)).
//!
//! The headline invariant: **any** path that changes a representative
//! also rebuilds the engine's `TermMap` against the broker-global
//! vocabulary. Terms added to a collection after registration therefore
//! reach the global vocabulary and every subsequent plan, instead of
//! being silently dropped from query translation.

use crate::remote::{
    EngineSnapshot, RemoteMeta, RemoteTransport, TransportError, TransportErrorKind,
};
use seu_engine::{Fingerprint, SearchEngine, TermMap};
use seu_repr::Representative;
use seu_text::{AnalyzerConfig, Vocabulary};
use std::sync::Arc;

/// What the registry knows about the collection a representative
/// summarized — the baseline a staleness check compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReprProvenance {
    /// The broker built the representative from the engine's collection
    /// itself: the full content fingerprint is known.
    Local(Fingerprint),
    /// The engine shipped the representative (possibly quantized or
    /// accumulator-snapshotted): only the summary's own totals are
    /// known, so staleness is judged on document count and raw bytes.
    Shipped {
        /// `n_docs` the shipped summary claims.
        n_docs: u64,
        /// `collection_bytes` the shipped summary claims.
        raw_bytes: u64,
    },
    /// A remote engine shipped a full [`EngineSnapshot`]: the snapshot
    /// carries the collection's content fingerprint, so push
    /// invalidations can be compared exactly.
    Remote(Fingerprint),
}

impl ReprProvenance {
    /// Whether a collection with fingerprint `current` is still the one
    /// this representative describes.
    pub(crate) fn matches(&self, current: Fingerprint) -> bool {
        match *self {
            ReprProvenance::Local(fp) | ReprProvenance::Remote(fp) => fp == current,
            ReprProvenance::Shipped { n_docs, raw_bytes } => {
                n_docs == current.n_docs && raw_bytes == current.raw_bytes
            }
        }
    }
}

/// How the broker reaches one registered engine: in-process, or through
/// a [`RemoteTransport`] with broker-side planning metadata.
///
/// Cloning is cheap (`Arc`s all the way down); plans hold a clone so
/// they stay dispatchable after the registry moves on.
#[derive(Debug, Clone)]
pub(crate) enum EngineHandle {
    /// The engine lives in this process; the broker holds it directly.
    Local(Arc<SearchEngine>),
    /// The engine lives elsewhere; the broker holds a transport to it
    /// and the snapshot-derived metadata planning needs.
    Remote {
        /// The wire to the engine.
        transport: Arc<dyn RemoteTransport>,
        /// Planning metadata from the engine's last snapshot.
        meta: RemoteMeta,
    },
}

impl EngineHandle {
    /// The engine's analyzer configuration (drives the shared-analysis
    /// pass).
    pub(crate) fn analyzer_config(&self) -> AnalyzerConfig {
        match self {
            EngineHandle::Local(e) => e.collection().analyzer_config(),
            EngineHandle::Remote { meta, .. } => meta.analyzer,
        }
    }

    /// The in-process engine, when there is one.
    pub(crate) fn local(&self) -> Option<&Arc<SearchEngine>> {
        match self {
            EngineHandle::Local(e) => Some(e),
            EngineHandle::Remote { .. } => None,
        }
    }

    /// Whether this engine is reached over a transport.
    pub(crate) fn is_remote(&self) -> bool {
        matches!(self, EngineHandle::Remote { .. })
    }

    /// The remote endpoint, when there is one.
    pub(crate) fn endpoint(&self) -> Option<String> {
        match self {
            EngineHandle::Local(_) => None,
            EngineHandle::Remote { transport, .. } => Some(transport.endpoint()),
        }
    }
}

/// One engine's registry entry: the engine handle, its representative,
/// the global→local term translation, and the lifecycle bookkeeping.
pub(crate) struct RegisteredEngine {
    pub(crate) name: String,
    pub(crate) handle: EngineHandle,
    pub(crate) repr: Arc<Representative>,
    /// Broker-global → engine-local term translation; rebuilt together
    /// with the representative, never independently of it.
    pub(crate) map: TermMap,
    /// Per-engine version, starting at 0 and bumped on every refresh,
    /// representative update, or engine replacement.
    pub(crate) epoch: u64,
    /// Fingerprint (or shipped totals) of the collection `repr` and
    /// `map` were built from.
    pub(crate) provenance: ReprProvenance,
    /// Remote engines only: a push invalidation notice arrived (or a
    /// snapshot refetch failed) and the entry has not been refreshed
    /// yet, so [`RegisteredEngine::is_stale`] reports true until a
    /// refetch succeeds.
    pub(crate) pending_invalidation: bool,
}

impl RegisteredEngine {
    /// Whether the engine's current collection no longer matches the
    /// collection its representative was built from. For local engines
    /// this is an O(1) fingerprint comparison; for remote engines the
    /// broker cannot poll cheaply, so staleness is what push
    /// invalidation (or a failed refetch) has marked.
    pub(crate) fn is_stale(&self) -> bool {
        match &self.handle {
            EngineHandle::Local(e) => !self.provenance.matches(e.fingerprint()),
            EngineHandle::Remote { .. } => self.pending_invalidation,
        }
    }

    /// Rebuilds the representative — from the collection for local
    /// engines, by refetching the snapshot for remote ones — and,
    /// atomically with it, the term map against the global vocabulary,
    /// folding any new terms in. This is the single code path behind
    /// every representative change, so the map can never lag the
    /// representative again. A remote refetch that fails leaves the
    /// entry marked stale so the next sweep retries it.
    pub(crate) fn try_refresh(
        &mut self,
        global_vocab: &mut Vocabulary,
    ) -> Result<(), TransportError> {
        match &self.handle {
            EngineHandle::Local(engine) => {
                let engine = engine.clone();
                let repr = Representative::build(engine.collection());
                self.install(
                    global_vocab,
                    repr,
                    ReprProvenance::Local(engine.fingerprint()),
                );
                Ok(())
            }
            EngineHandle::Remote { transport, .. } => {
                let snapshot = match transport.clone().fetch_snapshot() {
                    Ok(s) => s,
                    Err(e) => {
                        self.pending_invalidation = true;
                        return Err(e);
                    }
                };
                self.install_remote(global_vocab, &snapshot)
            }
        }
    }

    /// Installs a freshly fetched remote snapshot: representative, term
    /// map, planning metadata, and fingerprint provenance move together.
    pub(crate) fn install_remote(
        &mut self,
        global_vocab: &mut Vocabulary,
        snapshot: &EngineSnapshot,
    ) -> Result<(), TransportError> {
        if !snapshot.is_consistent() {
            self.pending_invalidation = true;
            return Err(TransportError::new(
                TransportErrorKind::Protocol,
                format!(
                    "engine {:?} shipped an inconsistent snapshot",
                    snapshot.name
                ),
            ));
        }
        let meta = RemoteMeta::from_snapshot(snapshot);
        self.map = TermMap::from_vocab(global_vocab, &meta.vocab);
        self.repr = Arc::new(snapshot.summary.repr.clone());
        self.provenance = ReprProvenance::Remote(snapshot.fingerprint);
        if let EngineHandle::Remote { meta: m, .. } = &mut self.handle {
            *m = meta;
        }
        self.pending_invalidation = false;
        self.epoch += 1;
        Ok(())
    }

    /// Installs a representative the engine shipped, rebuilding the term
    /// map from the engine's current collection (shipped representatives
    /// are id-aligned with it). Local engines only — remote entries
    /// receive whole snapshots via [`RegisteredEngine::install_remote`].
    pub(crate) fn install_shipped(&mut self, global_vocab: &mut Vocabulary, repr: Representative) {
        let provenance = ReprProvenance::Shipped {
            n_docs: repr.n_docs(),
            raw_bytes: repr.collection_bytes(),
        };
        self.install(global_vocab, repr, provenance);
    }

    fn install(
        &mut self,
        global_vocab: &mut Vocabulary,
        repr: Representative,
        provenance: ReprProvenance,
    ) {
        let engine = self
            .handle
            .local()
            .expect("install targets local engines; remote entries use install_remote")
            .clone();
        self.map = TermMap::build(global_vocab, engine.collection());
        self.repr = Arc::new(repr);
        self.provenance = provenance;
        self.epoch += 1;
    }
}

/// One engine's lifecycle status, as reported by
/// [`Broker::engine_statuses`](crate::Broker::engine_statuses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStatus {
    /// Engine name (registration key).
    pub name: String,
    /// Per-engine epoch: how many times this entry has changed since
    /// registration.
    pub epoch: u64,
    /// Whether the engine's collection no longer matches its
    /// representative (a `refresh_if_stale` sweep would rebuild it).
    pub stale: bool,
    /// Distinct terms in the representative.
    pub repr_terms: usize,
    /// Approximate resident bytes of the representative.
    pub repr_bytes: u64,
    /// Whether the engine is reached over a transport.
    pub remote: bool,
    /// The remote endpoint, when the engine is remote.
    pub endpoint: Option<String>,
}

/// A plan was made against an older registry state than the broker
/// currently holds: its per-engine term translations and estimates may
/// no longer describe the registered representatives.
///
/// Returned by [`Broker::try_reestimate`](crate::Broker::try_reestimate)
/// always, and by [`Broker::execute_plan`](crate::Broker::execute_plan)
/// under [`StaleMode::Error`](crate::StaleMode); under the default
/// [`StaleMode::Replan`](crate::StaleMode) the broker replans instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalePlanError {
    /// The registry epoch the plan was made against.
    pub plan_epoch: u64,
    /// The registry epoch the broker holds now.
    pub registry_epoch: u64,
}

impl std::fmt::Display for StalePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan was made against registry epoch {} but the registry is at epoch {}",
            self.plan_epoch, self.registry_epoch
        )
    }
}

impl std::error::Error for StalePlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_provenance_matches_on_totals_only() {
        let p = ReprProvenance::Shipped {
            n_docs: 3,
            raw_bytes: 100,
        };
        assert!(p.matches(Fingerprint {
            n_docs: 3,
            raw_bytes: 100,
            hash: 0xdead,
        }));
        assert!(!p.matches(Fingerprint {
            n_docs: 4,
            raw_bytes: 100,
            hash: 0xdead,
        }));
    }

    #[test]
    fn local_provenance_matches_on_full_fingerprint() {
        let fp = Fingerprint {
            n_docs: 3,
            raw_bytes: 100,
            hash: 7,
        };
        let p = ReprProvenance::Local(fp);
        assert!(p.matches(fp));
        assert!(!p.matches(Fingerprint { hash: 8, ..fp }));
    }

    #[test]
    fn stale_plan_error_formats_epochs() {
        let e = StalePlanError {
            plan_epoch: 2,
            registry_epoch: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("epoch 2"), "{msg}");
        assert!(msg.contains("epoch 5"), "{msg}");
    }
}
