//! The broker's request/response types: one entry point for estimate,
//! select, and search.
//!
//! A [`SearchRequest`] carries everything the broker needs to serve a
//! query — the text, the similarity threshold, the [`SelectionPolicy`],
//! and per-request options (result cap, dispatch timeout budget, whether
//! to return the per-engine estimates). [`Broker::plan`] turns a request
//! into a [`QueryPlan`]; [`Broker::execute`] dispatches the plan and
//! returns a [`SearchResponse`].
//!
//! [`Broker::plan`]: crate::Broker::plan
//! [`Broker::execute`]: crate::Broker::execute
//! [`QueryPlan`]: crate::QueryPlan

use crate::broker::{EngineEstimate, MergedHit};
use crate::cache::{CacheMode, CacheTier};
use crate::remote::TransportError;
use crate::selection::SelectionPolicy;
use std::time::Duration;

/// What [`Broker::execute_plan`] does when the supplied plan was made
/// against an older registry epoch than the broker currently holds.
///
/// The registry epoch is the sum of the per-shard epochs, so *any*
/// lifecycle event on *any* shard — registration, refresh, push
/// invalidation — makes outstanding plans stale; shard boundaries never
/// hide a change from the staleness check.
///
/// [`Broker::execute_plan`]: crate::Broker::execute_plan
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaleMode {
    /// Transparently replan against the current registry and execute
    /// the fresh plan (the default).
    #[default]
    Replan,
    /// Surface a typed [`StalePlanError`](crate::StalePlanError) so the
    /// caller decides — e.g. a threshold sweep that must not silently
    /// switch registries mid-bisection.
    Error,
}

/// One metasearch query, with its options.
///
/// Built fluently; only the query text is required:
///
/// ```
/// use seu_metasearch::{SearchRequest, SelectionPolicy};
/// use std::time::Duration;
///
/// let req = SearchRequest::new("mushroom soup")
///     .threshold(0.2)
///     .policy(SelectionPolicy::TopK(3))
///     .top_k(10)
///     .timeout(Duration::from_millis(50))
///     .with_estimates(true);
/// assert_eq!(req.threshold, 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// The raw query text (analyzed once by the broker).
    pub query: String,
    /// Similarity threshold `T` for estimates and retrieval.
    pub threshold: f64,
    /// How estimates become an invocation set.
    pub policy: SelectionPolicy,
    /// Cap on the number of merged hits returned (`None`: unlimited).
    pub top_k: Option<usize>,
    /// Wall-clock budget for the dispatch fan-out; engines that do not
    /// answer in time contribute no hits and are reported as timed out
    /// (`None`: wait for every selected engine).
    pub timeout: Option<Duration>,
    /// Whether [`SearchResponse::estimates`] should carry the per-engine
    /// estimates the plan produced.
    pub with_estimates: bool,
    /// What to do when an externally supplied plan turns out stale
    /// (see [`StaleMode`]).
    pub stale_mode: StaleMode,
    /// Whether to force-sample a trace for this request and return the
    /// finished span tree in [`SearchResponse::trace`] (the HTTP
    /// `explain` option).
    pub explain: bool,
    /// How this request interacts with the broker's query cache
    /// (default [`CacheMode::ReadWrite`]). `explain` requests always
    /// run cold regardless, so their span trees describe real work.
    pub cache: CacheMode,
}

impl SearchRequest {
    /// A request with the paper's defaults: threshold 0, estimated-useful
    /// selection, no result cap, no timeout, no estimates in the
    /// response.
    pub fn new(query: impl Into<String>) -> Self {
        SearchRequest {
            query: query.into(),
            threshold: 0.0,
            policy: SelectionPolicy::EstimatedUseful,
            top_k: None,
            timeout: None,
            with_estimates: false,
            stale_mode: StaleMode::Replan,
            explain: false,
            cache: CacheMode::ReadWrite,
        }
    }

    /// Sets the similarity threshold.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the selection policy.
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps the number of merged hits returned.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Sets the dispatch timeout budget.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Whether the response should include the per-engine estimates.
    pub fn with_estimates(mut self, yes: bool) -> Self {
        self.with_estimates = yes;
        self
    }

    /// Sets the stale-plan handling mode.
    pub fn stale_mode(mut self, mode: StaleMode) -> Self {
        self.stale_mode = mode;
        self
    }

    /// Forces trace sampling and returns the span tree in the response.
    pub fn explain(mut self, yes: bool) -> Self {
        self.explain = yes;
        self
    }

    /// Sets how the request interacts with the broker's query cache
    /// ([`CacheMode::Bypass`] forces the cold path end to end).
    pub fn cache(mut self, mode: CacheMode) -> Self {
        self.cache = mode;
        self
    }
}

/// What happened to one selected engine during dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// The engine answered.
    Completed,
    /// The engine panicked, or its transport failed; it contributed no
    /// hits (`broker_engine_failures_total` counts these).
    Failed,
    /// The engine did not answer within the request's timeout budget —
    /// either the dispatch-wide budget or, for remote engines, the
    /// transport's own per-call deadline
    /// (`broker_engine_timeouts_total` counts these).
    TimedOut,
}

/// Per-engine dispatch accounting for one executed request.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineDispatchStats {
    /// Engine name (registration key).
    pub engine: String,
    /// Hits the engine contributed before merging.
    pub hits: usize,
    /// Wall-clock the engine's search took (0 when it failed or timed
    /// out).
    pub seconds: f64,
    /// How the dispatch ended.
    pub outcome: DispatchOutcome,
    /// The typed transport failure behind a [`DispatchOutcome::Failed`]
    /// or [`DispatchOutcome::TimedOut`] outcome, when the engine is
    /// remote and its transport reported one (`None` for local engines
    /// and pool-level timeouts).
    pub error: Option<TransportError>,
}

/// The result of [`Broker::execute`]: merged hits plus the accounting
/// the broker produced along the way.
///
/// [`Broker::execute`]: crate::Broker::execute
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Merged hits, sorted by descending global similarity (capped at
    /// the request's `top_k` if set).
    pub hits: Vec<MergedHit>,
    /// Per-engine estimates from the plan step, in registration order.
    /// Empty unless the request set `with_estimates`.
    pub estimates: Vec<EngineEstimate>,
    /// Per selected engine: hit count, latency, and outcome, in
    /// invocation order.
    pub per_engine_stats: Vec<EngineDispatchStats>,
    /// The finished span tree, present when the request set
    /// [`SearchRequest::explain`] (or the head sampler retained the
    /// trace and it finished slow — see `seu_obs::trace`).
    pub trace: Option<std::sync::Arc<seu_obs::FinishedTrace>>,
    /// Which cache tier (if any) this response was served from: `None`
    /// for a fully cold execution, [`CacheTier::Analysis`] /
    /// [`CacheTier::Plan`] when planning reused cached work before a
    /// real dispatch, [`CacheTier::Results`] when the merged response
    /// itself was served. Pure provenance — hits, estimates, and
    /// [`SearchResponse::is_complete`] are bit-identical between a
    /// cached response and the cold execution that populated it.
    pub served_from: Option<CacheTier>,
}

impl SearchResponse {
    /// Names of the engines the plan selected, in invocation order.
    pub fn selected(&self) -> Vec<String> {
        self.per_engine_stats
            .iter()
            .map(|s| s.engine.clone())
            .collect()
    }

    /// Whether every selected engine completed in time.
    pub fn is_complete(&self) -> bool {
        self.per_engine_stats
            .iter()
            .all(|s| s.outcome == DispatchOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let req = SearchRequest::new("soup");
        assert_eq!(req.query, "soup");
        assert_eq!(req.threshold, 0.0);
        assert_eq!(req.policy, SelectionPolicy::EstimatedUseful);
        assert_eq!(req.top_k, None);
        assert_eq!(req.timeout, None);
        assert!(!req.with_estimates);
        assert_eq!(req.stale_mode, StaleMode::Replan);
        assert!(!req.explain);
        assert_eq!(req.cache, CacheMode::ReadWrite);

        let req = req
            .threshold(0.3)
            .policy(SelectionPolicy::All)
            .top_k(5)
            .timeout(Duration::from_secs(1))
            .with_estimates(true)
            .stale_mode(StaleMode::Error)
            .explain(true)
            .cache(CacheMode::Bypass);
        assert!(req.explain);
        assert_eq!(req.cache, CacheMode::Bypass);
        assert_eq!(req.threshold, 0.3);
        assert_eq!(req.policy, SelectionPolicy::All);
        assert_eq!(req.top_k, Some(5));
        assert_eq!(req.timeout, Some(Duration::from_secs(1)));
        assert!(req.with_estimates);
        assert_eq!(req.stale_mode, StaleMode::Error);
    }

    #[test]
    fn response_helpers() {
        let resp = SearchResponse {
            hits: Vec::new(),
            estimates: Vec::new(),
            per_engine_stats: vec![
                EngineDispatchStats {
                    engine: "a".into(),
                    hits: 2,
                    seconds: 0.01,
                    outcome: DispatchOutcome::Completed,
                    error: None,
                },
                EngineDispatchStats {
                    engine: "b".into(),
                    hits: 0,
                    seconds: 0.0,
                    outcome: DispatchOutcome::TimedOut,
                    error: None,
                },
            ],
            trace: None,
            served_from: None,
        };
        assert_eq!(resp.selected(), vec!["a".to_string(), "b".to_string()]);
        assert!(!resp.is_complete());
    }
}
