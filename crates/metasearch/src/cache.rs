//! Broker-side query cache: epoch-keyed, sharded, byte-budgeted.
//!
//! Real metasearch query streams are heavily Zipfian — a small set of
//! hot queries dominates — yet without a cache every request re-analyzes
//! the text, re-translates it into every engine's term space, and
//! re-estimates every representative even when nothing changed since the
//! identical request a moment ago. The [`QueryCache`] memoizes the three
//! expensive artifacts of the request pipeline as separate **tiers**:
//!
//! 1. [`CacheTier::Analysis`] — the [`SharedAnalysis`] of a query text
//!    (threshold- and policy-free, so threshold sweeps share it);
//! 2. [`CacheTier::Plan`] — a full [`QueryPlan`] for
//!    `(query, threshold, policy)`;
//! 3. [`CacheTier::Results`] — the merged hits + accounting of a
//!    **complete** execution (every selected engine answered).
//!
//! # Key anatomy and invalidation
//!
//! Every [`CacheKey`] embeds the **registry epoch** the value was
//! computed at. The epoch is the sum of the per-shard epochs, bumped
//! under the owning shard's write lock by *every* lifecycle event —
//! registration, representative refresh/update, engine replacement,
//! push invalidation — so any change anywhere in the registry moves the
//! epoch, every lookup made after it misses, and a stale entry can
//! never be served. This is the same mechanism that makes an
//! outstanding [`QueryPlan`] detectably stale; the cache adds no second
//! source of truth. The PR 5 mid-replacement window is covered too:
//! `replace_engine` bumps the epoch at the same instant it swaps the
//! collection, so plans/results cached against the sidelined engine are
//! unreachable from the first post-replacement lookup.
//!
//! Epoch-stale entries are additionally dropped **eagerly**: the broker
//! calls [`QueryCache::purge_stale`] from every lifecycle path
//! (`apply_invalidation`, `replace_engine`, refresh, registration), so
//! dead entries stop occupying the byte budget instead of waiting for
//! eviction to find them. Counted by `broker_cache_stale_evictions_total`.
//!
//! Keys compare by full structural equality (tier, query text, epoch,
//! threshold bits, policy, response shape) — the 64-bit
//! [`CacheKey::fingerprint`] only routes to a shard and seeds the hash
//! map, so a fingerprint collision can never serve the wrong value.
//!
//! # Admission and eviction
//!
//! Two scan-resistant policies, selected by [`CachePolicy`]:
//!
//! * **Segmented LRU** (default): a probationary and a protected
//!   segment. New entries start probationary; a hit promotes to
//!   protected; when protected outgrows its share (80% of the budget)
//!   its LRU tail demotes back to probationary, and eviction always
//!   consumes the probationary tail first. One-hit wonders from a cold
//!   scan never displace the hot set.
//! * **S3-FIFO**: a small (10%) and a main (90%) FIFO plus a ghost list
//!   of recently evicted fingerprints. Small-queue victims with no hits
//!   are evicted to the ghost; re-arrivals seen in the ghost are
//!   admitted straight to main; main victims with hits are reinserted
//!   with decayed frequency.
//!
//! Both policies account approximate resident bytes per entry and evict
//! until the configured budget (`BrokerBuilder::cache_bytes`) holds.

use crate::broker::{EngineEstimate, MergedHit};
use crate::plan::{QueryPlan, SharedAnalysis};
use crate::request::{EngineDispatchStats, SearchRequest};
use crate::selection::SelectionPolicy;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// FNV-1a (same constants as the registry's shard router, so the whole
/// broker fingerprints strings one way).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Number of independently locked cache shards. Fixed: cache contention
/// is per-query hashing, unrelated to the registry's shard count.
const CACHE_SHARDS: usize = 8;

/// Fraction of the budget the segmented-LRU protected segment may hold.
const PROTECTED_SHARE: f64 = 0.8;

/// Fraction of the budget the S3-FIFO small queue may hold.
const SMALL_SHARE: f64 = 0.1;

/// Instrument handles cached once per process.
struct CacheMetrics {
    hits: Arc<seu_obs::Counter>,
    misses: Arc<seu_obs::Counter>,
    stale_evictions: Arc<seu_obs::Counter>,
    bytes_resident: Arc<seu_obs::Gauge>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: seu_obs::counter("broker_cache_hits_total"),
        misses: seu_obs::counter("broker_cache_misses_total"),
        stale_evictions: seu_obs::counter("broker_cache_stale_evictions_total"),
        bytes_resident: seu_obs::gauge("broker_cache_bytes_resident"),
    })
}

/// Forces creation of the cache's instruments so expositions include the
/// whole `broker_cache_*` family even before the first lookup.
pub fn register_metrics() {
    let _ = cache_metrics();
}

/// Admission/eviction policy for the [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Probationary + protected segments; hits promote, eviction takes
    /// the probationary LRU tail (the default).
    #[default]
    SegmentedLru,
    /// Small/main FIFO queues with a ghost list of evicted fingerprints.
    S3Fifo,
}

impl CachePolicy {
    /// Stable lower-snake name (used in `/healthz` and reports).
    pub fn name(&self) -> &'static str {
        match self {
            CachePolicy::SegmentedLru => "segmented_lru",
            CachePolicy::S3Fifo => "s3_fifo",
        }
    }
}

/// Per-request cache behavior, set on the [`SearchRequest`] builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Serve from the cache and populate it (the default).
    #[default]
    ReadWrite,
    /// Serve from the cache but never insert (e.g. probes that must not
    /// disturb the resident set).
    ReadOnly,
    /// Ignore the cache entirely — the forced-cold path benchmarks and
    /// conformance tests use (`--no-cache`).
    Bypass,
}

impl CacheMode {
    /// Whether lookups may be served from the cache.
    pub fn reads(&self) -> bool {
        !matches!(self, CacheMode::Bypass)
    }

    /// Whether computed values may be inserted.
    pub fn writes(&self) -> bool {
        matches!(self, CacheMode::ReadWrite)
    }
}

/// Which tier of the cache served (part of) a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// Only the query analysis was reused; the plan was rebuilt.
    Analysis,
    /// A cached plan was dispatched.
    Plan,
    /// The merged response itself was served without dispatching.
    Results,
}

impl CacheTier {
    /// Stable lower-snake name (used in the HTTP `served_from` field).
    pub fn name(&self) -> &'static str {
        match self {
            CacheTier::Analysis => "analysis",
            CacheTier::Plan => "plan",
            CacheTier::Results => "results",
        }
    }
}

/// The full identity of a cached value. Equality is structural over
/// every field; [`CacheKey::fingerprint`] is only a router.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tier: CacheTier,
    query: Arc<str>,
    epoch: u64,
    /// `f64::to_bits` of the threshold (0 for the analysis tier, which
    /// is threshold-free).
    threshold_bits: u64,
    /// Selection-policy discriminant (0 for the analysis tier).
    policy_tag: u8,
    /// Policy parameter (`k`, or `to_bits` of the floor; 0 otherwise).
    policy_bits: u64,
    /// Result cap for the results tier (`u64::MAX` = uncapped; 0 for
    /// the other tiers, which are shape-free).
    top_k: u64,
    /// Whether the cached response carries estimates (results tier).
    with_estimates: bool,
}

fn policy_key(policy: SelectionPolicy) -> (u8, u64) {
    match policy {
        SelectionPolicy::All => (0, 0),
        SelectionPolicy::EstimatedUseful => (1, 0),
        SelectionPolicy::TopK(k) => (2, k as u64),
        SelectionPolicy::MinNoDoc(min) => (3, min.to_bits()),
    }
}

impl CacheKey {
    /// Key for the analysis of `query` at a registry epoch. Analysis
    /// depends only on the registered analyzer configurations and the
    /// global vocabulary — both epoch-stamped — so no other request
    /// field participates.
    pub fn analysis(query: &str, epoch: u64) -> CacheKey {
        CacheKey {
            tier: CacheTier::Analysis,
            query: Arc::from(query),
            epoch,
            threshold_bits: 0,
            policy_tag: 0,
            policy_bits: 0,
            top_k: 0,
            with_estimates: false,
        }
    }

    /// Key for a request's plan: `(query, epoch, threshold, policy)`.
    /// Response-shape fields (`top_k`, `with_estimates`) don't
    /// participate — the plan is shape-free.
    pub fn plan(req: &SearchRequest, epoch: u64) -> CacheKey {
        let (policy_tag, policy_bits) = policy_key(req.policy);
        CacheKey {
            tier: CacheTier::Plan,
            query: Arc::from(req.query.as_str()),
            epoch,
            threshold_bits: req.threshold.to_bits(),
            policy_tag,
            policy_bits,
            top_k: 0,
            with_estimates: false,
        }
    }

    /// Key for a request's merged response: the plan key plus the
    /// response shape (`top_k`, `with_estimates`). The dispatch timeout
    /// doesn't participate: only complete responses are cached, and a
    /// complete response satisfies any budget.
    pub fn results(req: &SearchRequest, epoch: u64) -> CacheKey {
        let (policy_tag, policy_bits) = policy_key(req.policy);
        CacheKey {
            tier: CacheTier::Results,
            query: Arc::from(req.query.as_str()),
            epoch,
            threshold_bits: req.threshold.to_bits(),
            policy_tag,
            policy_bits,
            top_k: req.top_k.map(|k| k as u64).unwrap_or(u64::MAX),
            with_estimates: req.with_estimates,
        }
    }

    /// The registry epoch the key was made at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// 64-bit FNV-1a over every field. Routes the key to a cache shard
    /// and buckets the shard's map; never trusted for identity.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut byte = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        byte(match self.tier {
            CacheTier::Analysis => 1,
            CacheTier::Plan => 2,
            CacheTier::Results => 3,
        });
        for b in self.query.as_bytes() {
            byte(*b);
        }
        // Field separator: "ab" + threshold x must not alias "a" +
        // whatever follows from "b…".
        byte(0xff);
        for v in [
            self.epoch,
            self.threshold_bits,
            self.policy_bits,
            self.top_k,
        ] {
            for b in v.to_le_bytes() {
                byte(b);
            }
        }
        byte(self.policy_tag);
        byte(self.with_estimates as u8);
        h
    }
}

/// A cached merged response: everything [`SearchResponse`] carries
/// except the trace (never cached — `explain` bypasses) and the
/// `served_from` stamp (assigned at serve time).
///
/// [`SearchResponse`]: crate::SearchResponse
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// Merged hits, exactly as the cold execution produced them.
    pub hits: Vec<MergedHit>,
    /// Per-engine estimates (empty unless the request asked for them —
    /// part of the key, so shapes never mix).
    pub estimates: Vec<EngineEstimate>,
    /// The cold execution's dispatch accounting. `seconds` are the
    /// original run's; a served hit did not re-dispatch.
    pub per_engine_stats: Vec<EngineDispatchStats>,
}

/// A value in the cache, tagged by tier.
#[derive(Debug, Clone)]
pub enum CachedValue {
    /// A shared query analysis.
    Analysis(Arc<SharedAnalysis>),
    /// A full query plan.
    Plan(Arc<QueryPlan>),
    /// A complete merged response.
    Results(Arc<CachedResponse>),
}

impl CachedValue {
    /// Approximate resident bytes (payload vectors; `Arc`-shared
    /// representatives and engine handles are not attributed to the
    /// cache — they stay resident with the registry regardless).
    fn cost(&self, key: &CacheKey) -> usize {
        let base = key.query.len() + 96;
        base + match self {
            CachedValue::Analysis(a) => a
                .per_config
                .iter()
                .map(|(_, tf)| 16 + tf.len() * 8)
                .sum::<usize>(),
            CachedValue::Plan(p) => {
                p.selected.len() * 8
                    + p.engines
                        .iter()
                        .map(|e| e.name.len() + e.query().len() * 16 + 96)
                        .sum::<usize>()
            }
            CachedValue::Results(r) => {
                r.hits
                    .iter()
                    .map(|h| h.engine.len() + h.doc.len() + 24)
                    .sum::<usize>()
                    + r.estimates.len() * 40
                    + r.per_engine_stats
                        .iter()
                        .map(|s| s.engine.len() + 48)
                        .sum::<usize>()
            }
        }
    }
}

/// Live counters for one cache instance (the process-global
/// `broker_cache_*` counters sum across instances; `/healthz` reports
/// these per-broker numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheStats {
    /// The configured policy.
    pub policy: CachePolicy,
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Approximate bytes currently resident.
    pub bytes_resident: u64,
    /// Entries currently resident (all tiers).
    pub entries: u64,
    /// Lookups served.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped eagerly because their epoch went stale.
    pub stale_evictions: u64,
}

impl CacheStats {
    /// Hit rate over all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    value: CachedValue,
    bytes: usize,
    /// Queue-position stamp: a queue item is current only if its stamp
    /// matches (promotion/demotion re-push under a fresh stamp, lazily
    /// invalidating old positions).
    stamp: u64,
    /// Segmented-LRU: protected segment; S3-FIFO: main queue.
    in_main: bool,
    /// S3-FIFO access frequency, capped at 3.
    freq: u8,
}

#[derive(Default)]
struct CacheShard {
    map: HashMap<CacheKey, CacheEntry>,
    /// Probationary (SLRU) / small (S3-FIFO) queue, lazily pruned.
    small: VecDeque<(CacheKey, u64)>,
    /// Protected (SLRU) / main (S3-FIFO) queue, lazily pruned.
    main: VecDeque<(CacheKey, u64)>,
    /// S3-FIFO ghost: fingerprints of recent small-queue evictions.
    ghost: VecDeque<u64>,
    ghost_set: HashSet<u64>,
    bytes: usize,
    main_bytes: usize,
    stamp: u64,
}

impl CacheShard {
    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Whether a queue item still names the entry's current position.
    fn current<'a>(
        map: &'a HashMap<CacheKey, CacheEntry>,
        key: &CacheKey,
        stamp: u64,
    ) -> Option<&'a CacheEntry> {
        map.get(key).filter(|e| e.stamp == stamp)
    }

    fn remove(&mut self, key: &CacheKey) -> Option<CacheEntry> {
        let e = self.map.remove(key)?;
        self.bytes -= e.bytes;
        if e.in_main {
            self.main_bytes -= e.bytes;
        }
        Some(e)
    }

    fn touch_slru(&mut self, key: &CacheKey) {
        let stamp = self.next_stamp();
        let Some(e) = self.map.get_mut(key) else {
            return;
        };
        e.stamp = stamp;
        if !e.in_main {
            e.in_main = true;
            self.main_bytes += e.bytes;
        }
        self.main.push_back((key.clone(), stamp));
    }

    fn touch_s3(&mut self, key: &CacheKey) {
        if let Some(e) = self.map.get_mut(key) {
            e.freq = (e.freq + 1).min(3);
        }
    }

    fn insert(&mut self, policy: CachePolicy, key: CacheKey, value: CachedValue, budget: usize) {
        let bytes = value.cost(&key);
        if bytes > budget {
            // Larger than the whole shard budget: inserting would evict
            // everything and then itself. Skip.
            return;
        }
        if let Some(old) = self.remove(&key) {
            // Replacement (e.g. a re-execution after ReadOnly probes):
            // drop the old body first so accounting stays exact.
            drop(old);
        }
        let stamp = self.next_stamp();
        let in_main = match policy {
            CachePolicy::SegmentedLru => false,
            // Ghost-remembered keys skip the small queue.
            CachePolicy::S3Fifo => self.ghost_set.contains(&key.fingerprint()),
        };
        if in_main {
            self.main_bytes += bytes;
            self.main.push_back((key.clone(), stamp));
        } else {
            self.small.push_back((key.clone(), stamp));
        }
        self.bytes += bytes;
        self.map.insert(
            key,
            CacheEntry {
                value,
                bytes,
                stamp,
                in_main,
                freq: 0,
            },
        );
        self.evict(policy, budget);
    }

    fn evict(&mut self, policy: CachePolicy, budget: usize) {
        match policy {
            CachePolicy::SegmentedLru => self.evict_slru(budget),
            CachePolicy::S3Fifo => self.evict_s3(budget),
        }
    }

    fn evict_slru(&mut self, budget: usize) {
        let protected_budget = (budget as f64 * PROTECTED_SHARE) as usize;
        while self.bytes > budget {
            // Keep the protected segment within its share by demoting
            // its LRU tail to probationary.
            if self.main_bytes > protected_budget {
                if let Some((key, stamp)) = self.main.pop_front() {
                    if Self::current(&self.map, &key, stamp).is_some() {
                        let fresh = self.next_stamp();
                        let e = self.map.get_mut(&key).expect("current() saw it");
                        e.in_main = false;
                        e.stamp = fresh;
                        self.main_bytes -= e.bytes;
                        self.small.push_back((key, fresh));
                    }
                    continue;
                }
                self.main_bytes = 0;
            }
            // Evict the probationary LRU tail; fall back to protected
            // when probation is empty.
            match self.small.pop_front() {
                Some((key, stamp)) => {
                    if Self::current(&self.map, &key, stamp).is_some() {
                        self.remove(&key);
                    }
                }
                None => match self.main.pop_front() {
                    Some((key, stamp)) => {
                        if Self::current(&self.map, &key, stamp).is_some() {
                            self.remove(&key);
                        }
                    }
                    None => break,
                },
            }
        }
    }

    fn evict_s3(&mut self, budget: usize) {
        let small_budget = (budget as f64 * SMALL_SHARE) as usize;
        let small_bytes = |s: &Self| s.bytes - s.main_bytes;
        while self.bytes > budget {
            if small_bytes(self) > small_budget || self.main.is_empty() {
                match self.small.pop_front() {
                    Some((key, stamp)) => {
                        if Self::current(&self.map, &key, stamp).is_none() {
                            continue;
                        }
                        if self.map[&key].freq > 0 {
                            // Seen again while probationary: promote.
                            let fresh = self.next_stamp();
                            let e = self.map.get_mut(&key).expect("checked");
                            e.in_main = true;
                            e.freq = 0;
                            e.stamp = fresh;
                            self.main_bytes += e.bytes;
                            self.main.push_back((key, fresh));
                        } else {
                            self.ghost_insert(key.fingerprint());
                            self.remove(&key);
                        }
                    }
                    None if self.main.is_empty() => break,
                    None => {}
                }
            } else {
                match self.main.pop_front() {
                    Some((key, stamp)) => {
                        if Self::current(&self.map, &key, stamp).is_none() {
                            continue;
                        }
                        if self.map[&key].freq > 0 {
                            // Still hot: second chance with decayed
                            // frequency (strictly decreasing, so the
                            // loop terminates).
                            let fresh = self.next_stamp();
                            let e = self.map.get_mut(&key).expect("checked");
                            e.freq -= 1;
                            e.stamp = fresh;
                            self.main.push_back((key, fresh));
                        } else {
                            self.remove(&key);
                        }
                    }
                    None => break,
                }
            }
        }
    }

    fn ghost_insert(&mut self, fp: u64) {
        if self.ghost_set.insert(fp) {
            self.ghost.push_back(fp);
        }
        // Bound the ghost to roughly the working set it shadows.
        let cap = (self.map.len() * 2).max(64);
        while self.ghost.len() > cap {
            if let Some(old) = self.ghost.pop_front() {
                self.ghost_set.remove(&old);
            }
        }
    }
}

/// The broker's query cache. See the module docs for the design;
/// construction happens through `BrokerBuilder::cache_bytes` /
/// `cache_policy`.
pub struct QueryCache {
    shards: Vec<Mutex<CacheShard>>,
    policy: CachePolicy,
    budget: usize,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_evictions: AtomicU64,
    /// Last resident-bytes figure pushed to the process-global gauge;
    /// deltas against it keep several live brokers summing correctly.
    gauge_published: AtomicU64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("QueryCache")
            .field("policy", &s.policy)
            .field("budget_bytes", &s.budget_bytes)
            .field("bytes_resident", &s.bytes_resident)
            .field("entries", &s.entries)
            .finish()
    }
}

impl QueryCache {
    /// A cache with `budget` approximate resident bytes, split evenly
    /// across the internal shards.
    pub fn new(budget: usize, policy: CachePolicy) -> QueryCache {
        QueryCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            policy,
            budget,
            shard_budget: (budget / CACHE_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            gauge_published: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<CacheShard> {
        &self.shards[(key.fingerprint() % CACHE_SHARDS as u64) as usize]
    }

    /// Looks up a key, updating recency/frequency state on hit. Counts
    /// into both the process-global counters and this instance's stats.
    pub fn get(&self, key: &CacheKey) -> Option<CachedValue> {
        let m = cache_metrics();
        let mut shard = self.shard(key).lock();
        let value = shard.map.get(key).map(|e| e.value.clone());
        match value {
            Some(v) => {
                match self.policy {
                    CachePolicy::SegmentedLru => shard.touch_slru(key),
                    CachePolicy::S3Fifo => shard.touch_s3(key),
                }
                drop(shard);
                m.hits.inc();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                m.misses.inc();
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value, evicting per the policy until the budget holds.
    pub fn insert(&self, key: CacheKey, value: CachedValue) {
        {
            let mut shard = self.shard(&key).lock();
            shard.insert(self.policy, key, value, self.shard_budget);
        }
        self.publish_gauge();
    }

    /// Eagerly drops every entry whose epoch differs from
    /// `current_epoch`. Keys embed their epoch, so such entries can
    /// never be served again — this only reclaims their budget early.
    /// Called by the broker from every lifecycle path that bumps the
    /// registry epoch.
    pub fn purge_stale(&self, current_epoch: u64) {
        let m = cache_metrics();
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let stale: Vec<CacheKey> = shard
                .map
                .keys()
                .filter(|k| k.epoch != current_epoch)
                .cloned()
                .collect();
            dropped += stale.len() as u64;
            for key in stale {
                shard.remove(&key);
            }
        }
        if dropped > 0 {
            m.stale_evictions.add(dropped);
            self.stale_evictions.fetch_add(dropped, Ordering::Relaxed);
        }
        self.publish_gauge();
    }

    /// This instance's live stats (per-broker view; `/healthz` exposes
    /// them).
    pub fn stats(&self) -> CacheStats {
        let mut bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            bytes += shard.bytes as u64;
            entries += shard.map.len() as u64;
        }
        CacheStats {
            policy: self.policy,
            budget_bytes: self.budget as u64,
            bytes_resident: bytes,
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
        }
    }

    /// Re-publishes resident bytes to the process-global gauge as a
    /// delta against what this instance last reported (several live
    /// brokers sum correctly; `Drop` retracts the remainder).
    fn publish_gauge(&self) {
        let bytes: u64 = self.shards.iter().map(|s| s.lock().bytes as u64).sum();
        let prev = self.gauge_published.swap(bytes, Ordering::SeqCst);
        cache_metrics()
            .bytes_resident
            .add(bytes as f64 - prev as f64);
    }
}

impl Drop for QueryCache {
    fn drop(&mut self) {
        let published = self.gauge_published.swap(0, Ordering::SeqCst);
        cache_metrics().bytes_resident.add(-(published as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(n_hits: usize) -> CachedValue {
        CachedValue::Results(Arc::new(CachedResponse {
            hits: (0..n_hits)
                .map(|i| MergedHit {
                    engine: "e".into(),
                    doc: format!("doc{i}"),
                    sim: 0.5,
                })
                .collect(),
            estimates: Vec::new(),
            per_engine_stats: Vec::new(),
        }))
    }

    fn key(q: &str, epoch: u64, t: f64) -> CacheKey {
        CacheKey::results(
            &SearchRequest::new(q)
                .threshold(t)
                .policy(SelectionPolicy::All),
            epoch,
        )
    }

    #[test]
    fn mode_gates() {
        assert!(CacheMode::ReadWrite.reads() && CacheMode::ReadWrite.writes());
        assert!(CacheMode::ReadOnly.reads() && !CacheMode::ReadOnly.writes());
        assert!(!CacheMode::Bypass.reads() && !CacheMode::Bypass.writes());
    }

    #[test]
    fn get_after_insert_roundtrips_per_policy() {
        for policy in [CachePolicy::SegmentedLru, CachePolicy::S3Fifo] {
            let c = QueryCache::new(1 << 20, policy);
            assert!(c.get(&key("soup", 1, 0.2)).is_none());
            c.insert(key("soup", 1, 0.2), value(3));
            match c.get(&key("soup", 1, 0.2)) {
                Some(CachedValue::Results(r)) => assert_eq!(r.hits.len(), 3),
                other => panic!("{policy:?}: {other:?}"),
            }
            let s = c.stats();
            assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
            assert!(s.bytes_resident > 0);
        }
    }

    #[test]
    fn distinct_epochs_thresholds_and_shapes_do_not_alias() {
        let c = QueryCache::new(1 << 20, CachePolicy::SegmentedLru);
        c.insert(key("soup", 1, 0.2), value(1));
        assert!(c.get(&key("soup", 2, 0.2)).is_none(), "epoch aliased");
        assert!(c.get(&key("soup", 1, 0.3)).is_none(), "threshold aliased");
        assert!(c.get(&key("stew", 1, 0.2)).is_none(), "query aliased");
        let req = SearchRequest::new("soup")
            .threshold(0.2)
            .policy(SelectionPolicy::All);
        assert!(
            c.get(&CacheKey::results(&req.clone().top_k(5), 1))
                .is_none(),
            "top_k aliased"
        );
        assert!(
            c.get(&CacheKey::results(&req.with_estimates(true), 1))
                .is_none(),
            "with_estimates aliased"
        );
        assert!(c
            .get(&CacheKey::plan(&SearchRequest::new("soup"), 1))
            .is_none());
    }

    #[test]
    fn purge_stale_drops_only_old_epochs() {
        let c = QueryCache::new(1 << 20, CachePolicy::SegmentedLru);
        c.insert(key("a", 1, 0.0), value(1));
        c.insert(key("b", 2, 0.0), value(1));
        c.purge_stale(2);
        assert!(c.get(&key("a", 1, 0.0)).is_none());
        assert!(c.get(&key("b", 2, 0.0)).is_some());
        let s = c.stats();
        assert_eq!(s.stale_evictions, 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn byte_budget_is_enforced() {
        for policy in [CachePolicy::SegmentedLru, CachePolicy::S3Fifo] {
            // Small budget; all keys land where they land — the shard
            // budget still bounds each shard.
            let c = QueryCache::new(8 << 10, policy);
            for i in 0..512 {
                c.insert(key(&format!("query number {i}"), 1, 0.0), value(8));
            }
            let s = c.stats();
            assert!(
                s.bytes_resident <= 8 << 10,
                "{policy:?}: {} resident > budget",
                s.bytes_resident
            );
            assert!(s.entries > 0, "{policy:?}: everything evicted");
        }
    }

    #[test]
    fn slru_hits_protect_hot_entries_from_a_scan() {
        let c = QueryCache::new(4 << 10, CachePolicy::SegmentedLru);
        c.insert(key("hot", 1, 0.0), value(2));
        for _ in 0..8 {
            assert!(c.get(&key("hot", 1, 0.0)).is_some());
        }
        // A cold scan many times the budget.
        for i in 0..1024 {
            c.insert(key(&format!("cold scan item {i}"), 1, 0.0), value(2));
        }
        assert!(
            c.get(&key("hot", 1, 0.0)).is_some(),
            "hot entry evicted by one-hit wonders"
        );
    }

    #[test]
    fn s3fifo_ghost_readmits_to_main() {
        let c = QueryCache::new(4 << 10, CachePolicy::S3Fifo);
        c.insert(key("comeback", 1, 0.0), value(2));
        // Push it out through the small queue.
        for i in 0..1024 {
            c.insert(key(&format!("flood item {i}"), 1, 0.0), value(2));
        }
        assert!(c.get(&key("comeback", 1, 0.0)).is_none());
        // Re-arrival: the ghost remembers the fingerprint, so it lands
        // in main and survives another small-queue flood.
        c.insert(key("comeback", 1, 0.0), value(2));
        for _ in 0..4 {
            let _ = c.get(&key("comeback", 1, 0.0));
        }
        let mut survived_any = false;
        for i in 0..64 {
            c.insert(key(&format!("second flood {i}"), 1, 0.0), value(2));
            survived_any |= c.get(&key("comeback", 1, 0.0)).is_some();
        }
        assert!(survived_any, "ghost admission never protected the entry");
    }

    #[test]
    fn oversized_entries_are_refused() {
        let c = QueryCache::new(1024, CachePolicy::SegmentedLru);
        c.insert(key("giant", 1, 0.0), value(10_000));
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn fingerprint_separates_structurally_distinct_keys() {
        // The seed of the proptest suite: a handful of adversarial
        // near-miss pairs (shared prefixes, swapped fields).
        let pairs = [
            (key("ab", 1, 0.2), key("a", 1, 0.2)),
            (key("a", 1, 0.2), key("a", 2, 0.2)),
            (key("a", 1, 0.25), key("a", 1, 0.2)),
            (
                CacheKey::plan(&SearchRequest::new("a"), 1),
                CacheKey::analysis("a", 1),
            ),
        ];
        for (a, b) in pairs {
            assert_ne!(a, b);
            assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
        }
    }
}
