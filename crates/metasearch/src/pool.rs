//! A bounded worker pool for the broker's dispatch fan-out.
//!
//! The seed broker spawned one scoped thread per selected engine per
//! query. That is fine for a handful of engines but collapses under
//! production fan-out: a broker fronting hundreds of engines would burn a
//! thread spawn per engine per query, and concurrent queries would
//! multiply unbounded. [`WorkerPool`] fixes the concurrency at
//! construction time: `threads` long-lived workers drain a shared queue,
//! so dispatch cost per query is one channel send per selected engine and
//! peak parallelism never exceeds the configured bound.
//!
//! Failure isolation: jobs run under `catch_unwind`, so a panicking
//! engine neither kills its worker nor poisons the query — the caller
//! sees [`JobStatus::Panicked`] for that job and results from everyone
//! else.
//!
//! Besides per-query dispatch, the pool runs the broker's *shard sweep*
//! fan-out: with a sharded registry, `refresh_if_stale` submits one job
//! per shard through [`WorkerPool::run_collect`], so a slow refresh on
//! one shard never serializes the sweep of the others (and never blocks
//! queries, which only need that one shard's write lock).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Instrument handles cached once per process.
///
/// The gauges are process-global: when several pools coexist (e.g. two
/// brokers in one process), `broker_pool_workers` and
/// `broker_pool_queue_depth` report the *sum* across all of them, not
/// any single pool's value. Each pool therefore adjusts the gauges by
/// deltas (`add`) rather than overwriting them (`set`), and undoes its
/// own contribution when it drops, so the aggregate stays consistent.
struct PoolMetrics {
    workers: Arc<seu_obs::Gauge>,
    queue_depth: Arc<seu_obs::Gauge>,
    jobs: Arc<seu_obs::Counter>,
    job_seconds: Arc<seu_obs::Histogram>,
    queue_wait_seconds: Arc<seu_obs::Histogram>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        workers: seu_obs::gauge("broker_pool_workers"),
        queue_depth: seu_obs::gauge("broker_pool_queue_depth"),
        jobs: seu_obs::counter("broker_pool_jobs_total"),
        job_seconds: seu_obs::histogram("broker_pool_job_seconds"),
        queue_wait_seconds: seu_obs::histogram("broker_pool_queue_wait_seconds"),
    })
}

/// Runs `job` under `catch_unwind`, observing its wall-clock duration
/// into `hist` **exactly once**. The timer is created outside the
/// unwind boundary and stopped explicitly after `catch_unwind` returns:
/// a panicking job unwinds only up to the boundary, so the timer is
/// never dropped mid-unwind (which would record) *and* stopped again
/// afterwards (which would double-count).
fn run_job_timed<T>(
    job: Box<dyn FnOnce() -> T + Send + 'static>,
    hist: &Arc<seu_obs::Histogram>,
) -> Option<T> {
    let timer = hist.start_timer();
    let result = catch_unwind(AssertUnwindSafe(job)).ok();
    timer.stop();
    result
}

/// Forces creation of the pool's instruments so snapshots include the
/// whole family even before the first dispatch.
pub(crate) fn register_metrics() {
    let _ = metrics();
}

/// Concurrency accounting shared between the workers and the pool
/// handle.
#[derive(Debug, Default)]
struct PoolState {
    /// Jobs currently running.
    active: AtomicU64,
    /// High-water mark of `active` — the concurrency-bound witness.
    peak: AtomicU64,
    /// Jobs submitted but not yet picked up by a worker. Mirrors this
    /// pool's contribution to the shared `broker_pool_queue_depth`
    /// gauge, so `Drop` can subtract whatever never drained.
    queued: AtomicU64,
    /// This pool's **own** queue-depth gauge
    /// (`broker_pool_<label>_queue_depth`), present for pools built with
    /// [`WorkerPool::named`]. The shared `broker_pool_queue_depth` gauge
    /// sums every pool in the process, which makes any single pool's
    /// depth unreadable once two pools coexist; a named pool publishes
    /// its exclusive depth here as well.
    own_queue_depth: Option<Arc<seu_obs::Gauge>>,
}

/// The pool can no longer accept jobs: every worker has exited, so a
/// submitted job would never run. Returned by [`WorkerPool::submit`]
/// instead of panicking the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool closed: no workers are alive to run the job")
    }
}

impl std::error::Error for PoolClosed {}

/// How one job submitted through [`WorkerPool::run_collect`] ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus<T> {
    /// The job returned a value.
    Done(T),
    /// The job panicked; the worker survived.
    Panicked,
    /// The job did not report back within the deadline (it may still be
    /// running; its eventual result is discarded).
    TimedOut,
    /// The pool refused the job because no worker was alive to run it
    /// (see [`PoolClosed`]).
    Rejected,
}

impl<T> JobStatus<T> {
    /// The value, if the job completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            JobStatus::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// A fixed-size pool of worker threads draining a shared job queue.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<PoolState>,
    threads: usize,
    /// This pool's own worker-count gauge, for named pools.
    own_workers: Option<Arc<seu_obs::Gauge>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1). The pool's
    /// queue depth and worker count contribute only to the process-wide
    /// sums (`broker_pool_queue_depth`, `broker_pool_workers`); use
    /// [`WorkerPool::named`] when the pool's own depth must stay
    /// readable next to other pools.
    pub fn new(threads: usize) -> Self {
        WorkerPool::build(threads, None)
    }

    /// Spawns `threads` workers and additionally publishes this pool's
    /// **exclusive** gauges under a `label`-suffixed name:
    /// `broker_pool_<label>_workers` and
    /// `broker_pool_<label>_queue_depth`. The process-wide sums keep
    /// every pool's contribution as before; the suffixed family is what
    /// un-aliases one pool from the others when several coexist (e.g.
    /// two brokers in one process).
    ///
    /// `label` should be a Prometheus-safe name fragment
    /// (`[a-z0-9_]+`).
    pub fn named(label: &str, threads: usize) -> Self {
        WorkerPool::build(threads, Some(label))
    }

    fn build(threads: usize, label: Option<&str>) -> Self {
        let threads = threads.max(1);
        metrics().workers.add(threads as f64);
        let own_workers = label.map(|l| seu_obs::gauge(&format!("broker_pool_{l}_workers")));
        if let Some(g) = &own_workers {
            g.add(threads as f64);
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let state = Arc::new(PoolState {
            own_queue_depth: label.map(|l| seu_obs::gauge(&format!("broker_pool_{l}_queue_depth"))),
            ..PoolState::default()
        });
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&rx, &state))
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            state,
            threads,
            own_workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The largest number of jobs ever observed running at once — by
    /// construction at most [`WorkerPool::threads`].
    pub fn peak_active(&self) -> u64 {
        self.state.peak.load(Ordering::SeqCst)
    }

    /// Enqueues a fire-and-forget job. Errs with [`PoolClosed`] —
    /// instead of panicking — if every worker has exited and the job
    /// could never run.
    pub fn submit(&self, job: Job) -> Result<(), PoolClosed> {
        let m = metrics();
        m.jobs.inc();
        m.queue_depth.add(1.0);
        if let Some(g) = &self.state.own_queue_depth {
            g.add(1.0);
        }
        self.state.queued.fetch_add(1, Ordering::SeqCst);
        let sent = self
            .tx
            .as_ref()
            .expect("pool sender lives until drop")
            .send(job);
        if sent.is_err() {
            // The receiver is gone: every worker exited. Undo the queue
            // accounting for the job that never entered the queue.
            m.queue_depth.add(-1.0);
            if let Some(g) = &self.state.own_queue_depth {
                g.add(-1.0);
            }
            self.state.queued.fetch_sub(1, Ordering::SeqCst);
            return Err(PoolClosed);
        }
        Ok(())
    }

    /// Runs every job on the pool and collects their results in input
    /// order. Panicking jobs yield [`JobStatus::Panicked`]; jobs that
    /// miss the `timeout` deadline (measured across the whole batch)
    /// yield [`JobStatus::TimedOut`]; jobs the pool could not accept
    /// (every worker dead) yield [`JobStatus::Rejected`].
    pub fn run_collect<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        timeout: Option<Duration>,
    ) -> Vec<JobStatus<T>> {
        let n = jobs.len();
        let deadline = timeout.map(|t| Instant::now() + t);
        let (tx, rx) = channel::<(usize, Option<T>)>();
        let mut rejected: Vec<usize> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let enqueued = Instant::now();
            let submitted = self.submit(Box::new(move || {
                let m = metrics();
                m.queue_wait_seconds
                    .observe(enqueued.elapsed().as_secs_f64());
                let result = run_job_timed(job, &m.job_seconds);
                let _ = tx.send((i, result));
            }));
            if submitted.is_err() {
                rejected.push(i);
            }
        }
        drop(tx);

        let mut out: Vec<JobStatus<T>> = (0..n).map(|_| JobStatus::TimedOut).collect();
        for &i in &rejected {
            out[i] = JobStatus::Rejected;
        }
        let n = n - rejected.len();
        let mut received = 0usize;
        while received < n {
            let message = match deadline {
                None => rx.recv().ok(),
                Some(deadline) => {
                    let now = Instant::now();
                    let Some(budget) = deadline.checked_duration_since(now) else {
                        break;
                    };
                    match rx.recv_timeout(budget) {
                        Ok(m) => Some(m),
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            None
                        }
                    }
                }
            };
            let Some((i, result)) = message else { break };
            out[i] = match result {
                Some(v) => JobStatus::Done(v),
                None => JobStatus::Panicked,
            };
            received += 1;
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker loop once the queue
        // drains.
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers normally drain the queue before exiting, but if they
        // died early any still-queued job was never dequeued — subtract
        // this pool's residual contribution so the process-global gauge
        // does not drift upward across pool lifetimes.
        let leaked = self.state.queued.swap(0, Ordering::SeqCst);
        let m = metrics();
        if leaked > 0 {
            m.queue_depth.add(-(leaked as f64));
            if let Some(g) = &self.state.own_queue_depth {
                g.add(-(leaked as f64));
            }
        }
        // Remove this pool's workers from the shared gauge (other pools'
        // workers stay counted) and from its own, if named.
        m.workers.add(-(self.threads as f64));
        if let Some(g) = &self.own_workers {
            g.add(-(self.threads as f64));
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, state: &PoolState) {
    loop {
        // Take the lock only to receive, never while running a job, so
        // one slow engine cannot serialize the whole pool. A poisoned
        // lock (a sibling worker panicked while holding it) is
        // recovered, not fatal: the receiver itself is still sound, and
        // exiting here would silently shrink the pool until `submit`
        // had no workers left.
        let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
        let Ok(job) = job else { return };
        metrics().queue_depth.add(-1.0);
        if let Some(g) = &state.own_queue_depth {
            g.add(-1.0);
        }
        state.queued.fetch_sub(1, Ordering::SeqCst);
        let active = state.active.fetch_add(1, Ordering::SeqCst) + 1;
        state.peak.fetch_max(active, Ordering::SeqCst);
        let _ = catch_unwind(AssertUnwindSafe(job));
        state.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_jobs_and_collects_in_order() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i: usize| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = pool.run_collect(jobs, None);
        for (i, status) in results.into_iter().enumerate() {
            assert_eq!(status, JobStatus::Done(i * i));
        }
    }

    #[test]
    fn concurrency_never_exceeds_the_worker_count() {
        let pool = WorkerPool::new(4);
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..64)
            .map(|_| {
                let active = Arc::clone(&active);
                let peak = Arc::clone(&peak);
                Box::new(move || {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let results = pool.run_collect(jobs, None);
        assert_eq!(results.len(), 64);
        assert!(results.iter().all(|s| matches!(s, JobStatus::Done(()))));
        let observed = peak.load(Ordering::SeqCst);
        assert!(observed <= 4, "peak concurrency {observed} > 4 workers");
        assert!(pool.peak_active() <= 4);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("engine exploded")),
            Box::new(|| 3),
        ];
        let results = pool.run_collect(jobs, None);
        assert_eq!(results[0], JobStatus::Done(1));
        assert_eq!(results[1], JobStatus::Panicked);
        assert_eq!(results[2], JobStatus::Done(3));
        // The pool still works afterwards.
        let again = pool.run_collect(
            vec![Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>],
            None,
        );
        assert_eq!(again[0], JobStatus::Done(7));
    }

    #[test]
    fn timeout_marks_unfinished_jobs() {
        let pool = WorkerPool::new(1);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(250));
                2
            }),
            Box::new(|| 3),
        ];
        let results = pool.run_collect(jobs, Some(Duration::from_millis(40)));
        assert_eq!(results[0], JobStatus::Done(1));
        assert_eq!(results[1], JobStatus::TimedOut);
        // Job 3 sits behind the sleeper on the single worker.
        assert_eq!(results[2], JobStatus::TimedOut);
    }

    #[test]
    fn named_pools_publish_exclusive_gauges() {
        // Two pools: the process-wide gauge sums them (by design), but
        // each named pool's own family reports only its own workers —
        // the un-aliasing this exists for.
        let a = WorkerPool::named("alias_test_a", 2);
        let b = WorkerPool::named("alias_test_b", 3);
        let snap = seu_obs::global().snapshot();
        assert_eq!(snap.gauges["broker_pool_alias_test_a_workers"], 2.0);
        assert_eq!(snap.gauges["broker_pool_alias_test_b_workers"], 3.0);
        assert_eq!(snap.gauges["broker_pool_alias_test_a_queue_depth"], 0.0);
        drop(a);
        drop(b);
        let snap = seu_obs::global().snapshot();
        assert_eq!(snap.gauges["broker_pool_alias_test_a_workers"], 0.0);
        assert_eq!(snap.gauges["broker_pool_alias_test_b_workers"], 0.0);
    }

    #[test]
    fn panicking_job_records_duration_exactly_once() {
        // Deterministic: a private histogram sees only this job, so the
        // exactly-once property is provable even while sibling tests
        // hammer the global `broker_pool_job_seconds`.
        let hist = Arc::new(seu_obs::Histogram::new());
        let result: Option<u32> = run_job_timed(Box::new(|| panic!("engine exploded")), &hist);
        assert!(result.is_none());
        assert_eq!(hist.count(), 1, "panic unwind must not double-record");

        let ok = run_job_timed(Box::new(|| 5u32), &hist);
        assert_eq!(ok, Some(5));
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn pool_jobs_feed_duration_and_queue_wait_histograms() {
        let job_seconds = seu_obs::histogram("broker_pool_job_seconds");
        let queue_wait = seu_obs::histogram("broker_pool_queue_wait_seconds");
        let before_jobs = job_seconds.count();
        let before_wait = queue_wait.count();
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
        let results = pool.run_collect(jobs, None);
        assert_eq!(results[1], JobStatus::Panicked);
        // Every job (including the panicking one) recorded once.
        assert!(job_seconds.count() >= before_jobs + 3);
        assert!(queue_wait.count() >= before_wait + 3);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let results = pool.run_collect(
            vec![Box::new(|| 42u32) as Box<dyn FnOnce() -> u32 + Send>],
            None,
        );
        assert_eq!(results[0], JobStatus::Done(42));
    }
}
