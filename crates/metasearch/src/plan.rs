//! Query planning: one analysis pass, per-engine query vectors, and the
//! selection decision — everything the broker knows before any engine is
//! contacted.
//!
//! [`Broker::plan`] analyzes the request's query text **once** per
//! distinct analyzer configuration (almost always exactly once) against
//! the broker-global vocabulary, translates the result into each engine's
//! local term space through its registration-time
//! [`TermMap`](seu_engine::TermMap), estimates every engine's usefulness,
//! and applies the selection policy. The resulting [`QueryPlan`] is
//! self-contained — it holds shared handles to the engines and their
//! representatives — so it stays valid even if the registry changes
//! afterwards, and it can be re-estimated at other thresholds without
//! re-analysis ([`Broker::reestimate`]).
//!
//! With a sharded registry the planner visits shards one read lock at a
//! time — never holding two shard locks at once — and then restores
//! exact registration order by each entry's global sequence number, so
//! the plan (and everything order-sensitive downstream of it: selection
//! tie-breaks, merge order) is bit-identical to a flat single-shard
//! broker's. The plan's `epoch` is the broker-global epoch, i.e. the
//! sum of the per-shard epochs read during the same walk.
//!
//! [`Broker::plan`]: crate::Broker::plan
//! [`Broker::reestimate`]: crate::Broker::reestimate

use crate::broker::EngineEstimate;
use crate::registry::EngineHandle;
use crate::selection::SelectionPolicy;
use seu_core::Usefulness;
use seu_engine::{Query, SearchEngine};
use seu_repr::Representative;
use seu_text::AnalyzerConfig;
use std::sync::Arc;

/// The shared analysis of one query text: `(global term id, count)`
/// pairs per distinct analyzer configuration among the registered
/// engines. Produced by [`Broker::analyze`](crate::Broker::analyze).
#[derive(Debug, Clone, Default)]
pub struct SharedAnalysis {
    /// One entry per distinct analyzer configuration, in registration
    /// order of first appearance.
    pub(crate) per_config: Vec<(AnalyzerConfig, Vec<(u32, u32)>)>,
}

impl SharedAnalysis {
    /// The global term frequencies for an analyzer configuration, if an
    /// engine with that configuration was registered when the analysis
    /// ran.
    pub fn tf_for(&self, config: AnalyzerConfig) -> Option<&[(u32, u32)]> {
        self.per_config
            .iter()
            .find(|(c, _)| *c == config)
            .map(|(_, tf)| tf.as_slice())
    }

    /// Number of distinct analyzer configurations analyzed.
    pub fn configs(&self) -> usize {
        self.per_config.len()
    }
}

/// One engine's slice of a [`QueryPlan`]: its translated query vector,
/// its estimate, and shared handles for dispatch and re-estimation.
#[derive(Debug, Clone)]
pub struct PlannedEngine {
    /// Engine name (registration key).
    pub name: String,
    /// Estimated usefulness at the plan's threshold.
    pub usefulness: Usefulness,
    /// The query translated into this engine's term space.
    pub(crate) query: Query,
    /// The engine's representative (for re-estimation).
    pub(crate) repr: Arc<Representative>,
    /// How to reach the engine (for dispatch): in-process or over a
    /// transport.
    pub(crate) handle: EngineHandle,
}

impl PlannedEngine {
    /// The query vector in this engine's local term space.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// A shared handle to the engine itself, when it lives in this
    /// process (`None` for remote engines, which are only reachable
    /// through dispatch).
    pub fn engine(&self) -> Option<&Arc<SearchEngine>> {
        self.handle.local()
    }

    /// Whether this engine is reached over a transport.
    pub fn is_remote(&self) -> bool {
        self.handle.is_remote()
    }
}

/// The broker's decision for one request: per-engine queries and
/// estimates, plus the invocation set the policy chose.
///
/// A plan is self-contained — it holds shared handles to the engines and
/// representatives it was made from, so it stays internally consistent
/// even if the registry changes afterwards. The `epoch` field records
/// the registry state it described: [`Broker::execute_plan`] and
/// [`Broker::try_reestimate`] compare it against the current registry
/// epoch and refuse (or replan) when a representative refresh has made
/// the plan's term translation stale.
///
/// [`Broker::execute_plan`]: crate::Broker::execute_plan
/// [`Broker::try_reestimate`]: crate::Broker::try_reestimate
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The raw query text the plan was made from (kept so a stale plan
    /// can be transparently replanned).
    pub query: String,
    /// The threshold the estimates were computed at.
    pub threshold: f64,
    /// The policy that produced `selected`.
    pub policy: SelectionPolicy,
    /// The broker's registry epoch at planning time.
    pub epoch: u64,
    /// Every registered engine, in registration order.
    pub(crate) engines: Vec<PlannedEngine>,
    /// Indices into `engines`, in invocation order.
    pub selected: Vec<usize>,
}

impl QueryPlan {
    /// Every engine's slice of the plan, in registration order.
    pub fn engines(&self) -> &[PlannedEngine] {
        &self.engines
    }

    /// Number of engines the plan covers.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the plan covers no engines.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The per-engine estimates, in registration order.
    pub fn estimates(&self) -> Vec<EngineEstimate> {
        self.engines
            .iter()
            .map(|e| EngineEstimate {
                engine: e.name.clone(),
                usefulness: e.usefulness,
            })
            .collect()
    }

    /// Names of the selected engines, in invocation order.
    pub fn selected_names(&self) -> Vec<String> {
        self.selected
            .iter()
            .map(|&i| self.engines[i].name.clone())
            .collect()
    }
}
