//! Result merging: combining hit lists from multiple engines.
//!
//! Because every engine scores with the same *global* similarity function
//! (cosine over its own collection statistics), merged ranking by raw
//! similarity is meaningful — the single-database property the paper's
//! usefulness measure is designed around.

use crate::broker::MergedHit;

/// Merges per-engine hit lists into one list sorted by descending
/// similarity (ties: engine registration order, then document name).
pub fn merge_results(mut per_engine: Vec<Vec<MergedHit>>) -> Vec<MergedHit> {
    let mut all: Vec<MergedHit> = per_engine.drain(..).flatten().collect();
    all.sort_by(|a, b| {
        b.sim
            .partial_cmp(&a.sim)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.engine.cmp(&b.engine))
            .then(a.doc.cmp(&b.doc))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(engine: &str, doc: &str, sim: f64) -> MergedHit {
        MergedHit {
            engine: engine.to_string(),
            doc: doc.to_string(),
            sim,
        }
    }

    #[test]
    fn merges_sorted_desc() {
        let merged = merge_results(vec![
            vec![hit("a", "d1", 0.9), hit("a", "d2", 0.2)],
            vec![hit("b", "d3", 0.5)],
        ]);
        let sims: Vec<f64> = merged.iter().map(|h| h.sim).collect();
        assert_eq!(sims, vec![0.9, 0.5, 0.2]);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let m1 = merge_results(vec![vec![hit("b", "x", 0.5)], vec![hit("a", "y", 0.5)]]);
        let m2 = merge_results(vec![vec![hit("a", "y", 0.5)], vec![hit("b", "x", 0.5)]]);
        assert_eq!(m1[0].engine, "a");
        assert_eq!(m1, m2);
    }

    #[test]
    fn empty_input() {
        assert!(merge_results(vec![]).is_empty());
        assert!(merge_results(vec![vec![], vec![]]).is_empty());
    }
}
