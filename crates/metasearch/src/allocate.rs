//! Document allocation: "how many documents to retrieve from each
//! engine".
//!
//! The paper criticizes rank-only selection methods because "a separate
//! method has to be used to convert these measures to the number of
//! documents to retrieve from each search engine". With NoDoc estimates
//! that *respond to the threshold*, allocation is direct: find the global
//! similarity level `T*` at which the engines are expected to jointly
//! hold the `k` requested documents, then ask each engine for its
//! estimated share above `T*`.
//!
//! The level is located by binary search over the estimators' (monotone,
//! step-shaped) NoDoc curves, so this works with *any*
//! [`UsefulnessEstimator`], not only the subrange method.

use crate::broker::Broker;
use crate::plan::QueryPlan;
use crate::registry::EngineHandle;
use crate::request::SearchRequest;
use crate::selection::SelectionPolicy;
use seu_core::UsefulnessEstimator;

/// One engine's slice of a document allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Engine name.
    pub engine: String,
    /// Documents to request from it.
    pub k: u64,
    /// The estimated NoDoc at the chosen global level (pre-rounding).
    pub estimated: f64,
}

impl<E: UsefulnessEstimator + Sync> Broker<E> {
    /// Splits a request for `k_total` documents across the registered
    /// engines according to their estimated usefulness curves.
    ///
    /// Engines with no expected contribution get `k = 0`. If the engines
    /// are not expected to hold `k_total` relevant documents at any
    /// positive similarity, everything they are expected to hold is
    /// allocated (the allocation sums to less than `k_total`).
    pub fn allocate_documents(&self, query_text: &str, k_total: u64) -> Vec<Allocation> {
        let plan = self.plan(
            &SearchRequest::new(query_text).policy(SelectionPolicy::All),
            None,
        );
        self.allocate_planned(&plan, k_total)
    }

    /// [`Broker::allocate_documents`] over an existing [`QueryPlan`]. The
    /// bisection sweeps ~50 thresholds; re-estimating the plan's query
    /// vectors means the query text is analyzed once, not once per probe.
    pub fn allocate_planned(&self, plan: &QueryPlan, k_total: u64) -> Vec<Allocation> {
        if plan.is_empty() || k_total == 0 {
            return plan
                .engines()
                .iter()
                .map(|e| Allocation {
                    engine: e.name.clone(),
                    k: 0,
                    estimated: 0.0,
                })
                .collect();
        }

        let total_at = |t: f64| -> f64 {
            self.reestimate(plan, t)
                .iter()
                .map(|e| e.usefulness.no_doc)
                .sum()
        };

        // Find the highest level t with total(t) >= k by bisection over
        // the monotone non-increasing step function total(·).
        let k = k_total as f64;
        let mut lo = 0.0f64; // total(lo) >= k, if anywhere
        let mut hi = 1.0f64;
        let feasible = total_at(0.0) >= k;
        if feasible {
            for _ in 0..50 {
                let mid = 0.5 * (lo + hi);
                if total_at(mid) >= k {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
        let level = if feasible { lo } else { 0.0 };

        // Per-engine shares at the chosen level. The level sits just
        // below a step of the (discontinuous) total curve, so the shares
        // can jointly exceed the request; scale them down proportionally
        // in that case.
        let estimates = self.reestimate(plan, level);
        let raw: Vec<f64> = estimates.iter().map(|e| e.usefulness.no_doc).collect();
        let total: f64 = raw.iter().sum();
        let target = if total <= 0.0 {
            0
        } else {
            k_total.min(total.ceil() as u64)
        };
        let scale = if total > k { k / total } else { 1.0 };
        let shares: Vec<f64> = raw.iter().map(|&s| s * scale).collect();
        let mut ks: Vec<u64> = shares.iter().map(|&s| s.floor() as u64).collect();

        // Distribute the remaining budget by largest fractional share.
        let assigned: u64 = ks.iter().sum();
        let budget = target.saturating_sub(assigned);
        if budget > 0 {
            let mut order: Vec<usize> = (0..shares.len()).collect();
            order.sort_by(|&a, &b| {
                let fa = shares[a] - shares[a].floor();
                let fb = shares[b] - shares[b].floor();
                fb.partial_cmp(&fa)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for i in order.into_iter().take(budget as usize) {
                if shares[i] > 0.0 {
                    ks[i] += 1;
                }
            }
        }

        estimates
            .into_iter()
            .zip(ks)
            .map(|(e, k)| Allocation {
                engine: e.engine,
                k,
                estimated: e.usefulness.no_doc,
            })
            .collect()
    }

    /// Allocated retrieval: splits the `k_total` budget across engines by
    /// estimated usefulness, fetches each engine's allocated top documents
    /// (max-score pruned), merges by global similarity, and returns at
    /// most `k_total` documents.
    ///
    /// Compared with asking every engine for `k_total` documents and
    /// truncating, this transfers only ~`k_total` documents in total —
    /// the bandwidth argument of the paper's introduction.
    pub fn search_allocated(
        &self,
        query_text: &str,
        k_total: u64,
    ) -> Vec<crate::broker::MergedHit> {
        let plan = self.plan(
            &SearchRequest::new(query_text).policy(SelectionPolicy::All),
            None,
        );
        let allocation = self.allocate_planned(&plan, k_total);
        let per_engine: Vec<Vec<crate::broker::MergedHit>> = plan
            .engines()
            .iter()
            .zip(&allocation)
            .filter(|(_, a)| a.k > 0)
            .map(|(planned, a)| match &planned.handle {
                EngineHandle::Local(engine) => engine
                    .search_top_k_maxscore(planned.query(), a.k as usize)
                    .into_iter()
                    .map(|h| crate::broker::MergedHit {
                        engine: planned.name.clone(),
                        doc: engine.collection().doc(h.doc).name.clone(),
                        sim: h.sim,
                    })
                    .collect(),
                // A remote engine has no max-score pruned top-k call on
                // the wire; ask for everything above the floor and keep
                // its allocated share (results arrive best first). A
                // failed transport contributes nothing, like a failed
                // dispatch.
                EngineHandle::Remote { transport, .. } => transport
                    .search(&plan.query, 0.0, None)
                    .map(|(hits, _spans)| {
                        hits.into_iter()
                            .take(a.k as usize)
                            .map(|h| crate::broker::MergedHit {
                                engine: planned.name.clone(),
                                doc: h.doc,
                                sim: h.sim,
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
                // A restored-but-unattached engine cannot be searched;
                // it contributes nothing, like a failed dispatch.
                EngineHandle::Detached { .. } => Vec::new(),
            })
            .collect();
        let mut merged = crate::merge::merge_results(per_engine);
        merged.truncate(k_total as usize);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_core::SubrangeEstimator;
    use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
    use seu_text::Analyzer;

    fn engine(repeats: usize, filler: &str) -> SearchEngine {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        for i in 0..repeats {
            b.add_document(&format!("hit{i}"), "target topic words here");
        }
        for i in 0..4 {
            b.add_document(&format!("{filler}{i}"), filler);
        }
        SearchEngine::new(b.build())
    }

    fn broker() -> Broker<SubrangeEstimator> {
        let b = Broker::new(SubrangeEstimator::paper_six_subrange());
        b.register("rich", engine(12, "unrelated fluff"));
        b.register("mid", engine(4, "diverse padding"));
        b.register("empty", engine(0, "nothing relevant"));
        b
    }

    #[test]
    fn allocation_favors_richer_engines() {
        let b = broker();
        let alloc = b.allocate_documents("target topic", 10);
        let by = |n: &str| alloc.iter().find(|a| a.engine == n).unwrap().k;
        assert!(by("rich") > by("mid"), "{alloc:?}");
        assert_eq!(by("empty"), 0, "{alloc:?}");
        let total: u64 = alloc.iter().map(|a| a.k).sum();
        assert!(total <= 10);
        assert!(total >= 8, "should nearly fill the budget: {alloc:?}");
    }

    #[test]
    fn infeasible_request_allocates_what_exists() {
        let b = broker();
        let alloc = b.allocate_documents("target topic", 10_000);
        let total: u64 = alloc.iter().map(|a| a.k).sum();
        // 16 documents contain the terms across rich+mid.
        assert!(total <= 24, "{alloc:?}");
        assert!(total >= 10, "{alloc:?}");
    }

    #[test]
    fn zero_budget() {
        let b = broker();
        let alloc = b.allocate_documents("target topic", 0);
        assert!(alloc.iter().all(|a| a.k == 0));
        assert_eq!(alloc.len(), 3);
    }

    #[test]
    fn unknown_query_allocates_nothing() {
        let b = broker();
        let alloc = b.allocate_documents("zebra xylophone", 5);
        assert!(alloc.iter().all(|a| a.k == 0), "{alloc:?}");
    }

    #[test]
    fn allocated_search_returns_merged_budgeted_hits() {
        let b = broker();
        let hits = b.search_allocated("target topic", 8);
        assert!(hits.len() <= 8);
        assert!(hits.len() >= 6, "{hits:?}");
        // Sorted by similarity.
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
        // Hits come from the engines that hold matching documents.
        assert!(hits.iter().all(|h| h.engine != "empty"));
        // Nothing for a query nobody knows.
        assert!(b.search_allocated("zebra", 5).is_empty());
    }

    #[test]
    fn small_budget_goes_to_the_best_engine() {
        let b = broker();
        let alloc = b.allocate_documents("target topic", 1);
        let total: u64 = alloc.iter().map(|a| a.k).sum();
        assert_eq!(total, 1, "{alloc:?}");
        assert_eq!(
            alloc.iter().max_by_key(|a| a.k).unwrap().engine,
            "rich",
            "{alloc:?}"
        );
    }
}
