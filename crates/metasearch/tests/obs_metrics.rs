//! Integration: a full broker round trip populates the expected metric
//! series in the global registry.
//!
//! The test reads counter values before and after (rather than clearing
//! the registry) because instrument handles are cached per process — a
//! cleared registry would silently orphan them for every later test in
//! the binary.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, SelectionPolicy};
use seu_text::Analyzer;

fn engine(docs: &[(&str, &str)]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (name, text) in docs {
        b.add_document(name, text);
    }
    SearchEngine::new(b.build())
}

#[test]
fn broker_search_populates_expected_metrics() {
    let before = seu_obs::global().snapshot();

    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register(
        "cooking",
        engine(&[
            ("d0", "mushroom soup with cream and chives"),
            ("d1", "grilled cheese sandwich with tomato"),
        ]),
    );
    broker.register(
        "astronomy",
        engine(&[
            ("d2", "telescope mirror grinding at home"),
            ("d3", "neutron star merger lights the sky"),
        ]),
    );
    let selected = broker.select("mushroom soup", 0.1, SelectionPolicy::EstimatedUseful);
    assert_eq!(selected, vec!["cooking".to_string()]);
    let hits = broker.search("mushroom soup", 0.1, SelectionPolicy::EstimatedUseful);
    assert!(!hits.is_empty());

    let after = seu_obs::global().snapshot();
    let delta = |name: &str| {
        after.counters.get(name).copied().unwrap_or(0)
            - before.counters.get(name).copied().unwrap_or(0)
    };

    assert_eq!(delta("broker_queries_total"), 1);
    assert_eq!(delta("broker_selects_total"), 1);
    // select() and search() each size up every registered engine.
    assert_eq!(delta("broker_engines_considered_total"), 4);
    assert!(delta("broker_engines_selected_total") >= 2);
    assert!(delta("broker_merge_hits_total") >= 1);
    // One subrange estimate per (cold call, engine): select() sizes up
    // both engines; search() reuses the plan select() cached (same
    // query, threshold, policy, epoch), so no fresh estimator work.
    assert!(delta("estimator_subrange_invocations_total") >= 2);
    assert!(delta("broker_cache_hits_total") >= 1);
    assert!(delta("estimator_poly_expansions_total") >= 1);
    assert!(delta("engine_searches_total") >= 1);
    assert!(delta("engine_docs_scored_total") >= 1);

    let count = |snap: &seu_obs::Snapshot, name: &str| {
        snap.histograms.get(name).map(|h| h.count).unwrap_or(0)
    };
    for hist in [
        "broker_query_latency_seconds",
        "broker_select_latency_seconds",
        "broker_merge_result_size",
    ] {
        assert!(
            count(&after, hist) > count(&before, hist),
            "{hist} got no observation"
        );
        let h = &after.histograms[hist];
        assert!(h.p50.is_some(), "{hist} has no quantiles");
    }
}

#[test]
fn lifecycle_metrics_track_refreshes_and_stale_plans() {
    let before = seu_obs::global().snapshot();

    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register(
        "cooking",
        engine(&[("d0", "mushroom soup with cream and chives")]),
    );

    // Gauges sum across live brokers (other tests run in parallel), so
    // assert on this broker's own contribution being included: the
    // registry gauge moved up by at least this broker's one engine.
    let gauge =
        |snap: &seu_obs::Snapshot, name: &str| snap.gauges.get(name).copied().unwrap_or(0.0);
    let mid = seu_obs::global().snapshot();
    assert!(
        gauge(&mid, "broker_registry_engines") >= gauge(&before, "broker_registry_engines"),
        "registry gauge went backwards across a registration"
    );
    assert!(gauge(&mid, "broker_representative_bytes_resident") > 0.0);

    let plan = broker.plan(&seu_metasearch::SearchRequest::new("soup"), None);
    assert!(broker.refresh_representative("cooking"));
    assert!(broker.try_reestimate(&plan, 0.1, None).is_err());

    let after = seu_obs::global().snapshot();
    let delta = |name: &str| {
        after.counters.get(name).copied().unwrap_or(0)
            - before.counters.get(name).copied().unwrap_or(0)
    };
    assert!(delta("broker_representative_refreshes_total") >= 1);
    assert!(delta("broker_stale_plans_total") >= 1);
}
