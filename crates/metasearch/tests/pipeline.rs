//! Integration: the SearchRequest pipeline against the pre-pipeline
//! semantics, the dispatch concurrency bound, and the analysis-once
//! guarantee.

use seu_core::{SubrangeEstimator, Usefulness, UsefulnessEstimator};
use seu_corpus::many_databases;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{
    merge_results, Broker, MergedHit, Representative, SearchRequest, SelectionPolicy,
};
use seu_text::Analyzer;

fn tiny_engine(topic: &str, n_docs: usize) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for i in 0..n_docs {
        b.add_document(
            &format!("{topic}-{i}"),
            &format!("{topic} document number {i}"),
        );
    }
    SearchEngine::new(b.build())
}

/// Dispatch across 64 engines never runs more searches at once than the
/// configured worker count.
#[test]
fn dispatch_respects_the_worker_bound() {
    let broker = Broker::builder(SubrangeEstimator::paper_six_subrange())
        .worker_threads(4)
        .build();
    for i in 0..64 {
        broker.register(&format!("engine{i}"), tiny_engine("shared topic words", 3));
    }
    let resp = broker.execute(
        &SearchRequest::new("shared topic")
            .threshold(0.0)
            .policy(SelectionPolicy::All),
    );
    assert_eq!(resp.per_engine_stats.len(), 64);
    assert!(resp.is_complete());
    let (threads, peak) = broker.pool_stats();
    assert_eq!(threads, 4);
    assert!(peak >= 1, "dispatch never ran?");
    assert!(
        peak <= 4,
        "peak concurrency {peak} exceeded the 4-worker bound"
    );
}

/// `execute` reproduces the pre-pipeline semantics exactly on the paper's
/// 53-database workload: same estimates, same selection, same merged
/// hits — bit for bit, because the shared analysis path builds the same
/// query vectors `query_from_text` would.
#[test]
fn execute_matches_legacy_semantics_on_the_paper_workload() {
    let dbs = many_databases(7, 6);
    assert_eq!(dbs.len(), 53);

    let estimator = SubrangeEstimator::paper_six_subrange();
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    let mut reference: Vec<(String, SearchEngine)> = Vec::new();
    for (name, collection) in dbs {
        let engine = SearchEngine::new(collection);
        reference.push((name.clone(), engine.clone()));
        broker.register(&name, engine);
    }

    for (query_text, threshold) in [
        ("topic00 topic00term1 topic00term2", 0.2),
        ("topic05term1 topic12term1", 0.1),
        ("topic25term0 background words", 0.05),
        ("completely unknown zebra terms", 0.1),
    ] {
        // Independent reference: per-engine analysis, estimation,
        // selection, retrieval, merge — the seed broker's code path.
        let mut estimates: Vec<Usefulness> = Vec::new();
        for (_, engine) in &reference {
            let repr = Representative::build(engine.collection());
            let query = engine.collection().query_from_text(query_text);
            estimates.push(estimator.estimate(&repr, &query, threshold));
        }
        let selected = SelectionPolicy::EstimatedUseful.select(&estimates);
        let per_engine: Vec<Vec<MergedHit>> = selected
            .iter()
            .map(|&i| {
                let (name, engine) = &reference[i];
                let query = engine.collection().query_from_text(query_text);
                engine
                    .search_threshold(&query, threshold)
                    .into_iter()
                    .map(|h| MergedHit {
                        engine: name.clone(),
                        doc: engine.collection().doc(h.doc).name.clone(),
                        sim: h.sim,
                    })
                    .collect()
            })
            .collect();
        let expected = merge_results(per_engine);

        let req = SearchRequest::new(query_text)
            .threshold(threshold)
            .with_estimates(true);
        let resp = broker.execute(&req);
        assert_eq!(
            resp.estimates
                .iter()
                .map(|e| e.usefulness)
                .collect::<Vec<_>>(),
            estimates,
            "estimates diverged for {query_text:?}"
        );
        assert_eq!(
            resp.selected(),
            selected
                .iter()
                .map(|&i| reference[i].0.clone())
                .collect::<Vec<_>>(),
            "selection diverged for {query_text:?}"
        );
        assert_eq!(resp.hits, expected, "hits diverged for {query_text:?}");
        // The wrappers ride the same pipeline.
        assert_eq!(
            broker.search(query_text, threshold, SelectionPolicy::EstimatedUseful),
            expected
        );
    }
}

/// One query is analyzed once, no matter how many engines are registered.
#[test]
fn query_analysis_runs_once_per_request() {
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    for i in 0..16 {
        broker.register(&format!("engine{i}"), tiny_engine("analysis topic", 2));
    }

    let analyses = |snap: &seu_obs::Snapshot| {
        snap.counters
            .get("broker_query_analyses_total")
            .copied()
            .unwrap_or(0)
    };

    let before = seu_obs::global().snapshot();
    let _ = broker.execute(&SearchRequest::new("analysis topic").policy(SelectionPolicy::All));
    let after = seu_obs::global().snapshot();
    assert_eq!(
        analyses(&after) - analyses(&before),
        1,
        "16 same-config engines should share one analysis pass"
    );

    // The legacy wrappers inherit the guarantee, and the query cache
    // tightens it further: the analysis tier is keyed on (query, epoch)
    // alone, so select() reuses the analysis the execute above cached
    // even at a different threshold/policy, and search() then reuses
    // select()'s whole plan — zero fresh analyses.
    let before = seu_obs::global().snapshot();
    let _ = broker.select("analysis topic", 0.1, SelectionPolicy::EstimatedUseful);
    let _ = broker.search("analysis topic", 0.1, SelectionPolicy::EstimatedUseful);
    let after = seu_obs::global().snapshot();
    assert_eq!(analyses(&after) - analyses(&before), 0);

    // Forcing the cold path restores one analysis pass per request.
    let before = seu_obs::global().snapshot();
    let _ = broker.execute(
        &SearchRequest::new("analysis topic")
            .threshold(0.1)
            .cache(seu_metasearch::CacheMode::Bypass),
    );
    let after = seu_obs::global().snapshot();
    assert_eq!(analyses(&after) - analyses(&before), 1);
}

/// Failure and timeout accounting surfaces in the metrics the response
/// reports.
#[test]
fn timeout_budget_is_counted() {
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    broker.register("solo", tiny_engine("timeout topic", 4));

    let timeouts = |snap: &seu_obs::Snapshot| {
        snap.counters
            .get("broker_engine_timeouts_total")
            .copied()
            .unwrap_or(0)
    };

    let before = seu_obs::global().snapshot();
    let resp = broker.execute(
        &SearchRequest::new("timeout topic")
            .threshold(0.0)
            .policy(SelectionPolicy::All)
            .timeout(std::time::Duration::ZERO),
    );
    let after = seu_obs::global().snapshot();
    assert!(resp.hits.is_empty());
    assert!(!resp.is_complete());
    assert_eq!(timeouts(&after) - timeouts(&before), 1);
}
