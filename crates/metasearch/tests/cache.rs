//! Query-cache integration: cached responses are bit-identical to cold
//! ones, every lifecycle event invalidates (epoch-in-key, never served
//! stale), per-request cache modes behave, the deprecated traced
//! wrappers still forward, and the cache-key fingerprint never collides
//! for distinct request identities.

use seu_core::SubrangeEstimator;
use seu_corpus::many_databases;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, CacheMode, CacheTier, SearchRequest, SelectionPolicy};
use seu_text::Analyzer;

fn engine_from(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("doc{i}"), t);
    }
    SearchEngine::new(b.build())
}

fn two_engine_broker() -> Broker<SubrangeEstimator> {
    let b = Broker::new(SubrangeEstimator::paper_six_subrange());
    b.register(
        "cooking",
        engine_from(&["mushroom soup with cream", "baking sourdough bread"]),
    );
    b.register(
        "databases",
        engine_from(&["relational databases and query planning"]),
    );
    b
}

/// Two responses agree to the last bit: same hit order, `to_bits`-equal
/// similarities and estimates, same selections.
fn assert_bit_identical(
    want: &seu_metasearch::SearchResponse,
    got: &seu_metasearch::SearchResponse,
    ctx: &str,
) {
    assert_eq!(want.hits.len(), got.hits.len(), "{ctx}: hit count");
    for (w, g) in want.hits.iter().zip(&got.hits) {
        assert_eq!((&w.engine, &w.doc), (&g.engine, &g.doc), "{ctx}");
        assert_eq!(w.sim.to_bits(), g.sim.to_bits(), "{ctx}: sim for {}", w.doc);
    }
    assert_eq!(
        want.estimates.len(),
        got.estimates.len(),
        "{ctx}: estimate count"
    );
    for (w, g) in want.estimates.iter().zip(&got.estimates) {
        assert_eq!(w.engine, g.engine, "{ctx}");
        assert_eq!(
            w.usefulness.no_doc.to_bits(),
            g.usefulness.no_doc.to_bits(),
            "{ctx}: NoDoc for {}",
            w.engine
        );
        assert_eq!(
            w.usefulness.avg_sim.to_bits(),
            g.usefulness.avg_sim.to_bits(),
            "{ctx}: AvgSim for {}",
            w.engine
        );
    }
    assert_eq!(want.selected(), got.selected(), "{ctx}");
}

/// The acceptance bar: on the paper's 53-database workload a response
/// served from the results tier is bit-identical to the forced-cold
/// (`Bypass`) execution of the same request.
#[test]
fn cached_responses_are_bit_identical_to_cold_on_the_paper_workload() {
    let broker = Broker::new(SubrangeEstimator::paper_six_subrange());
    for (name, collection) in many_databases(7, 6) {
        broker.register(&name, SearchEngine::new(collection));
    }

    for (query, threshold) in [
        ("topic00 topic00term1 topic00term2", 0.2),
        ("topic05term1 topic12term1", 0.1),
        ("topic25term0 background words", 0.05),
        ("completely unknown zebra terms", 0.1),
    ] {
        let req = SearchRequest::new(query)
            .threshold(threshold)
            .with_estimates(true);

        let cold = broker.execute(&req.clone().cache(CacheMode::Bypass));
        assert_eq!(cold.served_from, None, "{query}: bypass must stay cold");

        // Populate, then serve from the results tier.
        let warm = broker.execute(&req);
        let served = broker.execute(&req);
        assert_eq!(
            served.served_from,
            Some(CacheTier::Results),
            "{query}: repeat must hit the results tier"
        );

        assert_bit_identical(&cold, &warm, query);
        assert_bit_identical(&cold, &served, query);
    }

    let stats = broker.cache_stats().expect("cache is on by default");
    assert!(stats.hits > 0, "{stats:?}");
    assert!(stats.bytes_resident > 0, "{stats:?}");
    assert!(
        stats.bytes_resident <= stats.budget_bytes,
        "resident {} exceeds budget {}",
        stats.bytes_resident,
        stats.budget_bytes
    );
}

/// A representative refresh bumps the registry epoch; the epoch lives
/// in every cache key, so the warm entry must never be served again —
/// and the post-refresh response matches a never-cached broker bit for
/// bit.
#[test]
fn refresh_invalidates_every_cached_tier() {
    let b = two_engine_broker();
    let req = SearchRequest::new("mushroom soup")
        .threshold(0.05)
        .with_estimates(true);

    let _ = b.execute(&req);
    assert_eq!(b.execute(&req).served_from, Some(CacheTier::Results));

    assert!(b.refresh_representative("cooking"));
    let after = b.execute(&req);
    assert_eq!(
        after.served_from, None,
        "epoch bump must force a cold pass through every tier"
    );
    let reference = two_engine_broker();
    // Align the reference registry with the refreshed one.
    assert!(reference.refresh_representative("cooking"));
    assert_bit_identical(
        &reference.execute(&req.clone().cache(CacheMode::Bypass)),
        &after,
        "post-refresh",
    );

    // The eager purge dropped the stale entries rather than letting
    // them age out of the byte budget.
    let stats = b.cache_stats().unwrap();
    assert!(stats.stale_evictions > 0, "{stats:?}");

    // And the cache re-warms at the new epoch.
    assert_eq!(b.execute(&req).served_from, Some(CacheTier::Results));
}

/// `update_representative` is a lifecycle event like any other: pushing
/// a representative (the PR-5 push-invalidation path) must stop the
/// warm entry from being served.
#[test]
fn pushed_representative_update_invalidates() {
    let b = two_engine_broker();
    let req = SearchRequest::new("sourdough bread").threshold(0.05);
    let _ = b.execute(&req);
    assert_eq!(b.execute(&req).served_from, Some(CacheTier::Results));

    let repr = seu_repr::Representative::build(
        engine_from(&["mushroom soup with cream", "baking sourdough bread"]).collection(),
    );
    assert!(b.update_representative("cooking", repr));
    assert_eq!(
        b.execute(&req).served_from,
        None,
        "a pushed representative must invalidate the warm entry"
    );
}

/// The PR-5 mid-replacement window: after `replace_engine` the entry is
/// sidelined (representative and collection disagree) until a refresh.
/// The warm pre-replacement response — which still carries the old
/// engine's hits — must not be served anywhere in that window.
#[test]
fn replacement_window_is_never_served_from_cache() {
    let b = two_engine_broker();
    let req = SearchRequest::new("mushroom soup with cream sourdough")
        .threshold(0.0)
        .policy(SelectionPolicy::All);

    let warm = b.execute(&req);
    assert!(warm.hits.iter().any(|h| h.engine == "cooking"));
    assert_eq!(b.execute(&req).served_from, Some(CacheTier::Results));

    // The replacement has a far smaller vocabulary; mid-window the
    // entry contributes nothing.
    assert!(b.replace_engine("cooking", engine_from(&["soup"])));
    let mid = b.execute(&req);
    assert_eq!(mid.served_from, None, "stale epoch served mid-replacement");
    assert!(
        mid.hits.iter().all(|h| h.engine != "cooking"),
        "sidelined engine leaked cached hits: {:?}",
        mid.hits
    );

    // Reconciling bumps the epoch again: still no stale serve, and the
    // replacement's document is retrievable.
    assert_eq!(b.refresh_if_stale(), vec!["cooking".to_string()]);
    let fresh = b.execute(&req);
    assert_eq!(fresh.served_from, None);
    assert!(
        fresh.hits.iter().any(|h| h.engine == "cooking"),
        "{:?}",
        fresh.hits
    );
    assert_eq!(b.execute(&req).served_from, Some(CacheTier::Results));
}

/// `ReadOnly` may serve but never populates; `Bypass` does neither.
#[test]
fn cache_modes_gate_reads_and_writes() {
    let b = two_engine_broker();
    let req = SearchRequest::new("query planning").threshold(0.05);

    // ReadOnly on a cold cache: nothing to serve, nothing inserted.
    assert_eq!(
        b.execute(&req.clone().cache(CacheMode::ReadOnly))
            .served_from,
        None
    );
    assert_eq!(
        b.execute(&req.clone().cache(CacheMode::ReadOnly))
            .served_from,
        None,
        "ReadOnly must not have populated the cache"
    );
    assert_eq!(b.cache_stats().unwrap().entries, 0);

    // ReadWrite populates; ReadOnly now serves without disturbing it.
    let _ = b.execute(&req);
    assert_eq!(
        b.execute(&req.clone().cache(CacheMode::ReadOnly))
            .served_from,
        Some(CacheTier::Results)
    );

    // Bypass ignores the warm entry but answers identically.
    let bypassed = b.execute(&req.clone().cache(CacheMode::Bypass));
    assert_eq!(bypassed.served_from, None);
    assert_bit_identical(&b.execute(&req), &bypassed, "bypass vs cached");

    // A zero-byte budget disables the cache wholesale.
    let off = Broker::builder(SubrangeEstimator::paper_six_subrange())
        .cache_bytes(0)
        .build();
    off.register("solo", engine_from(&["mushroom soup"]));
    assert!(off.cache_stats().is_none());
    let r = SearchRequest::new("mushroom soup").threshold(0.05);
    let _ = off.execute(&r);
    assert_eq!(off.execute(&r).served_from, None);
}

/// `explain` requests carry a trace of the real pipeline, so they must
/// never be served from (or admitted to) the result cache.
#[test]
fn explain_requests_stay_cold() {
    let b = two_engine_broker();
    let req = SearchRequest::new("mushroom soup").threshold(0.05);
    let _ = b.execute(&req);
    assert_eq!(b.execute(&req).served_from, Some(CacheTier::Results));

    let explained = b.execute(&req.clone().explain(true));
    assert_eq!(explained.served_from, None, "explain must run cold");
    assert!(explained.trace.is_some(), "explain must carry its trace");
}

/// The deprecated traced wrappers forward to the consolidated methods:
/// same plan, same estimates.
#[test]
#[allow(deprecated)]
fn deprecated_traced_wrappers_forward() {
    let b = two_engine_broker();
    let req = SearchRequest::new("relational databases").threshold(0.1);

    let trace = seu_obs::tracer().start_trace("wrapper_test", true);
    let handle = trace.handle();

    let via_wrapper = b.plan_traced(&req, &handle);
    let direct = b.plan(&req, None);
    assert_eq!(via_wrapper.epoch, direct.epoch);
    assert_eq!(via_wrapper.selected_names(), direct.selected_names());

    let w = b.try_reestimate_traced(&direct, 0.2, &handle).unwrap();
    let d = b.try_reestimate(&direct, 0.2, None).unwrap();
    assert_eq!(w.len(), d.len());
    for (a, b) in w.iter().zip(&d) {
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.usefulness.no_doc.to_bits(), b.usefulness.no_doc.to_bits());
    }
}

mod fingerprint_props {
    use proptest::prelude::*;
    use seu_metasearch::{CacheKey, SearchRequest, SelectionPolicy};
    use std::collections::HashMap;

    /// Random but realistic request identities. The vendored proptest
    /// caps tuples at arity 4, so the policy pick, `top_k`, and the
    /// estimate flag are all derived from two integer draws.
    fn requests() -> impl Strategy<Value = SearchRequest> {
        ("[a-z ]{1,24}", 0.0f64..1.0, 0usize..5, 1usize..16).prop_map(
            |(query, threshold, pick, k)| {
                let policy = match pick {
                    0 => SelectionPolicy::All,
                    1 => SelectionPolicy::EstimatedUseful,
                    2 => SelectionPolicy::TopK(k),
                    _ => SelectionPolicy::MinNoDoc(threshold * 0.5),
                };
                let mut req = SearchRequest::new(&query)
                    .threshold(threshold)
                    .policy(policy)
                    .with_estimates(k % 2 == 0);
                if pick == 4 {
                    req = req.top_k(k);
                }
                req
            },
        )
    }

    proptest! {
        /// Identity round-trip: the same request at the same epoch
        /// always produces an equal key with an equal fingerprint.
        #[test]
        fn fingerprint_is_deterministic(req in requests(), epoch in 0u64..1000) {
            for key in [
                CacheKey::analysis(&req.query, epoch),
                CacheKey::plan(&req, epoch),
                CacheKey::results(&req, epoch),
            ] {
                prop_assert_eq!(key.fingerprint(), key.clone().fingerprint());
                prop_assert_eq!(key.epoch(), epoch);
            }
            prop_assert_eq!(
                CacheKey::plan(&req, epoch).fingerprint(),
                CacheKey::plan(&req.clone(), epoch).fingerprint()
            );
        }

        /// Distinct identities never collide: across a batch of random
        /// requests and epochs, any two keys with equal fingerprints
        /// are the *same* key. (Equality is the authority; this pins
        /// down that the FNV router doesn't alias realistic keys.)
        #[test]
        fn distinct_keys_do_not_collide(
            reqs in prop::collection::vec((requests(), 0u64..4), 1..40)
        ) {
            let mut seen: HashMap<u64, CacheKey> = HashMap::new();
            for (req, epoch) in &reqs {
                for key in [
                    CacheKey::analysis(&req.query, *epoch),
                    CacheKey::plan(req, *epoch),
                    CacheKey::results(req, *epoch),
                ] {
                    if let Some(prev) = seen.get(&key.fingerprint()) {
                        prop_assert_eq!(prev, &key, "fingerprint collision");
                    }
                    seen.insert(key.fingerprint(), key);
                }
            }
        }

        /// The epoch always participates: bumping it changes the key
        /// (the whole invalidation mechanism) and, for these golden
        /// cases, the fingerprint too.
        #[test]
        fn epoch_always_changes_the_key(req in requests(), epoch in 0u64..1000) {
            let a = CacheKey::results(&req, epoch);
            let b = CacheKey::results(&req, epoch + 1);
            prop_assert_ne!(&a, &b);
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }

        /// Threshold and shape fields separate plan/results identities.
        #[test]
        fn threshold_separates_plan_keys(req in requests(), epoch in 0u64..4) {
            let other = req.clone().threshold(req.threshold + 0.5);
            prop_assert_ne!(
                CacheKey::plan(&req, epoch),
                CacheKey::plan(&other, epoch)
            );
            let shaped = req.clone().with_estimates(!req.with_estimates);
            prop_assert_ne!(
                CacheKey::results(&req, epoch),
                CacheKey::results(&shaped, epoch)
            );
        }
    }
}
