//! Restore-then-lifecycle conformance: a broker restored from a
//! persistent store must behave **bit-identically** to the broker that
//! wrote the snapshot.
//!
//! Write-through canonicalization means a live store-attached broker
//! already serves the quantized round-trip of every representative, so
//! a restored broker decoding the very same bytes must produce the
//! same `est_NoDoc` / `est_AvgSim` down to the last bit — across shard
//! counts, after re-attaching live engines, and after the full
//! lifecycle (replace / refresh sweep / push invalidation) runs against
//! hydrated *and* still-cold entries. The suite also pins the
//! cold-start cache contract: a restored broker's query cache starts
//! empty, so it can never serve a response cached before the restart.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{
    Broker, CacheTier, DispatchOutcome, EntryKind, MergedHit, SearchRequest, SelectionPolicy,
    StoreErrorKind, TransportErrorKind,
};
use seu_net::{EngineServer, RemoteEngine};
use seu_text::Analyzer;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn engine_of(docs: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, d) in docs.iter().enumerate() {
        b.add_document(&format!("d{i}"), d);
    }
    SearchEngine::new(b.build())
}

/// Deterministic corpus with overlapping vocabulary, so every query
/// below produces non-trivial estimates on several engines.
fn corpus() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "alpha",
            vec![
                "database query index optimizer",
                "vector index search pruning",
                "query planner cost model",
            ],
        ),
        ("bravo", vec!["bread soup mushroom", "mushroom forest walk"]),
        (
            "charlie",
            vec![
                "network gradient descent",
                "gradient estimate variance",
                "network socket frame",
            ],
        ),
        (
            "delta",
            vec!["database shard broker epoch", "broker cache latency"],
        ),
        (
            "echo",
            vec![
                "term weight cosine",
                "cosine similarity merge",
                "rank merge select",
            ],
        ),
        (
            "foxtrot",
            vec!["corpus token stem", "stem token rank retrieval"],
        ),
    ]
}

const QUERIES: &[&str] = &[
    "database query",
    "mushroom soup",
    "gradient network frame",
    "cosine merge rank",
    "token retrieval",
    "zebra xylophone",
];

const THRESHOLDS: &[f64] = &[0.0, 0.1, 0.25];

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "seu-store-restore-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn store_broker(dir: &PathBuf, shards: usize) -> Broker<SubrangeEstimator> {
    Broker::builder(SubrangeEstimator::paper_six_subrange())
        .shards(shards)
        .store(dir)
        .expect("open store")
        .build()
}

/// Estimates must agree bit for bit — engine order, `est_NoDoc`, and
/// `est_AvgSim` — over the whole query × threshold matrix.
fn assert_estimates_identical(
    live: &Broker<SubrangeEstimator>,
    restored: &Broker<SubrangeEstimator>,
    ctx: &str,
) {
    for query in QUERIES {
        for &t in THRESHOLDS {
            let a = live.estimate_all(query, t);
            let b = restored.estimate_all(query, t);
            assert_eq!(a.len(), b.len(), "{ctx}: engine count for {query:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.engine, y.engine, "{ctx}: order for {query:?}");
                assert_eq!(
                    x.usefulness.no_doc.to_bits(),
                    y.usefulness.no_doc.to_bits(),
                    "{ctx}: est_NoDoc for {} at {query:?}/{t} ({} vs {})",
                    x.engine,
                    x.usefulness.no_doc,
                    y.usefulness.no_doc,
                );
                assert_eq!(
                    x.usefulness.avg_sim.to_bits(),
                    y.usefulness.avg_sim.to_bits(),
                    "{ctx}: est_AvgSim for {} at {query:?}/{t} ({} vs {})",
                    x.engine,
                    x.usefulness.avg_sim,
                    y.usefulness.avg_sim,
                );
            }
        }
    }
}

fn assert_hits_identical(a: &[MergedHit], b: &[MergedHit], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: hit count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((&x.engine, &x.doc), (&y.engine, &y.doc), "{ctx}: hit order");
        assert_eq!(
            x.sim.to_bits(),
            y.sim.to_bits(),
            "{ctx}: sim for {}/{}",
            x.engine,
            x.doc
        );
    }
}

#[test]
fn restored_estimates_are_bit_identical_across_shard_counts() {
    let dir = tmp_dir("estimates");
    let live = store_broker(&dir, 2);
    for (name, docs) in corpus() {
        live.register(name, engine_of(&docs));
    }
    let manifest = live.snapshot_registry().expect("snapshot");
    assert_eq!(manifest.entries.len(), corpus().len());
    assert!(manifest
        .entries
        .iter()
        .all(|e| matches!(e.kind, EntryKind::Local)));
    // Entries come out in registration (seq) order regardless of shard.
    let names: Vec<&str> = manifest.entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, corpus().iter().map(|(n, _)| *n).collect::<Vec<_>>());

    // The restored broker may re-shard the registry; estimates must not
    // care.
    for shards in [1, 2, 4] {
        let restored = store_broker(&dir, shards);
        assert_eq!(restored.restore().expect("restore"), corpus().len());
        // Serving before hydration: statuses report the manifest's
        // bookkeeping without touching the cold tier.
        for s in restored.engine_statuses() {
            assert!(s.detached, "restored entry {} must be detached", s.name);
            assert!(!s.stale, "restored entry {} must not be stale", s.name);
            assert!(s.repr_terms > 0, "cold bookkeeping for {}", s.name);
        }
        if shards == 2 {
            // Same shard count as the snapshotting broker: the epoch cut
            // is reproduced exactly.
            assert_eq!(restored.registry_epoch(), live.registry_epoch());
        }
        // The first plan hydrates lazily; estimates are bit-identical.
        assert_estimates_identical(&live, &restored, &format!("shards={shards}"));
        // Everything is warm now: an explicit hydrate is a no-op.
        assert_eq!(restored.hydrate(), 0);
        assert!(restored.engine_statuses().iter().all(|s| s.detached));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_and_restore_require_store_and_empty_registry() {
    let plain = Broker::new(SubrangeEstimator::paper_six_subrange());
    assert_eq!(
        plain.snapshot_registry().expect_err("no store").kind,
        StoreErrorKind::Invalid
    );
    assert_eq!(
        plain.restore().expect_err("no store").kind,
        StoreErrorKind::Invalid
    );
    assert!(!plain.has_store());

    let dir = tmp_dir("guards");
    let b = store_broker(&dir, 1);
    assert!(b.has_store());
    // A fresh store holds an empty manifest: restore is a no-op, not an
    // error.
    assert_eq!(b.restore().expect("empty manifest"), 0);
    b.register("alpha", engine_of(&["database query"]));
    // Restore is a cold-start operation, never a merge.
    assert_eq!(
        b.restore().expect_err("non-empty").kind,
        StoreErrorKind::Invalid
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn detached_dispatch_fails_until_attach_then_hits_match() {
    let dir = tmp_dir("attach");
    let live = store_broker(&dir, 2);
    for (name, docs) in corpus() {
        live.register(name, engine_of(&docs));
    }
    live.snapshot_registry().expect("snapshot");
    let req = SearchRequest::new("database query")
        .threshold(0.0)
        .policy(SelectionPolicy::All);
    let live_resp = live.execute(&req);
    assert!(live_resp.is_complete());

    let restored = store_broker(&dir, 2);
    restored.restore().expect("restore");
    // Plans work immediately, but a detached entry has nothing to
    // dispatch to: every selected engine fails with a typed refusal.
    let resp = restored.execute(&req);
    assert!(!resp.is_complete());
    assert!(resp.hits.is_empty());
    assert!(!resp.per_engine_stats.is_empty());
    for s in &resp.per_engine_stats {
        assert_eq!(s.outcome, DispatchOutcome::Failed, "{s:?}");
        assert_eq!(
            s.error.as_ref().expect("refusal error").kind,
            TransportErrorKind::Refused,
            "{s:?}"
        );
    }

    // Re-attach the same collections: the hydrated canonical
    // representatives and term maps are kept, so searches now match the
    // live broker bit for bit.
    for (name, docs) in corpus() {
        assert!(restored.attach_engine(name, engine_of(&docs)), "{name}");
    }
    let statuses = restored.engine_statuses();
    assert!(statuses.iter().all(|s| !s.detached && !s.stale));
    let resp = restored.execute(&req);
    assert!(resp.is_complete());
    assert_hits_identical(&live_resp.hits, &resp.hits, "post-attach");
    assert_estimates_identical(&live, &restored, "post-attach");
    // Nothing is detached anymore; a second attach finds no target.
    assert!(!restored.attach_engine("alpha", engine_of(&["database query"])));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replace_engine_after_restore_reconciles_like_live_broker() {
    let dir = tmp_dir("replace");
    let live = store_broker(&dir, 2);
    for (name, docs) in corpus() {
        live.register(name, engine_of(&docs));
    }
    live.snapshot_registry().expect("snapshot");

    let new_docs = [
        "database query rewrite engine",
        "fresh index build pipeline",
    ];
    // Live path: the collection changes under an unchanged registry
    // entry, goes stale, and a sweep reconciles it.
    assert!(live.replace_engine("alpha", engine_of(&new_docs)));
    assert_eq!(live.is_stale("alpha"), Some(true));
    assert_eq!(live.refresh_if_stale(), vec!["alpha".to_string()]);
    assert_eq!(live.is_stale("alpha"), Some(false));

    // Restored path: same lifecycle against a restored entry. A shipped
    // representative cannot be pushed to a detached entry...
    let restored = store_broker(&dir, 2);
    restored.restore().expect("restore");
    assert!(!restored.update_representative(
        "alpha",
        seu_repr::Representative::from_parts(1, Vec::new(), 1)
    ));
    // ...but replace_engine hydrates and swaps the handle in: different
    // content sidelines the entry until the sweep rebuilds it, exactly
    // like the live broker.
    assert!(restored.replace_engine("alpha", engine_of(&new_docs)));
    assert_eq!(restored.is_stale("alpha"), Some(true));
    assert_eq!(restored.refresh_if_stale(), vec!["alpha".to_string()]);
    assert_eq!(restored.is_stale("alpha"), Some(false));

    assert_estimates_identical(&live, &restored, "post-replace-sweep");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn push_invalidation_reaches_cold_and_hydrated_entries() {
    let dir = tmp_dir("invalidate");
    let v1 = engine_of(&["database query index", "vector index search"]);
    let fp_v1 = v1.fingerprint();
    let v2_docs = ["broker cache latency report", "database epoch sweep"];
    let fp_v2 = engine_of(&v2_docs).fingerprint();
    assert_ne!(fp_v1, fp_v2);

    let server = EngineServer::bind("alpha", v1, "127.0.0.1:0").expect("bind loopback");
    let live = store_broker(&dir, 2);
    let client = RemoteEngine::new(server.addr()).expect("resolve loopback");
    assert_eq!(
        live.register_remote(Arc::new(client)).expect("remote"),
        "alpha"
    );
    live.register("beta", engine_of(&["term weight cosine", "cosine merge"]));
    let manifest = live.snapshot_registry().expect("snapshot");
    assert!(manifest
        .entries
        .iter()
        .any(|e| matches!(&e.kind, EntryKind::Remote { endpoint } if !endpoint.is_empty())));

    // The engine re-indexes to v2 while the brokers are down.
    server.replace_engine(engine_of(&v2_docs));
    // Control: what a never-restarted broker registering v2 would serve.
    let control_dir = tmp_dir("invalidate-control");
    let control = store_broker(&control_dir, 2);
    let client = RemoteEngine::new(server.addr()).expect("resolve loopback");
    assert_eq!(
        control.register_remote(Arc::new(client)).expect("remote"),
        "alpha"
    );
    control.register("beta", engine_of(&["term weight cosine", "cosine merge"]));

    // Notices work against BOTH a still-cold and an already-hydrated
    // restored entry, with identical semantics.
    for hydrate_first in [false, true] {
        let ctx = if hydrate_first { "hydrated" } else { "cold" };
        let restored = store_broker(&dir, 2);
        restored.restore().expect("restore");
        if hydrate_first {
            assert!(restored.hydrate() > 0);
        }
        // A redelivered pre-snapshot notice describes the fingerprint
        // the manifest already holds: a no-op, even before hydration.
        assert_eq!(
            restored.apply_invalidation("alpha", fp_v1),
            Ok(true),
            "{ctx}"
        );
        assert_eq!(restored.is_stale("alpha"), Some(false), "{ctx}");
        // A genuinely new fingerprint cannot be refetched without a
        // transport: the entry is marked stale and the refusal is typed.
        let err = restored
            .apply_invalidation("alpha", fp_v2)
            .expect_err("detached refetch must fail");
        assert_eq!(err.kind, TransportErrorKind::Refused, "{ctx}");
        assert_eq!(restored.is_stale("alpha"), Some(true), "{ctx}");
        // Unknown names are reported as such, not errors.
        assert_eq!(
            restored.apply_invalidation("nobody", fp_v2),
            Ok(false),
            "{ctx}"
        );

        // Re-attaching the transport reconciles: the snapshot fetch
        // finds v2 and installs it (written through the store), so the
        // restored broker now matches the control bit for bit.
        let client = RemoteEngine::new(server.addr()).expect("resolve loopback");
        assert_eq!(restored.attach_remote(Arc::new(client)), Ok(true), "{ctx}");
        assert_eq!(restored.is_stale("alpha"), Some(false), "{ctx}");
        let statuses = restored.engine_statuses();
        let alpha = statuses.iter().find(|s| s.name == "alpha").expect("alpha");
        assert!(alpha.remote && !alpha.detached, "{ctx}: {alpha:?}");
        assert_estimates_identical(&control, &restored, ctx);
        // No detached entry is left for a second attach to claim.
        let client = RemoteEngine::new(server.addr()).expect("resolve loopback");
        assert_eq!(restored.attach_remote(Arc::new(client)), Ok(false), "{ctx}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

#[test]
fn restored_query_cache_starts_cold_and_never_serves_pre_restore_entries() {
    let dir = tmp_dir("cache");
    let live = store_broker(&dir, 2);
    for (name, docs) in corpus() {
        live.register(name, engine_of(&docs));
    }
    live.snapshot_registry().expect("snapshot");
    let req = SearchRequest::new("database query")
        .threshold(0.0)
        .policy(SelectionPolicy::All);
    // Warm the live broker's cache: the second execution is served from
    // the results tier without dispatching.
    let live_first = live.execute(&req);
    assert_eq!(live_first.served_from, None);
    assert_eq!(live.execute(&req).served_from, Some(CacheTier::Results));
    assert!(live.cache_stats().expect("cache on").hits >= 1);

    // The cache is per-broker-instance state and is NOT part of the
    // snapshot: a restored broker starts cold, so nothing cached before
    // the restart can ever be served after it.
    let restored = store_broker(&dir, 2);
    restored.restore().expect("restore");
    let stats = restored.cache_stats().expect("cache on");
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.hits, 0);
    for (name, docs) in corpus() {
        assert!(restored.attach_engine(name, engine_of(&docs)));
    }
    let first = restored.execute(&req);
    assert_eq!(first.served_from, None, "must not hit a pre-restore entry");
    assert_hits_identical(&live_first.hits, &first.hits, "first post-restore");
    // The cache itself works fine — it is merely fresh.
    assert_eq!(restored.execute(&req).served_from, Some(CacheTier::Results));
    let stats = restored.cache_stats().expect("cache on");
    assert_eq!(stats.hits, 1);
    assert!(stats.misses >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
