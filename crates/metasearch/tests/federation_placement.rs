//! Placement ring properties: the guarantees federation's correctness
//! and stability rest on, checked over an 8k-name keyspace.
//!
//! - **Pinned golden hashes** — `hash_key` is FNV-1a and must never
//!   drift: every front-door instance (and every release) must place
//!   the same name on the same replica.
//! - **Purity** — ownership is a function of (name, membership) alone:
//!   rebuilding the ring in any join order gives identical placements.
//! - **Minimal disruption** — when one replica of eight leaves, only
//!   its own keys move: strictly bounded by 25% of the keyspace (the
//!   expected share is 12.5%).
//! - **Uniformity** — with default virtual nodes, every replica's share
//!   of 8k names is within ±20% of fair.

use seu_metasearch::federation::{hash_key, Ring, DEFAULT_VNODES};

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("engine-{i:04}")).collect()
}

fn replica_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("replica-{i}")).collect()
}

#[test]
fn golden_fnv1a_values_are_pinned() {
    // Computed independently from the FNV-1a reference definition.
    // These pins guard placement purity across versions: a hash change
    // would silently re-place every engine in every cluster.
    assert_eq!(hash_key(""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(hash_key("a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(hash_key("soup"), 0x5fe3_df18_f075_cfc2);
    assert_eq!(hash_key("engine-0000"), 0x93bc_f93d_4f26_bc62);
    assert_eq!(hash_key("replica-a#0"), 0xb2f7_54b4_a48c_5cce);
    assert_eq!(hash_key("replica-a#1"), 0xb2f7_55b4_a48c_5e81);
    assert_eq!(hash_key("replica-b#0"), 0x99da_cfb4_9692_4e3f);
    assert_eq!(hash_key("r1#0"), 0x0da6_8720_bd90_c717);
    assert_eq!(hash_key("r1#15"), 0xc2bb_3aa2_1cff_48a3);
}

#[test]
fn placement_is_pure_in_name_and_membership() {
    let ids = replica_ids(8);
    let forward = Ring::with_replicas(DEFAULT_VNODES, &ids);
    let mut reversed_ids = ids.clone();
    reversed_ids.reverse();
    let reversed = Ring::with_replicas(DEFAULT_VNODES, &reversed_ids);
    // A third ring arrives at the same membership through churn:
    // interlopers join and leave again.
    let mut churned = Ring::new(DEFAULT_VNODES);
    churned.add_replica("interloper-a");
    for id in &ids {
        churned.add_replica(id);
    }
    churned.add_replica("interloper-b");
    churned.remove_replica("interloper-a");
    churned.remove_replica("interloper-b");

    for name in names(8_000) {
        let owner = forward.owner(&name).unwrap();
        assert_eq!(owner, reversed.owner(&name).unwrap(), "{name}: join order");
        assert_eq!(
            owner,
            churned.owner(&name).unwrap(),
            "{name}: churn history"
        );
        // The whole candidate chain is pure, not just the owner —
        // failover on independent front-doors must agree too.
        assert_eq!(
            forward.candidates(&name),
            reversed.candidates(&name),
            "{name}: candidate chain"
        );
    }
}

#[test]
fn one_of_eight_leaving_moves_at_most_a_quarter_of_the_keyspace() {
    let names = names(8_000);
    let full = Ring::with_replicas(DEFAULT_VNODES, replica_ids(8));
    let before: Vec<String> = names
        .iter()
        .map(|n| full.owner(n).unwrap().to_string())
        .collect();
    for leaver in full.replicas().to_vec() {
        let mut shrunk = full.clone();
        assert!(shrunk.remove_replica(&leaver));
        let mut moved = 0usize;
        for (name, old_owner) in names.iter().zip(&before) {
            let new_owner = shrunk.owner(name).unwrap();
            if new_owner != old_owner {
                moved += 1;
                // Consistent hashing moves ONLY the leaver's keys; a
                // survivor-to-survivor move would mean the ring
                // reshuffles more than membership demands.
                assert_eq!(
                    old_owner, &leaver,
                    "{name} moved from surviving {old_owner} to {new_owner}"
                );
            }
        }
        let bound = names.len() / 4;
        assert!(
            moved <= bound,
            "removing {leaver} moved {moved} of {} names (> 25%)",
            names.len()
        );
        assert!(
            moved > 0,
            "removing {leaver} moved nothing — ring ignored it"
        );
    }
}

#[test]
fn keyspace_share_is_within_twenty_percent_of_fair() {
    let names = names(8_000);
    let ring = Ring::with_replicas(DEFAULT_VNODES, replica_ids(8));
    let mut counts = std::collections::BTreeMap::new();
    for name in &names {
        *counts
            .entry(ring.owner(name).unwrap().to_string())
            .or_insert(0usize) += 1;
    }
    assert_eq!(counts.len(), 8, "every replica must own something");
    let fair = names.len() / 8;
    let (lo, hi) = (fair * 4 / 5, fair * 6 / 5);
    for (replica, count) in &counts {
        assert!(
            (lo..=hi).contains(count),
            "{replica} owns {count} of {} names (fair {fair}, allowed {lo}..={hi}); \
             full spread: {counts:?}",
            names.len()
        );
    }
}
