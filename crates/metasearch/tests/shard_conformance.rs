//! Shard conformance: a sharded registry must be **bit-identical** to
//! the flat one.
//!
//! Estimates are floating-point and the selection policies tie-break on
//! registration order, so "roughly equal" is not good enough — a shard
//! layout that perturbed estimate order or presentation order would
//! silently change selections. The harness builds identical seeded
//! corpora, runs flat vs sharded brokers (shards ∈ {1, 4, 16}) over
//! local engines and loopback-TCP remote engines, and asserts
//! `est_NoDoc` / `est_AvgSim`, selections, and merged hits equal via
//! `f64::to_bits` — the same bar PR 4's loopback suite set for
//! remote-vs-local.
//!
//! The second half is a deterministic multi-threaded stress driver:
//! seeded per-thread op sequences interleave register / replace /
//! refresh / search / invalidate across shards while observers assert
//! registry-epoch monotonicity, the per-shard epoch-cut invariant, and
//! that the dispatch pool survives unpoisoned.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, Fingerprint, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, MergedHit, QueryPlan, SearchRequest, SelectionPolicy, StaleMode};
use seu_net::{EngineServer, RemoteEngine};
use seu_text::Analyzer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SEED: u64 = 0x5EED_0005;

/// xorshift64* — tiny, seedable, and stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const WORDS: &[&str] = &[
    "database",
    "query",
    "index",
    "vector",
    "soup",
    "mushroom",
    "bread",
    "forest",
    "network",
    "gradient",
    "retrieval",
    "estimate",
    "shard",
    "broker",
    "epoch",
    "cosine",
    "term",
    "weight",
    "merge",
    "select",
    "remote",
    "socket",
    "frame",
    "cache",
    "latency",
    "recall",
    "corpus",
    "token",
    "stem",
    "rank",
];

fn doc_text(rng: &mut Rng) -> String {
    let len = 4 + rng.below(6);
    (0..len)
        .map(|_| WORDS[rng.below(WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// The seeded corpus: `(engine name, documents)` pairs, identical for
/// every broker built from the same seed.
fn corpus(seed: u64, n_engines: usize) -> Vec<(String, Vec<String>)> {
    let mut rng = Rng::new(seed);
    (0..n_engines)
        .map(|i| {
            let docs = (0..2 + rng.below(4)).map(|_| doc_text(&mut rng)).collect();
            (format!("engine-{i:03}"), docs)
        })
        .collect()
}

fn engine_of(docs: &[String]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, d) in docs.iter().enumerate() {
        b.add_document(&format!("d{i}"), d);
    }
    SearchEngine::new(b.build())
}

fn queries(seed: u64, n: usize) -> Vec<String> {
    let mut rng = Rng::new(seed ^ 0x9E37_79B9);
    (0..n)
        .map(|_| {
            let len = 1 + rng.below(3);
            (0..len)
                .map(|_| WORDS[rng.below(WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

fn broker(shards: usize) -> Broker<SubrangeEstimator> {
    Broker::builder(SubrangeEstimator::paper_six_subrange())
        .shards(shards)
        .build()
}

fn local_broker(corpus: &[(String, Vec<String>)], shards: usize) -> Broker<SubrangeEstimator> {
    let b = broker(shards);
    for (name, docs) in corpus {
        b.register(name, engine_of(docs));
    }
    b
}

/// Plans must agree bit for bit: engine order, `est_NoDoc`,
/// `est_AvgSim`, and the selected invocation set.
fn assert_plans_identical(flat: &QueryPlan, sharded: &QueryPlan, ctx: &str) {
    let fe = flat.estimates();
    let se = sharded.estimates();
    assert_eq!(fe.len(), se.len(), "{ctx}: estimate count");
    for (f, s) in fe.iter().zip(&se) {
        assert_eq!(f.engine, s.engine, "{ctx}: estimate order");
        assert_eq!(
            f.usefulness.no_doc.to_bits(),
            s.usefulness.no_doc.to_bits(),
            "{ctx}: est_NoDoc for {} ({} vs {})",
            f.engine,
            f.usefulness.no_doc,
            s.usefulness.no_doc,
        );
        assert_eq!(
            f.usefulness.avg_sim.to_bits(),
            s.usefulness.avg_sim.to_bits(),
            "{ctx}: est_AvgSim for {} ({} vs {})",
            f.engine,
            f.usefulness.avg_sim,
            s.usefulness.avg_sim,
        );
    }
    assert_eq!(
        flat.selected_names(),
        sharded.selected_names(),
        "{ctx}: selection"
    );
}

fn assert_hits_identical(flat: &[MergedHit], sharded: &[MergedHit], ctx: &str) {
    assert_eq!(flat.len(), sharded.len(), "{ctx}: hit count");
    for (f, s) in flat.iter().zip(sharded) {
        assert_eq!((&f.engine, &f.doc), (&s.engine, &s.doc), "{ctx}: hit order");
        assert_eq!(
            f.sim.to_bits(),
            s.sim.to_bits(),
            "{ctx}: sim for {}/{} ({} vs {})",
            f.engine,
            f.doc,
            f.sim,
            s.sim,
        );
    }
}

const POLICIES: &[SelectionPolicy] = &[
    SelectionPolicy::All,
    SelectionPolicy::EstimatedUseful,
    SelectionPolicy::TopK(3),
];

/// Drives the full query matrix over a flat broker and a sharded one,
/// asserting bit-identical plans and merged hits for every (query,
/// policy, threshold) cell.
fn assert_conformance(
    flat: &Broker<SubrangeEstimator>,
    sharded: &Broker<SubrangeEstimator>,
    label: &str,
) {
    for query in queries(SEED, 12) {
        for &policy in POLICIES {
            for threshold in [0.0, 0.1, 0.25] {
                let req = SearchRequest::new(&query)
                    .threshold(threshold)
                    .policy(policy);
                let ctx = format!(
                    "{label}, shards={}, query={query:?}, policy={policy:?}, t={threshold}",
                    sharded.shards()
                );
                assert_plans_identical(&flat.plan(&req, None), &sharded.plan(&req, None), &ctx);
                assert_hits_identical(&flat.execute(&req).hits, &sharded.execute(&req).hits, &ctx);
            }
        }
    }
}

#[test]
fn sharded_broker_is_bit_identical_to_flat_local() {
    let corpus = corpus(SEED, 24);
    let flat = local_broker(&corpus, 1);
    for shards in [1, 4, 16] {
        let sharded = local_broker(&corpus, shards);
        assert_eq!(sharded.shards(), shards);
        assert_conformance(&flat, &sharded, "local");
    }
}

#[test]
fn sharded_broker_is_bit_identical_to_flat_remote() {
    let corpus = corpus(SEED ^ 0xBEEF, 12);
    // Every third engine is served over loopback TCP; one server set is
    // shared by every broker under test.
    let servers: Vec<EngineServer> = corpus
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, (name, docs))| {
            EngineServer::bind(name, engine_of(docs), "127.0.0.1:0").expect("bind loopback")
        })
        .collect();
    let mixed = |shards: usize| {
        let b = broker(shards);
        let mut remote = servers.iter();
        for (i, (name, docs)) in corpus.iter().enumerate() {
            if i % 3 == 0 {
                let server = remote.next().expect("one server per remote slot");
                let client = RemoteEngine::new(server.addr()).expect("resolve loopback");
                let registered = b
                    .register_remote(Arc::new(client))
                    .expect("register remote");
                assert_eq!(&registered, name);
            } else {
                b.register(name, engine_of(docs));
            }
        }
        b
    };

    let flat_mixed = mixed(1);
    // The sharded mixed broker must match the flat mixed broker bit for
    // bit — and both must match the all-local flat broker, extending
    // PR 4's remote-equivalence guarantee across shard layouts.
    let all_local = local_broker(&corpus, 1);
    for shards in [4, 16] {
        let sharded_mixed = mixed(shards);
        assert_conformance(&flat_mixed, &sharded_mixed, "remote-mixed");
        assert_conformance(&all_local, &sharded_mixed, "remote-vs-local");
    }
}

/// The deterministic stress driver: seeded per-thread op sequences
/// interleave lifecycle events and queries across every shard at once.
/// The interleaving is scheduler-dependent; each thread's own op
/// sequence is not.
#[test]
fn stress_interleaves_lifecycle_across_shards() {
    const BASES: usize = 24;
    const SHARDS: usize = 8;
    let corpus = corpus(SEED ^ 0x57E5, BASES);
    let b = Arc::new({
        let b = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(SHARDS)
            .worker_threads(4)
            .build();
        for (name, docs) in &corpus {
            b.register(name, engine_of(docs));
        }
        b
    });
    let registered_extra = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Mutators: replace / refresh / invalidate / sweep / register.
        for t in 0..3u64 {
            let b = Arc::clone(&b);
            let corpus = &corpus;
            let registered_extra = Arc::clone(&registered_extra);
            scope.spawn(move || {
                let mut rng = Rng::new(SEED ^ (0xA000 + t));
                for k in 0..120 {
                    let base = &corpus[rng.below(BASES)].0;
                    match rng.below(10) {
                        0..=2 => {
                            let mut rng2 = Rng::new(rng.next());
                            let docs: Vec<String> = (0..2 + rng2.below(3))
                                .map(|_| doc_text(&mut rng2))
                                .collect();
                            assert!(b.replace_engine(base, engine_of(&docs)));
                        }
                        3..=4 => {
                            assert!(b.refresh_representative(base));
                        }
                        5 => {
                            // A bogus fingerprint never matches the entry's
                            // provenance, so this forces a refresh through
                            // the push-invalidation path.
                            let bogus = Fingerprint {
                                n_docs: u64::MAX,
                                raw_bytes: rng.next(),
                                hash: rng.next(),
                            };
                            assert_eq!(b.apply_invalidation(base, bogus), Ok(true));
                        }
                        6..=7 => {
                            let _ = b.refresh_if_stale();
                        }
                        _ => {
                            let mut rng2 = Rng::new(rng.next());
                            let docs: Vec<String> = (0..2).map(|_| doc_text(&mut rng2)).collect();
                            b.register(&format!("extra-t{t}-{k}"), engine_of(&docs));
                            registered_extra.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
        // Searchers: the pool must keep answering while every shard
        // churns. Local engines cannot fail or time out (no budget is
        // set), so anything other than a complete response means the
        // dispatch pool lost workers.
        for t in 0..2u64 {
            let b = Arc::clone(&b);
            scope.spawn(move || {
                let mut rng = Rng::new(SEED ^ (0xB000 + t));
                for _ in 0..60 {
                    let query = format!(
                        "{} {}",
                        WORDS[rng.below(WORDS.len())],
                        WORDS[rng.below(WORDS.len())]
                    );
                    let req = SearchRequest::new(&query)
                        .threshold(0.05)
                        .policy(SelectionPolicy::EstimatedUseful);
                    let resp = b.execute(&req);
                    assert!(resp.is_complete(), "dispatch pool degraded: {resp:?}");
                    // Held plans must either execute or fail with the
                    // *typed* staleness error — never a wrong answer and
                    // never a poisoned pool.
                    let plan = b.plan(&req, None);
                    match b.execute_plan(&req.clone().stale_mode(StaleMode::Error), &plan) {
                        Ok(resp) => assert!(resp.is_complete()),
                        Err(e) => assert!(
                            e.registry_epoch > e.plan_epoch,
                            "stale error must carry a newer registry epoch: {e}"
                        ),
                    }
                }
            });
        }
        // Observer: the derived global epoch is monotonic, and every
        // snapshot is a consistent per-shard cut — within one shard,
        // epoch == registrations + the entries' own epochs.
        {
            let b = Arc::clone(&b);
            scope.spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    let epoch = b.registry_epoch();
                    assert!(
                        epoch >= last,
                        "registry epoch went backwards: {last} -> {epoch}"
                    );
                    last = epoch;
                    let snap = b.registry_snapshot();
                    for (i, &shard_epoch) in snap.shard_epochs.iter().enumerate() {
                        let in_shard: Vec<_> =
                            snap.statuses.iter().filter(|s| s.shard == i).collect();
                        let expect =
                            in_shard.len() as u64 + in_shard.iter().map(|s| s.epoch).sum::<u64>();
                        assert_eq!(
                            shard_epoch,
                            expect,
                            "torn snapshot of shard {i}: epoch {shard_epoch}, \
                             {} entries summing to {expect}",
                            in_shard.len()
                        );
                    }
                }
            });
        }
    });

    // Quiesced: a sweep converges, the registry holds every engine, and
    // the pool still answers.
    while !b.refresh_if_stale().is_empty() {}
    let snap = b.registry_snapshot();
    assert_eq!(
        snap.statuses.len(),
        BASES + registered_extra.load(Ordering::SeqCst)
    );
    assert!(snap.statuses.iter().all(|s| !s.stale));
    assert_eq!(snap.epoch, b.registry_epoch());
    let resp = b.execute(
        &SearchRequest::new("database query")
            .threshold(0.0)
            .policy(SelectionPolicy::All),
    );
    assert!(resp.is_complete(), "pool poisoned after stress: {resp:?}");
    let (_, peak) = b.pool_stats();
    assert!(peak >= 1, "dispatch pool never ran");
}
