//! Federation conformance: a front-door over broker replicas must be
//! **bit-identical** to a single flat broker.
//!
//! Same bar as `shard_conformance.rs`, one tier up: estimates are
//! floating-point and selection tie-breaks on registration order, so a
//! federated layout that perturbed estimate values, estimate order, or
//! selection order would silently change answers. The harness builds a
//! seeded corpus once, registers the same shared engines with a flat
//! control broker and with front-doors over 1, 2, and 4 in-process
//! replicas, and asserts `est_NoDoc` / `est_AvgSim`, the invoked
//! engine set, and merged hits equal via `f64::to_bits` — before and
//! after mid-run replica joins and leaves (whose rebalances ship
//! `FrozenSummary` snapshots between replicas), and across a replica
//! failure served by ring-successor failover.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::federation::{
    EngineSource, FrontDoor, FrontDoorConfig, InstallSpec, LocalReplica, ReplicaClient,
    SubsetResults,
};
use seu_metasearch::{
    Broker, EngineEstimate, EngineSnapshot, SearchRequest, SearchResponse, SelectionPolicy,
    TransportError, TransportErrorKind,
};
use seu_text::Analyzer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SEED: u64 = 0x5EED_000A;

/// xorshift64* — tiny, seedable, and stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const WORDS: &[&str] = &[
    "database",
    "query",
    "index",
    "vector",
    "soup",
    "mushroom",
    "bread",
    "forest",
    "network",
    "gradient",
    "retrieval",
    "estimate",
    "shard",
    "broker",
    "epoch",
    "cosine",
    "term",
    "weight",
    "merge",
    "select",
    "remote",
    "socket",
    "frame",
    "cache",
    "latency",
    "recall",
    "corpus",
    "token",
    "stem",
    "rank",
];

fn doc_text(rng: &mut Rng) -> String {
    let len = 4 + rng.below(6);
    (0..len)
        .map(|_| WORDS[rng.below(WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

fn engine_of(docs: &[String]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, d) in docs.iter().enumerate() {
        b.add_document(&format!("d{i}"), d);
    }
    SearchEngine::new(b.build())
}

/// The seeded corpus: shared engine handles, so the control broker and
/// every replica register the *same* collection objects.
fn corpus(seed: u64, n_engines: usize) -> Vec<(String, Arc<SearchEngine>)> {
    let mut rng = Rng::new(seed);
    (0..n_engines)
        .map(|i| {
            let docs: Vec<String> = (0..2 + rng.below(4)).map(|_| doc_text(&mut rng)).collect();
            (format!("engine-{i:03}"), Arc::new(engine_of(&docs)))
        })
        .collect()
}

fn queries(seed: u64, n: usize) -> Vec<String> {
    let mut rng = Rng::new(seed ^ 0x9E37_79B9);
    (0..n)
        .map(|_| {
            let len = 1 + rng.below(3);
            (0..len)
                .map(|_| WORDS[rng.below(WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

fn control_broker(corpus: &[(String, Arc<SearchEngine>)]) -> Broker<SubrangeEstimator> {
    let b = Broker::new(SubrangeEstimator::paper_six_subrange());
    for (name, engine) in corpus {
        b.register_shared(name, engine.clone());
    }
    b
}

fn replica() -> Arc<dyn ReplicaClient> {
    Arc::new(LocalReplica::new(Arc::new(Broker::new(
        SubrangeEstimator::paper_six_subrange(),
    ))))
}

fn front_door(corpus: &[(String, Arc<SearchEngine>)], replicas: usize) -> FrontDoor {
    let fd = FrontDoor::new(FrontDoorConfig::default());
    for i in 0..replicas {
        fd.add_replica(&format!("replica-{i}"), replica());
    }
    for (name, engine) in corpus {
        fd.register_engine(name, EngineSource::Local(engine.clone()))
            .expect("register on front door");
    }
    fd
}

const POLICIES: &[SelectionPolicy] = &[
    SelectionPolicy::All,
    SelectionPolicy::EstimatedUseful,
    SelectionPolicy::TopK(3),
];

fn assert_estimates_identical(control: &[EngineEstimate], fed: &[EngineEstimate], ctx: &str) {
    assert_eq!(control.len(), fed.len(), "{ctx}: estimate count");
    for (c, f) in control.iter().zip(fed) {
        assert_eq!(c.engine, f.engine, "{ctx}: estimate order");
        assert_eq!(
            c.usefulness.no_doc.to_bits(),
            f.usefulness.no_doc.to_bits(),
            "{ctx}: est_NoDoc for {} ({} vs {})",
            c.engine,
            c.usefulness.no_doc,
            f.usefulness.no_doc,
        );
        assert_eq!(
            c.usefulness.avg_sim.to_bits(),
            f.usefulness.avg_sim.to_bits(),
            "{ctx}: est_AvgSim for {} ({} vs {})",
            c.engine,
            c.usefulness.avg_sim,
            f.usefulness.avg_sim,
        );
    }
}

fn assert_responses_identical(control: &SearchResponse, fed: &SearchResponse, ctx: &str) {
    assert_estimates_identical(&control.estimates, &fed.estimates, ctx);
    let invoked = |r: &SearchResponse| -> Vec<String> {
        r.per_engine_stats
            .iter()
            .map(|s| s.engine.clone())
            .collect()
    };
    assert_eq!(invoked(control), invoked(fed), "{ctx}: invocation set");
    assert_eq!(control.hits.len(), fed.hits.len(), "{ctx}: hit count");
    for (c, f) in control.hits.iter().zip(&fed.hits) {
        assert_eq!((&c.engine, &c.doc), (&f.engine, &f.doc), "{ctx}: hit order");
        assert_eq!(
            c.sim.to_bits(),
            f.sim.to_bits(),
            "{ctx}: sim for {}/{} ({} vs {})",
            c.engine,
            c.doc,
            c.sim,
            f.sim,
        );
    }
}

/// Drives the full (query, policy, threshold) matrix over the control
/// broker and the front-door, asserting bit-identical estimates,
/// invocation sets, and merged hits.
fn assert_conformance(control: &Broker<SubrangeEstimator>, fd: &FrontDoor, label: &str) {
    for query in queries(SEED, 10) {
        for &policy in POLICIES {
            for threshold in [0.0, 0.1, 0.25] {
                let req = SearchRequest::new(&query)
                    .threshold(threshold)
                    .policy(policy)
                    .with_estimates(true);
                let ctx = format!(
                    "{label}, replicas={}, query={query:?}, policy={policy:?}, t={threshold}",
                    fd.replica_count()
                );
                let (fed, report) = fd.execute_with_report(&req);
                assert!(
                    report.failures.is_empty() && report.unresolved.is_empty(),
                    "{ctx}: unexpected degradation: {report:?}"
                );
                assert_responses_identical(&control.execute(&req), &fed, &ctx);
            }
        }
    }
}

#[test]
fn federated_is_bit_identical_across_replica_counts() {
    let corpus = corpus(SEED, 24);
    let control = control_broker(&corpus);
    for replicas in [1, 2, 4] {
        let fd = front_door(&corpus, replicas);
        assert_eq!(fd.replica_count(), replicas);
        assert_eq!(fd.len(), corpus.len());
        // With replication 2, every engine is on min(2, replicas)
        // distinct replicas.
        let want = 2usize.min(replicas);
        for (engine, holders) in fd.placements() {
            assert_eq!(holders.len(), want, "{engine} holders: {holders:?}");
        }
        assert_conformance(&control, &fd, "steady-state");
    }
}

#[test]
fn join_and_leave_rebalance_preserves_bit_identity() {
    let corpus = corpus(SEED ^ 0xBEEF, 18);
    let control = control_broker(&corpus);
    let fd = front_door(&corpus, 2);
    assert_conformance(&control, &fd, "before-join");

    // A third replica joins mid-run: the rebalance ships snapshots for
    // every engine whose candidate chain now includes it.
    let report = fd.add_replica("replica-2", replica()).expect("new id");
    assert!(report.is_clean(), "join rebalance errored: {report:?}");
    assert!(
        report.moves.iter().all(|m| m.shipped_snapshot),
        "joins must hydrate via shipped snapshots: {report:?}"
    );
    assert!(
        !report.moves.is_empty(),
        "a three-replica ring must place something on the joiner"
    );
    assert_conformance(&control, &fd, "after-join");

    // A founding replica leaves: its engines move to the survivors
    // (exported from the leaver while it is still reachable).
    let report = fd.remove_replica("replica-0").expect("known id");
    assert!(report.is_clean(), "leave rebalance errored: {report:?}");
    assert_eq!(fd.replica_count(), 2);
    for (engine, holders) in fd.placements() {
        assert_eq!(
            holders.len(),
            2,
            "{engine} holders after leave: {holders:?}"
        );
        assert!(
            !holders.contains(&"replica-0".to_string()),
            "{engine} still placed on the departed replica"
        );
    }
    assert_conformance(&control, &fd, "after-leave");
}

/// A replica client that can be killed mid-run: every call after
/// `kill()` fails with a typed transport error.
struct KillableReplica {
    inner: Arc<dyn ReplicaClient>,
    dead: AtomicBool,
}

impl KillableReplica {
    fn new(inner: Arc<dyn ReplicaClient>) -> Arc<KillableReplica> {
        Arc::new(KillableReplica {
            inner,
            dead: AtomicBool::new(false),
        })
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    fn check(&self) -> Result<(), TransportError> {
        if self.dead.load(Ordering::SeqCst) {
            Err(TransportError::new(
                TransportErrorKind::Refused,
                "replica killed by test",
            ))
        } else {
            Ok(())
        }
    }
}

impl ReplicaClient for KillableReplica {
    fn ping(&self) -> Result<(), TransportError> {
        self.check()?;
        self.inner.ping()
    }

    fn estimate_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<Vec<EngineEstimate>, TransportError> {
        self.check()?;
        self.inner.estimate_subset(query, threshold, engines)
    }

    fn search_subset(
        &self,
        query: &str,
        threshold: f64,
        engines: &[String],
    ) -> Result<SubsetResults, TransportError> {
        self.check()?;
        self.inner.search_subset(query, threshold, engines)
    }

    fn install(&self, spec: &InstallSpec) -> Result<(), TransportError> {
        self.check()?;
        self.inner.install(spec)
    }

    fn remove_engine(&self, name: &str) -> Result<bool, TransportError> {
        self.check()?;
        self.inner.remove_engine(name)
    }

    fn export_engine(&self, name: &str) -> Result<EngineSnapshot, TransportError> {
        self.check()?;
        self.inner.export_engine(name)
    }
}

#[test]
fn failover_to_the_standby_is_bit_identical() {
    let corpus = corpus(SEED ^ 0xFA11, 16);
    let control = control_broker(&corpus);
    let fd = FrontDoor::new(FrontDoorConfig::default());
    let killable = KillableReplica::new(replica());
    fd.add_replica("replica-0", killable.clone());
    fd.add_replica("replica-1", replica());
    fd.add_replica("replica-2", replica());
    for (name, engine) in &corpus {
        fd.register_engine(name, EngineSource::Local(engine.clone()))
            .expect("register on front door");
    }
    assert_conformance(&control, &fd, "before-kill");

    // replica-0 dies. Its engines' standbys (replication 2) hold live
    // copies, so every answer must stay bit-identical — degraded in the
    // report, not in the response.
    killable.kill();
    let req = SearchRequest::new("database retrieval index")
        .threshold(0.0)
        .policy(SelectionPolicy::All)
        .with_estimates(true);
    let (fed, report) = fd.execute_with_report(&req);
    assert!(
        report.failures.iter().all(|f| f.replica == "replica-0"),
        "only the killed replica may fail: {report:?}"
    );
    assert!(
        report.unresolved.is_empty(),
        "replication 2 must leave nothing unresolved: {report:?}"
    );
    if !report.failures.is_empty() {
        assert!(report.failovers > 0, "failed engines must fail over");
    }
    assert_responses_identical(&control.execute(&req), &fed, "after-kill");

    // The whole matrix, degraded: bit-identity holds for every cell.
    for query in queries(SEED ^ 0xFA11, 6) {
        for &policy in POLICIES {
            let req = SearchRequest::new(&query)
                .threshold(0.1)
                .policy(policy)
                .with_estimates(true);
            let (fed, report) = fd.execute_with_report(&req);
            assert!(report.unresolved.is_empty(), "unresolved: {report:?}");
            assert_responses_identical(
                &control.execute(&req),
                &fed,
                &format!("after-kill, query={query:?}, policy={policy:?}"),
            );
        }
    }
}
