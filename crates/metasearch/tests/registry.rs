//! Representative-lifecycle integration tests: staleness detection,
//! refresh-then-plan (the term-map regression), and epoch-mismatch
//! handling for outstanding plans.

use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{Broker, SearchRequest, SelectionPolicy, StaleMode};
use seu_text::Analyzer;

fn engine_from(texts: &[&str]) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    for (i, t) in texts.iter().enumerate() {
        b.add_document(&format!("doc{i}"), t);
    }
    SearchEngine::new(b.build())
}

fn broker() -> Broker<SubrangeEstimator> {
    let b = Broker::new(SubrangeEstimator::paper_six_subrange());
    b.register(
        "cooking",
        engine_from(&["mushroom soup with cream", "baking sourdough bread"]),
    );
    b.register(
        "databases",
        engine_from(&["relational databases and query planning"]),
    );
    b
}

/// The headline regression: an engine re-indexes and gains terms its
/// representative has never seen. Before the refresh those terms are
/// invisible to planning (dropped from query translation); after a
/// `refresh_if_stale` sweep they must reach the global vocabulary, the
/// rebuilt term map, the estimates, and the merged hits.
#[test]
fn new_terms_become_visible_after_refresh() {
    let b = broker();
    assert_eq!(b.is_stale("cooking"), Some(false));

    // The cooking engine re-indexes remotely: same engine name, one new
    // document whose vocabulary ("porcini", "risotto") postdates
    // registration.
    assert!(b.replace_engine(
        "cooking",
        engine_from(&[
            "mushroom soup with cream",
            "baking sourdough bread",
            "porcini risotto with parmesan",
        ]),
    ));
    assert_eq!(b.is_stale("cooking"), Some(true));
    assert_eq!(b.is_stale("databases"), Some(false));
    assert_eq!(b.is_stale("nope"), None);

    // Stale: the new terms translate to nothing, so the engine looks
    // useless for them and contributes no hits.
    let req = SearchRequest::new("porcini risotto")
        .threshold(0.1)
        .policy(SelectionPolicy::EstimatedUseful)
        .with_estimates(true);
    let resp = b.execute(&req);
    assert!(resp.hits.is_empty(), "{:?}", resp.hits);
    let est = |resp: &seu_metasearch::SearchResponse, name: &str| {
        resp.estimates
            .iter()
            .find(|e| e.engine == name)
            .unwrap()
            .usefulness
            .no_doc
    };
    assert_eq!(est(&resp, "cooking"), 0.0);

    // The sweep refreshes exactly the stale engine.
    let refreshed = b.refresh_if_stale();
    assert_eq!(refreshed, vec!["cooking".to_string()]);
    assert_eq!(b.is_stale("cooking"), Some(false));
    // Idempotent: nothing left to refresh.
    assert!(b.refresh_if_stale().is_empty());

    // Fresh: the new terms estimate non-zero and the new document is
    // retrievable through the broker.
    let resp = b.execute(&req);
    assert!(est(&resp, "cooking") > 0.0);
    assert!(resp.hits.iter().any(|h| h.doc == "doc2"), "{:?}", resp.hits);
}

/// `refresh_representative` alone (no sweep) must also rebuild the term
/// map — replacing the representative without it was the original bug.
#[test]
fn explicit_refresh_rebuilds_term_map() {
    let b = broker();
    assert!(b.replace_engine(
        "cooking",
        engine_from(&["mushroom soup", "porcini everywhere"]),
    ));
    let stale = b.plan(&SearchRequest::new("porcini").threshold(0.05), None);
    assert!(stale.selected_names().is_empty(), "{stale:?}");

    assert!(b.refresh_representative("cooking"));
    let fresh = b.plan(&SearchRequest::new("porcini").threshold(0.05), None);
    assert_eq!(fresh.selected_names(), vec!["cooking".to_string()]);
}

#[test]
fn epoch_mismatch_is_detected_and_typed() {
    let b = broker();
    let plan = b.plan(
        &SearchRequest::new("soup").policy(SelectionPolicy::All),
        None,
    );
    let epoch_before = b.registry_epoch();
    assert_eq!(plan.epoch, epoch_before);

    // Nothing changed: strict re-estimation succeeds.
    assert!(b.try_reestimate(&plan, 0.1, None).is_ok());

    // A refresh bumps the registry: the outstanding plan is stale.
    assert!(b.refresh_representative("cooking"));
    assert_eq!(b.registry_epoch(), epoch_before + 1);
    let err = b.try_reestimate(&plan, 0.1, None).unwrap_err();
    assert_eq!(err.plan_epoch, epoch_before);
    assert_eq!(err.registry_epoch, epoch_before + 1);

    // The lenient path replans transparently and matches fresh estimates.
    assert_eq!(b.reestimate(&plan, 0.1), b.estimate_all("soup", 0.1));
}

#[test]
fn execute_plan_honors_stale_mode() {
    let b = broker();
    let req = SearchRequest::new("soup").threshold(0.1);
    let plan = b.plan(&req, None);

    // Fresh plan: both modes execute.
    assert!(b.execute_plan(&req, &plan).is_ok());
    assert!(b
        .execute_plan(&req.clone().stale_mode(StaleMode::Error), &plan)
        .is_ok());

    assert!(b.refresh_representative("cooking"));

    // Stale + strict: typed error, no dispatch.
    let err = b
        .execute_plan(&req.clone().stale_mode(StaleMode::Error), &plan)
        .unwrap_err();
    assert!(err.registry_epoch > err.plan_epoch, "{err}");

    // Stale + default: replans and answers like a fresh execute.
    let resp = b.execute_plan(&req, &plan).expect("replan");
    assert_eq!(resp.hits, b.execute(&req).hits);
}

#[test]
fn engine_statuses_track_epochs() {
    let b = broker();
    let statuses = b.engine_statuses();
    assert_eq!(statuses.len(), 2);
    assert!(statuses.iter().all(|s| s.epoch == 0 && !s.stale));
    assert!(statuses
        .iter()
        .all(|s| s.repr_terms > 0 && s.repr_bytes > 0));

    assert!(b.refresh_representative("cooking"));
    let statuses = b.engine_statuses();
    let by = |name: &str| statuses.iter().find(|s| s.name == name).unwrap();
    assert_eq!(by("cooking").epoch, 1);
    assert_eq!(by("databases").epoch, 0);
}

/// Regression: `replace_engine` swaps the collection without rebuilding
/// the term map, so a plan made *after* the swap (epoch-fresh, nothing
/// to replan) used to translate query terms through a map whose local
/// ids could be out of range in the new, smaller vocabulary — an index
/// panic inside query weighting. Planning must detect the misaligned
/// map and sideline the entry (no query vector is consistent with both
/// the old representative and the new collection) until a refresh
/// reconciles them.
#[test]
fn plan_survives_replacement_with_smaller_vocabulary() {
    let b = broker();
    // The replacement has a far smaller vocabulary than the original,
    // so old local term ids point past the new doc_freq table.
    assert!(b.replace_engine("cooking", engine_from(&["soup"])));

    let req = SearchRequest::new("mushroom soup with cream sourdough")
        .threshold(0.0)
        .policy(SelectionPolicy::All);
    let resp = b.execute(&req); // must not panic
    assert!(resp.is_complete(), "{:?}", resp.per_engine_stats);
    // Mid-propagation the entry contributes nothing — not a panic, not
    // an estimate derived from mismatched term ids.
    assert!(
        resp.hits.iter().all(|h| h.engine != "cooking"),
        "{:?}",
        resp.hits
    );

    // After the sweep reconciles map and collection, the replacement's
    // surviving document is retrievable again.
    assert_eq!(b.refresh_if_stale(), vec!["cooking".to_string()]);
    let fresh = b.execute(&req);
    assert!(
        fresh.hits.iter().any(|h| h.engine == "cooking"),
        "{:?}",
        fresh.hits
    );
}

/// `registry_snapshot` must capture each shard's statuses and epoch
/// under one lock acquisition. The invariant — per shard, epoch equals
/// registrations plus the sum of entry epochs — only survives
/// concurrent mutation if the cut is consistent; re-locking per engine
/// would tear it.
#[test]
fn registry_snapshot_is_consistent_epoch_cut() {
    use std::sync::Arc;

    let b = Arc::new(
        Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(4)
            .build(),
    );
    let names: Vec<String> = (0..16).map(|i| format!("db-{i}")).collect();
    for name in &names {
        b.register(name, engine_from(&["alpha beta gamma", "delta epsilon"]));
    }

    std::thread::scope(|scope| {
        for t in 0..3usize {
            let b = Arc::clone(&b);
            let names = &names;
            scope.spawn(move || {
                for k in 0..80 {
                    let name = &names[(t * 31 + k * 7) % names.len()];
                    if k % 3 == 0 {
                        assert!(b.replace_engine(name, engine_from(&["zeta eta theta"])));
                    } else {
                        assert!(b.refresh_representative(name));
                    }
                }
            });
        }
        let b = Arc::clone(&b);
        scope.spawn(move || {
            let mut last_epoch = 0;
            for _ in 0..300 {
                let snap = b.registry_snapshot();
                assert!(snap.epoch >= last_epoch, "epoch regressed");
                last_epoch = snap.epoch;
                assert_eq!(snap.epoch, snap.shard_epochs.iter().sum::<u64>());
                for (i, &shard_epoch) in snap.shard_epochs.iter().enumerate() {
                    let in_shard: Vec<_> = snap.statuses.iter().filter(|s| s.shard == i).collect();
                    let expected =
                        in_shard.len() as u64 + in_shard.iter().map(|s| s.epoch).sum::<u64>();
                    assert_eq!(
                        shard_epoch,
                        expected,
                        "shard {i}: torn status snapshot ({} entries)",
                        in_shard.len()
                    );
                }
            }
        });
    });

    // Statuses keep exact registration order even across shards.
    let snap = b.registry_snapshot();
    let status_names: Vec<_> = snap.statuses.iter().map(|s| s.name.clone()).collect();
    assert_eq!(status_names, names);
    assert_eq!(b.engine_statuses(), snap.statuses);
}

/// Shipped representatives carry no content hash, so staleness for them
/// is judged on totals; an update with matching totals stays fresh.
#[test]
fn shipped_representative_staleness_uses_totals() {
    let engine = engine_from(&["mushroom soup with cream"]);
    let repr = seu_repr::Representative::build(engine.collection());
    let b = Broker::new(SubrangeEstimator::paper_six_subrange());
    b.register_with_representative("cooking", engine, repr);
    assert_eq!(b.is_stale("cooking"), Some(false));

    // A snapshot with a different document count is visibly stale.
    assert!(b.replace_engine(
        "cooking",
        engine_from(&["mushroom soup with cream", "second course"]),
    ));
    assert_eq!(b.is_stale("cooking"), Some(true));
    assert_eq!(b.refresh_if_stale(), vec!["cooking".to_string()]);
    assert_eq!(b.is_stale("cooking"), Some(false));
}
