//! Property tests for the shard-routing function.
//!
//! `shard_for` is the load-bearing contract of the sharded registry: it
//! must be a pure function of the engine id and the shard count (so a
//! broker restart, a different registration order, or a different
//! machine all route an engine to the same shard), and it must spread
//! realistic id populations evenly enough that no shard's lock becomes
//! a de-facto global lock.

use proptest::prelude::*;
use seu_core::SubrangeEstimator;
use seu_engine::{CollectionBuilder, SearchEngine, WeightingScheme};
use seu_metasearch::{shard_for, Broker};
use seu_text::Analyzer;

/// Golden values pin the hash itself, not just its properties: a change
/// to the FNV constants or the byte order would re-route every engine
/// on upgrade, silently invalidating any state keyed by shard index.
#[test]
fn routing_matches_pinned_golden_values() {
    for (id, by_count) in [
        ("engine-000", [0usize, 2, 6, 38]),
        ("cooking", [0, 3, 7, 55]),
        ("databases", [0, 1, 1, 17]),
        ("web-042", [0, 2, 14, 14]),
        ("", [0, 1, 5, 37]),
    ] {
        for (n, want) in [1usize, 4, 16, 64].into_iter().zip(by_count) {
            assert_eq!(shard_for(id, n), want, "shard_for({id:?}, {n})");
        }
    }
}

fn tiny_engine(seed: usize) -> SearchEngine {
    let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
    b.add_document("doc0", &format!("alpha beta term{}", seed % 7));
    SearchEngine::new(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pure and stable: recomputing the route for the same id and shard
    /// count always yields the same in-range shard, and the route never
    /// depends on anything but those two inputs.
    #[test]
    fn routing_is_pure_and_in_range(
        id in "[a-z0-9_.-]{0,24}",
        n_shards in prop::sample::select(vec![1usize, 2, 3, 4, 8, 16, 64, 1024]),
    ) {
        let first = shard_for(&id, n_shards);
        prop_assert!(first < n_shards, "route {first} out of range for {n_shards} shards");
        // Recompute several times: a pure function cannot drift.
        for _ in 0..3 {
            prop_assert_eq!(shard_for(&id, n_shards), first);
        }
        // Zero shards clamps to one rather than dividing by zero.
        prop_assert_eq!(shard_for(&id, 0), 0);
    }
}

proptest! {
    // Uniformity is statistical: fewer, larger cases beat many small
    // ones. 8192 ids across <=16 shards puts the +/-20% band at more
    // than 4 standard deviations of a uniform multinomial, so a failure
    // means skew, not sampling noise.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Uniform within +/-20%: for a large random id population every
    /// shard's share stays within 20% of the ideal `ids / n_shards`.
    #[test]
    fn routing_is_uniform_within_20_percent(
        ids in prop::collection::vec("[a-z0-9-]{4,24}", 8192usize..8193),
        n_shards in prop::sample::select(vec![4usize, 8, 16]),
    ) {
        let unique: std::collections::HashSet<&str> = ids.iter().map(|s| s.as_str()).collect();
        prop_assume!(unique.len() >= 1000);

        let mut counts = vec![0usize; n_shards];
        for id in &unique {
            counts[shard_for(id, n_shards)] += 1;
        }
        let ideal = unique.len() as f64 / n_shards as f64;
        for (shard, &count) in counts.iter().enumerate() {
            let deviation = (count as f64 - ideal).abs() / ideal;
            prop_assert!(
                deviation <= 0.20,
                "shard {shard} holds {count} of {} ids (ideal {ideal:.1}, off by {:.1}%)",
                unique.len(),
                deviation * 100.0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Re-sharding to the same count is a no-op: two brokers built
    /// independently with the same shard count place every engine on
    /// the same shard, regardless of registration order.
    #[test]
    fn same_count_reshard_is_a_noop(
        ids in prop::collection::vec("[a-z]{3,12}", 4usize..12),
        n_shards in prop::sample::select(vec![2usize, 4, 16]),
    ) {
        let mut names: Vec<String> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| format!("{id}-{i}"))
            .collect();

        let a = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(n_shards)
            .build();
        for (i, name) in names.iter().enumerate() {
            a.register(name, tiny_engine(i));
        }

        // The second broker registers in reverse order: placement must
        // depend on the id alone.
        let b = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(n_shards)
            .build();
        for (i, name) in names.iter().enumerate().rev() {
            b.register(name, tiny_engine(i));
        }

        let shard_of = |broker: &Broker<SubrangeEstimator>, name: &str| {
            broker
                .engine_statuses()
                .into_iter()
                .find(|s| s.name == name)
                .map(|s| s.shard)
                .unwrap()
        };
        names.sort();
        for name in &names {
            let placed = shard_of(&a, name);
            prop_assert_eq!(placed, shard_of(&b, name));
            prop_assert_eq!(placed, shard_for(name, n_shards));
        }
    }
}
