//! Property-based tests for the generating-function machinery.

use proptest::prelude::*;
use seu_poly::{GridPoly, SparsePoly};

/// Strategy: a valid probability spike factor (spikes sum to <= 1).
fn arb_factor() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.01f64..1.0, 0.01f64..0.8), 1..6).prop_map(|raw| {
        let total: f64 = raw.iter().map(|&(p, _)| p).sum();
        let scale = if total > 0.95 { 0.95 / total } else { 1.0 };
        raw.into_iter().map(|(p, e)| (p * scale, e)).collect()
    })
}

fn arb_factors() -> impl Strategy<Value = Vec<Vec<(f64, f64)>>> {
    prop::collection::vec(arb_factor(), 1..5)
}

fn polys(factors: &[Vec<(f64, f64)>]) -> Vec<SparsePoly> {
    factors
        .iter()
        .map(|f| SparsePoly::spike_factor(f.iter().copied()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The product of probability factors has total mass 1.
    #[test]
    fn product_mass_is_one(factors in arb_factors()) {
        let g = SparsePoly::product(&polys(&factors));
        prop_assert!((g.total_mass() - 1.0).abs() < 1e-9);
        // All coefficients are non-negative probabilities.
        for &(_, c) in g.terms() {
            prop_assert!(c >= -1e-12);
        }
    }

    /// Multiplication is commutative.
    #[test]
    fn mul_commutes(a in arb_factor(), b in arb_factor()) {
        let (pa, pb) = (
            SparsePoly::spike_factor(a.iter().copied()),
            SparsePoly::spike_factor(b.iter().copied()),
        );
        let ab = pa.mul(&pb);
        let ba = pb.mul(&pa);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.terms().iter().zip(ba.terms()) {
            prop_assert!((x.0 - y.0).abs() < 1e-9);
            prop_assert!((x.1 - y.1).abs() < 1e-9);
        }
    }

    /// The mean exponent of a product is the sum of factor means
    /// (linearity of expectation over independent contributions).
    #[test]
    fn mean_exponent_is_additive(factors in arb_factors()) {
        let ps = polys(&factors);
        let expect: f64 = ps.iter().map(SparsePoly::mean_exponent).sum();
        let g = SparsePoly::product(&ps);
        prop_assert!((g.mean_exponent() - expect).abs() < 1e-9);
    }

    /// Tail mass is monotone non-increasing in the threshold and bounded
    /// by the total mass.
    #[test]
    fn tail_monotone(factors in arb_factors()) {
        let g = SparsePoly::product(&polys(&factors));
        let mut prev = f64::INFINITY;
        for i in 0..=40 {
            let t = i as f64 * 0.1;
            let tail = g.tail_above(t);
            prop_assert!(tail.mass <= prev + 1e-12);
            prop_assert!(tail.mass <= g.total_mass() + 1e-12);
            prop_assert!(tail.mass >= 0.0);
            prev = tail.mass;
        }
    }

    /// Compacting preserves total and weighted mass and meets the size cap.
    #[test]
    fn compact_is_mass_preserving(factors in arb_factors(), cap in 1usize..16) {
        let mut g = SparsePoly::product(&polys(&factors));
        let mass = g.total_mass();
        let mean = g.mean_exponent();
        g.compact_to(cap);
        prop_assert!(g.len() <= cap);
        prop_assert!((g.total_mass() - mass).abs() < 1e-9);
        prop_assert!((g.mean_exponent() - mean).abs() < 1e-9);
    }

    /// Grid convolution conserves mass and never over-counts any tail
    /// relative to the exact expansion.
    #[test]
    fn grid_conservative(factors in arb_factors(), cells in 16usize..512) {
        let max_exp: f64 = factors
            .iter()
            .map(|f| f.iter().map(|&(_, e)| e).fold(0.0f64, f64::max))
            .sum::<f64>()
            .max(0.1);
        let mut grid = GridPoly::identity(max_exp, cells);
        for f in &factors {
            grid.convolve_spikes(f);
        }
        prop_assert!((grid.total_mass() - 1.0).abs() < 1e-9);
        let exact = SparsePoly::product(&polys(&factors));
        for i in 0..20 {
            let t = max_exp * i as f64 / 20.0;
            prop_assert!(
                grid.tail_above(t).mass <= exact.tail_above(t).mass + 1e-9,
                "t={t}"
            );
        }
    }

    /// The grid's weighted mass over the whole range is exact (it tracks
    /// true exponents per deposit).
    #[test]
    fn grid_mean_is_exact(factors in arb_factors()) {
        let max_exp: f64 = factors
            .iter()
            .map(|f| f.iter().map(|&(_, e)| e).fold(0.0f64, f64::max))
            .sum::<f64>()
            .max(0.1);
        let mut grid = GridPoly::identity(max_exp, 256);
        for f in &factors {
            grid.convolve_spikes(f);
        }
        let exact = SparsePoly::product(&polys(&factors));
        let g_mean = grid.tail_above(-1.0).weighted_mass;
        prop_assert!((g_mean - exact.mean_exponent()).abs() < 1e-9);
    }
}
