//! Dense fixed-resolution convolution — the scalable alternative to exact
//! sparse expansion.
//!
//! A [`GridPoly`] discretizes similarity into `cells` equal buckets over
//! `[0, max_exponent]`. Multiplying in a factor with `k` spikes costs
//! `O(k * cells)`, so a query of `r` terms costs `O(r * k * cells)`
//! regardless of how many distinct exact exponents would exist — the exact
//! sparse expansion is exponential in `r` in the worst case.
//!
//! Exponents are rounded to the *lower* cell edge when mass is deposited,
//! which makes tail masses above a threshold a conservative (never
//! over-counting) approximation; the `ablation-grid` experiment quantifies
//! the error against the exact expansion.

use crate::sparse::SparsePoly;
use crate::tail::TailStats;

/// Dense probability vector over a similarity grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoly {
    /// Mass per cell; cell `i` covers exponents `[i*step, (i+1)*step)`.
    mass: Vec<f64>,
    /// Weighted mass per cell: `Σ p * exponent` of the deposits, so mean
    /// exponents stay exact even though cell membership is rounded.
    weighted: Vec<f64>,
    step: f64,
}

impl GridPoly {
    /// Creates the identity distribution (all mass at exponent 0) over
    /// `[0, max_exponent]` with `cells` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `max_exponent <= 0`.
    pub fn identity(max_exponent: f64, cells: usize) -> Self {
        assert!(cells > 0, "grid needs at least one cell");
        assert!(max_exponent > 0.0, "max_exponent must be positive");
        let mut mass = vec![0.0; cells + 1];
        let weighted = vec![0.0; cells + 1];
        mass[0] = 1.0;
        GridPoly {
            mass,
            weighted,
            step: max_exponent / cells as f64,
        }
    }

    fn cell_of(&self, exponent: f64) -> usize {
        ((exponent / self.step).floor() as usize).min(self.mass.len() - 1)
    }

    /// Convolves in one factor given as `(probability, exponent)` spikes
    /// plus an implicit remainder `1 - Σ p` at exponent 0.
    ///
    /// # Panics
    ///
    /// Panics if spike probabilities sum to more than `1 + 1e-9`.
    pub fn convolve_spikes(&mut self, spikes: &[(f64, f64)]) {
        let total: f64 = spikes.iter().map(|&(p, _)| p).sum();
        assert!(total <= 1.0 + 1e-9, "spike probabilities sum to {total}");
        let remainder = (1.0 - total).max(0.0);

        let n = self.mass.len();
        let mut new_mass = vec![0.0; n];
        let mut new_weighted = vec![0.0; n];
        for i in 0..n {
            let m = self.mass[i];
            if m == 0.0 {
                continue;
            }
            let w = self.weighted[i];
            // Remainder keeps the cell.
            new_mass[i] += m * remainder;
            new_weighted[i] += w * remainder;
            let base = i as f64 * self.step;
            for &(p, e) in spikes {
                if p == 0.0 {
                    continue;
                }
                let j = self.cell_of(base + e).min(n - 1);
                new_mass[j] += m * p;
                // True exponent bookkeeping: shift the cell's weighted mass.
                new_weighted[j] += (w + m * e) * p;
            }
        }
        self.mass = new_mass;
        self.weighted = new_weighted;
    }

    /// Convolves in a sparse factor polynomial. The factor's exponent-0
    /// term is treated as the remainder.
    pub fn convolve_factor(&mut self, factor: &SparsePoly) {
        let spikes: Vec<(f64, f64)> = factor
            .terms()
            .iter()
            .filter(|&&(e, _)| e != 0.0)
            .map(|&(e, c)| (c, e))
            .collect();
        self.convolve_spikes(&spikes);
    }

    /// Total probability mass (should be 1 up to rounding).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Tail statistics strictly above `t`, by whole cells: all cells whose
    /// lower edge exceeds `t` (mass within a straddling cell is excluded,
    /// making the tail an under- rather than over-estimate).
    pub fn tail_above(&self, t: f64) -> TailStats {
        let first = if t < 0.0 {
            0
        } else {
            (t / self.step).floor() as usize + 1
        };
        let mut mass = 0.0;
        let mut weighted = 0.0;
        for i in first..self.mass.len() {
            mass += self.mass[i];
            weighted += self.weighted[i];
        }
        TailStats {
            mass,
            weighted_mass: weighted,
        }
    }

    /// Grid resolution (cell width in exponent units).
    pub fn step(&self) -> f64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_factors() -> Vec<SparsePoly> {
        vec![
            SparsePoly::basic_factor(0.6, 2.0),
            SparsePoly::basic_factor(0.2, 1.0),
            SparsePoly::basic_factor(0.4, 2.0),
        ]
    }

    #[test]
    fn grid_matches_exact_on_integer_exponents() {
        let mut g = GridPoly::identity(5.0, 500);
        for f in paper_factors() {
            g.convolve_factor(&f);
        }
        let exact = SparsePoly::product(&paper_factors());
        for t in [0.5, 1.5, 2.5, 3.0, 4.5] {
            let a = g.tail_above(t);
            let b = exact.tail_above(t);
            assert!((a.mass - b.mass).abs() < 1e-9, "t={t}");
            assert!((a.weighted_mass - b.weighted_mass).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let mut g = GridPoly::identity(1.0, 100);
        g.convolve_spikes(&[(0.1, 0.33), (0.2, 0.77)]);
        g.convolve_spikes(&[(0.5, 0.11)]);
        assert!((g.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_mass_clamps_to_top_cell() {
        let mut g = GridPoly::identity(1.0, 10);
        g.convolve_spikes(&[(0.5, 0.9)]);
        g.convolve_spikes(&[(0.5, 0.9)]);
        // 0.25 of the mass is at exponent 1.8, clamped into the top cell.
        assert!((g.total_mass() - 1.0).abs() < 1e-12);
        let tail = g.tail_above(0.95);
        assert!(tail.mass >= 0.25 - 1e-12);
    }

    #[test]
    fn weighted_mass_tracks_true_exponents() {
        // Spikes at 0.33 land in cell floor(0.33*100)=33 but the weighted
        // mass uses the exact exponent.
        let mut g = GridPoly::identity(1.0, 100);
        g.convolve_spikes(&[(1.0, 0.333)]);
        let t = g.tail_above(0.0);
        assert!((t.mass - 1.0).abs() < 1e-12);
        assert!((t.weighted_mass - 0.333).abs() < 1e-12);
        assert!((t.avg_exponent() - 0.333).abs() < 1e-12);
    }

    #[test]
    fn tail_never_overcounts_vs_exact() {
        let factors = vec![
            SparsePoly::basic_factor(0.3, 0.21),
            SparsePoly::basic_factor(0.7, 0.13),
            SparsePoly::basic_factor(0.5, 0.42),
        ];
        let mut g = GridPoly::identity(1.0, 64);
        for f in &factors {
            g.convolve_factor(f);
        }
        let exact = SparsePoly::product(&factors);
        for i in 0..20 {
            let t = i as f64 * 0.05;
            assert!(
                g.tail_above(t).mass <= exact.tail_above(t).mass + 1e-12,
                "t={t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        GridPoly::identity(1.0, 0);
    }
}
