//! Probability generating-function machinery (Expressions (3)–(8) of the
//! paper).
//!
//! The subrange estimator forms, for each query term, a small *factor
//! polynomial* in a dummy variable `X` whose exponents are possible
//! per-term similarity contributions and whose coefficients are
//! probabilities. The product of the factors is the generating function:
//! by Proposition 1 the coefficient of `X^s` in the expanded product is the
//! probability that a random document of the database has similarity `s`
//! with the query. `est_NoDoc` and `est_AvgSim` are then tail statistics of
//! the expansion.
//!
//! Exponents here are real numbers (similarities), not integers, so this is
//! really a sparse distribution-convolution engine:
//!
//! * [`SparsePoly`] — exact expansion; terms with exponents closer than an
//!   epsilon are merged ("merging terms with the same `X^s`" in the paper).
//!   A 6-term query under the six-subrange scheme expands to at most
//!   `6^6 = 46 656` terms, comfortably exact.
//! * [`GridPoly`] — a fixed-resolution dense alternative with `O(r * G)`
//!   cost for `r` factors and `G` grid cells, for long queries; the
//!   accuracy/speed trade-off is quantified by the `poly_scaling` bench and
//!   the `ablation-grid` experiment.
//! * [`TailStats`] — `Σ a_i` and `Σ a_i b_i` over terms with `b_i > T`,
//!   the two quantities both estimators need (Equations (6) and below).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod sparse;
pub mod tail;

pub use grid::GridPoly;
pub use sparse::{SparsePoly, DEFAULT_MERGE_EPS};
pub use tail::TailStats;
