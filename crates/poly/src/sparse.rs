//! Sparse polynomials with real exponents, the exact expansion engine.

use crate::tail::TailStats;
use serde::{Deserialize, Serialize};

/// Exponents closer than this are merged into one term during
/// normalization. Similarities live in `[0, 1]`-ish ranges, so `1e-9` is far
/// below any meaningful distinction while absorbing floating-point noise
/// from summing identical products in different orders.
pub const DEFAULT_MERGE_EPS: f64 = 1e-9;

/// A polynomial `Σ a_i * X^{b_i}` with real exponents `b_i`, stored sorted
/// by ascending exponent with epsilon-distinct exponents.
///
/// For generating-function use the coefficients are probabilities (each
/// factor's coefficients sum to 1, hence so does any product's — see
/// [`SparsePoly::total_mass`]), but the type does not enforce
/// non-negativity so it can also host signed intermediate results in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsePoly {
    /// `(exponent, coefficient)`, ascending by exponent, exponents pairwise
    /// more than `eps` apart, no zero coefficients.
    terms: Vec<(f64, f64)>,
    eps: f64,
}

impl SparsePoly {
    /// The constant polynomial `1` (`1 * X^0`), identity of multiplication.
    pub fn one() -> Self {
        SparsePoly {
            terms: vec![(0.0, 1.0)],
            eps: DEFAULT_MERGE_EPS,
        }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        SparsePoly {
            terms: Vec::new(),
            eps: DEFAULT_MERGE_EPS,
        }
    }

    /// Builds a polynomial from arbitrary `(exponent, coefficient)` pairs,
    /// sorting and merging exponents within [`DEFAULT_MERGE_EPS`].
    ///
    /// # Panics
    ///
    /// Panics if any exponent or coefficient is non-finite.
    pub fn from_terms(terms: impl IntoIterator<Item = (f64, f64)>) -> Self {
        Self::from_terms_with_eps(terms, DEFAULT_MERGE_EPS)
    }

    /// [`SparsePoly::from_terms`] with an explicit merge epsilon.
    pub fn from_terms_with_eps(terms: impl IntoIterator<Item = (f64, f64)>, eps: f64) -> Self {
        let mut v: Vec<(f64, f64)> = terms.into_iter().collect();
        for &(e, c) in &v {
            assert!(e.is_finite() && c.is_finite(), "non-finite term ({e}, {c})");
        }
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite exponents"));
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(v.len());
        for (e, c) in v {
            match out.last_mut() {
                Some(last) if e - last.0 <= eps => last.1 += c,
                _ => out.push((e, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        SparsePoly { terms: out, eps }
    }

    /// The factor polynomial of the basic method, Expression (7):
    /// `p * X^{u*w} + (1 - p)`.
    pub fn basic_factor(p: f64, exponent: f64) -> Self {
        Self::from_terms([(exponent, p), (0.0, 1.0 - p)])
    }

    /// A factor from `(probability, exponent)` spikes plus a remainder
    /// `1 - Σ p_j` at exponent 0 — Expression (8) generalized to any
    /// subrange decomposition.
    ///
    /// # Panics
    ///
    /// Panics if the spike probabilities sum to more than `1 + 1e-9`.
    pub fn spike_factor(spikes: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let spikes: Vec<(f64, f64)> = spikes.into_iter().collect();
        let total: f64 = spikes.iter().map(|&(p, _)| p).sum();
        assert!(
            total <= 1.0 + 1e-9,
            "spike probabilities sum to {total} > 1"
        );
        let remainder = (1.0 - total).max(0.0);
        SparsePoly::from_terms(
            spikes
                .into_iter()
                .map(|(p, e)| (e, p))
                .chain(std::iter::once((0.0, remainder))),
        )
    }

    /// Number of stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The `(exponent, coefficient)` terms, ascending by exponent.
    pub fn terms(&self) -> &[(f64, f64)] {
        &self.terms
    }

    /// Sum of all coefficients — the value at `X = 1`. For a generating
    /// function this is the total probability mass, 1 up to rounding.
    pub fn total_mass(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c).sum()
    }

    /// Expected exponent `Σ a_i * b_i` — for a generating function, the
    /// expected similarity of a random document.
    pub fn mean_exponent(&self) -> f64 {
        self.terms.iter().map(|&(e, c)| e * c).sum()
    }

    /// Largest exponent with a nonzero coefficient, if any.
    pub fn max_exponent(&self) -> Option<f64> {
        self.terms.last().map(|&(e, _)| e)
    }

    /// Multiplies two polynomials (distribution convolution), merging
    /// exponents within this polynomial's epsilon.
    pub fn mul(&self, other: &SparsePoly) -> SparsePoly {
        if self.is_empty() || other.is_empty() {
            return SparsePoly::zero();
        }
        let mut products = Vec::with_capacity(self.terms.len() * other.terms.len());
        for &(e1, c1) in &self.terms {
            for &(e2, c2) in &other.terms {
                products.push((e1 + e2, c1 * c2));
            }
        }
        SparsePoly::from_terms_with_eps(products, self.eps)
    }

    /// Multiplies a sequence of factors together, smallest-first to keep
    /// intermediate sizes down.
    ///
    /// Returns [`SparsePoly::one`] for an empty factor list (empty query:
    /// every document has similarity 0 with certainty).
    pub fn product(factors: &[SparsePoly]) -> SparsePoly {
        let mut sorted: Vec<&SparsePoly> = factors.iter().collect();
        sorted.sort_by_key(|f| f.len());
        let mut acc = SparsePoly::one();
        for f in sorted {
            acc = acc.mul(f);
        }
        acc
    }

    /// Tail statistics strictly above threshold `t`: `Σ_{b_i > t} a_i` and
    /// `Σ_{b_i > t} a_i * b_i`.
    ///
    /// The paper's Equation (6) uses the largest `C` with `b_C > T`, i.e. a
    /// strict inequality, matching `sim(q, d) > T` in the definitions of
    /// NoDoc/AvgSim.
    pub fn tail_above(&self, t: f64) -> TailStats {
        let start = self.terms.partition_point(|&(e, _)| e <= t);
        let mut mass = 0.0;
        let mut weighted = 0.0;
        for &(e, c) in &self.terms[start..] {
            mass += c;
            weighted += e * c;
        }
        TailStats {
            mass,
            weighted_mass: weighted,
        }
    }

    /// Caps the polynomial to at most `max_terms` terms by repeatedly
    /// merging the pair of adjacent exponents that are closest together
    /// (mass-preserving: coefficients add, the merged exponent is the
    /// coefficient-weighted mean).
    ///
    /// Used as a pressure valve for very long queries when the exact
    /// expansion would explode; introduces bounded exponent error.
    pub fn compact_to(&mut self, max_terms: usize) {
        assert!(max_terms >= 1, "cannot compact to zero terms");
        while self.terms.len() > max_terms {
            // Find the adjacent pair with minimal exponent gap.
            let mut best = 0;
            let mut best_gap = f64::INFINITY;
            for i in 0..self.terms.len() - 1 {
                let gap = self.terms[i + 1].0 - self.terms[i].0;
                if gap < best_gap {
                    best_gap = gap;
                    best = i;
                }
            }
            let (e1, c1) = self.terms[best];
            let (e2, c2) = self.terms[best + 1];
            let c = c1 + c2;
            let e = if c != 0.0 {
                (e1 * c1 + e2 * c2) / c
            } else {
                e1
            };
            self.terms[best] = (e, c);
            self.terms.remove(best + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_3_1_expansion() {
        // q = (1,1,1); (p1,w1)=(0.6,2), (p2,w2)=(0.2,1), (p3,w3)=(0.4,2).
        let f1 = SparsePoly::basic_factor(0.6, 2.0);
        let f2 = SparsePoly::basic_factor(0.2, 1.0);
        let f3 = SparsePoly::basic_factor(0.4, 2.0);
        let g = SparsePoly::product(&[f1, f2, f3]);
        // Expected: 0.048 X^5 + 0.192 X^4 + 0.104 X^3 + 0.416 X^2
        //           + 0.048 X + 0.192
        let expect = [
            (0.0, 0.192),
            (1.0, 0.048),
            (2.0, 0.416),
            (3.0, 0.104),
            (4.0, 0.192),
            (5.0, 0.048),
        ];
        assert_eq!(g.len(), expect.len());
        for (got, want) in g.terms().iter().zip(expect.iter()) {
            assert!(
                (got.0 - want.0).abs() < 1e-12,
                "exponent {got:?} vs {want:?}"
            );
            assert!((got.1 - want.1).abs() < 1e-12, "coeff {got:?} vs {want:?}");
        }
        assert!((g.total_mass() - 1.0).abs() < 1e-12);

        // est_NoDoc(3, q, D) = 5 * (0.048 + 0.192) = 1.2
        let tail = g.tail_above(3.0);
        assert!((5.0 * tail.mass - 1.2).abs() < 1e-9);
        // est_AvgSim(3, q, D) = (0.048*5 + 0.192*4)/(0.048+0.192) = 4.2
        assert!((tail.avg_exponent() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn coefficient_of_x2_matches_paper_derivation() {
        // The paper: coefficient of X^2 = p1(1-p2)(1-p3) + (1-p1)(1-p2)p3
        //           = 0.6*0.8*0.6 + 0.4*0.8*0.4 = 0.416.
        let g = SparsePoly::product(&[
            SparsePoly::basic_factor(0.6, 2.0),
            SparsePoly::basic_factor(0.2, 1.0),
            SparsePoly::basic_factor(0.4, 2.0),
        ]);
        let c2 = g
            .terms()
            .iter()
            .find(|&&(e, _)| (e - 2.0).abs() < 1e-12)
            .map(|&(_, c)| c)
            .unwrap();
        assert!((c2 - 0.416).abs() < 1e-12);
    }

    #[test]
    fn one_is_multiplicative_identity() {
        let p = SparsePoly::from_terms([(0.5, 0.3), (1.0, 0.7)]);
        let q = p.mul(&SparsePoly::one());
        assert_eq!(p, q);
    }

    #[test]
    fn zero_annihilates() {
        let p = SparsePoly::from_terms([(0.5, 0.3)]);
        assert!(p.mul(&SparsePoly::zero()).is_empty());
    }

    #[test]
    fn empty_product_is_one() {
        let g = SparsePoly::product(&[]);
        assert_eq!(g, SparsePoly::one());
        assert_eq!(g.tail_above(-1.0).mass, 1.0);
        assert_eq!(g.tail_above(0.0).mass, 0.0);
    }

    #[test]
    fn merging_identical_exponents() {
        let p = SparsePoly::from_terms([(1.0, 0.25), (1.0, 0.25), (2.0, 0.5)]);
        assert_eq!(p.len(), 2);
        assert!((p.terms()[0].1 - 0.5).abs() < 1e-15);
    }

    #[test]
    fn tail_is_strictly_above() {
        let p = SparsePoly::from_terms([(0.3, 0.5), (0.5, 0.5)]);
        // Threshold exactly at an exponent: that term is excluded.
        assert!((p.tail_above(0.3).mass - 0.5).abs() < 1e-15);
        assert!((p.tail_above(0.29).mass - 1.0).abs() < 1e-15);
        assert_eq!(p.tail_above(0.5).mass, 0.0);
    }

    #[test]
    fn spike_factor_mass_and_remainder() {
        let f = SparsePoly::spike_factor([(0.1, 0.9), (0.2, 0.5), (0.1, 0.3)]);
        assert!((f.total_mass() - 1.0).abs() < 1e-12);
        // Remainder at exponent 0 is 1 - 0.4 = 0.6.
        assert!((f.terms()[0].1 - 0.6).abs() < 1e-12);
        assert_eq!(f.terms()[0].0, 0.0);
    }

    #[test]
    #[should_panic(expected = "> 1")]
    fn spike_factor_rejects_overfull() {
        SparsePoly::spike_factor([(0.7, 1.0), (0.6, 2.0)]);
    }

    #[test]
    fn product_mass_is_product_of_masses() {
        let a = SparsePoly::from_terms([(0.0, 0.4), (1.0, 0.6)]);
        let b = SparsePoly::from_terms([(0.0, 0.9), (2.0, 0.1)]);
        let g = a.mul(&b);
        assert!((g.total_mass() - 1.0).abs() < 1e-12);
        assert!((g.max_exponent().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_exponent_is_additive_over_factors() {
        // E[X+Y] = E[X] + E[Y] for independent contributions.
        let a = SparsePoly::basic_factor(0.5, 2.0); // mean 1.0
        let b = SparsePoly::basic_factor(0.25, 4.0); // mean 1.0
        let g = a.mul(&b);
        assert!((g.mean_exponent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn compact_preserves_mass_and_mean() {
        let mut g = SparsePoly::product(&[
            SparsePoly::basic_factor(0.3, 0.17),
            SparsePoly::basic_factor(0.6, 0.31),
            SparsePoly::basic_factor(0.2, 0.53),
            SparsePoly::basic_factor(0.8, 0.07),
        ]);
        let mass = g.total_mass();
        let mean = g.mean_exponent();
        g.compact_to(5);
        assert!(g.len() <= 5);
        assert!((g.total_mass() - mass).abs() < 1e-12);
        assert!((g.mean_exponent() - mean).abs() < 1e-12);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let p = SparsePoly::from_terms([(1.0, 0.0), (2.0, 1.0)]);
        assert_eq!(p.len(), 1);
    }
}
