//! Tail statistics of an expanded generating function.

use serde::{Deserialize, Serialize};

/// `Σ a_i` and `Σ a_i * b_i` over the terms with exponent above a
/// threshold — everything Equations (6)–(7) of the paper need.
///
/// Scaled by the database size `n`, `mass` becomes the estimated NoDoc and
/// `weighted_mass / mass` the estimated AvgSim.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TailStats {
    /// `Σ_{b_i > T} a_i` — probability a random document clears the
    /// threshold.
    pub mass: f64,
    /// `Σ_{b_i > T} a_i * b_i` — expected similarity contribution of the
    /// clearing documents.
    pub weighted_mass: f64,
}

impl TailStats {
    /// Average exponent of the tail, `Σ a_i b_i / Σ a_i`; 0 when the tail
    /// is empty (the estimator's convention for "no useful documents").
    pub fn avg_exponent(&self) -> f64 {
        if self.mass > 0.0 {
            self.weighted_mass / self.mass
        } else {
            0.0
        }
    }

    /// Adds another tail (used when combining disjoint document buckets,
    /// e.g. in the gGlOSS baselines).
    pub fn add(&mut self, other: TailStats) {
        self.mass += other.mass;
        self.weighted_mass += other.weighted_mass;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_of_empty_tail_is_zero() {
        assert_eq!(TailStats::default().avg_exponent(), 0.0);
    }

    #[test]
    fn avg_exponent_weighted() {
        let t = TailStats {
            mass: 0.24,
            weighted_mass: 0.048 * 5.0 + 0.192 * 4.0,
        };
        assert!((t.avg_exponent() - 4.2).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let mut a = TailStats {
            mass: 1.0,
            weighted_mass: 2.0,
        };
        a.add(TailStats {
            mass: 3.0,
            weighted_mass: 4.0,
        });
        assert_eq!(a.mass, 4.0);
        assert_eq!(a.weighted_mass, 6.0);
    }
}
