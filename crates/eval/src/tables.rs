//! Plain-text rendering of the paper's tables.

use crate::metrics::MethodResult;

fn fmt_t(t: f64) -> String {
    format!("{t:.1}")
}

/// Renders a Tables 1/3/5-style "match/mismatch" comparison: one row per
/// threshold, one `match/mismatch` column per method.
pub fn render_match_table(title: &str, results: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:>4} {:>6}", "T", "U"));
    for m in results {
        out.push_str(&format!(" {:>22}", m.method));
    }
    out.push('\n');
    let n_rows = results.first().map(|m| m.rows.len()).unwrap_or(0);
    for i in 0..n_rows {
        let base = &results[0].rows[i];
        out.push_str(&format!("{:>4} {:>6}", fmt_t(base.threshold), base.u));
        for m in results {
            let r = &m.rows[i];
            out.push_str(&format!(
                " {:>22}",
                format!("{}/{}", r.matches, r.mismatches)
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders a Tables 2/4/6-style "d-N d-S" comparison.
pub fn render_dn_ds_table(title: &str, results: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:>4} {:>6}", "T", "U"));
    for m in results {
        out.push_str(&format!(
            " {:>12} {:>8}",
            format!("{} d-N", m.method),
            "d-S"
        ));
    }
    out.push('\n');
    let n_rows = results.first().map(|m| m.rows.len()).unwrap_or(0);
    for i in 0..n_rows {
        let base = &results[0].rows[i];
        out.push_str(&format!("{:>4} {:>6}", fmt_t(base.threshold), base.u));
        for m in results {
            let r = &m.rows[i];
            out.push_str(&format!(" {:>12.2} {:>8.3}", r.d_n(), r.d_s()));
        }
        out.push('\n');
    }
    out
}

/// Renders a Tables 7–12-style compact single-method table:
/// `T  m/mis  d-N  d-S`.
pub fn render_side_by_side(title: &str, result: &MethodResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>4} {:>12} {:>8} {:>8}\n",
        "T", "m/mis", "d-N", "d-S"
    ));
    for r in &result.rows {
        out.push_str(&format!(
            "{:>4} {:>12} {:>8.2} {:>8.3}\n",
            fmt_t(r.threshold),
            format!("{}/{}", r.matches, r.mismatches),
            r.d_n(),
            r.d_s()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ThresholdRow;

    fn sample() -> Vec<MethodResult> {
        let row = |t, u, m, mis, dn, ds| ThresholdRow {
            threshold: t,
            u,
            matches: m,
            mismatches: mis,
            sum_dn: dn * u as f64,
            sum_ds: ds * u as f64,
        };
        vec![
            MethodResult {
                method: "subrange".into(),
                rows: vec![row(0.1, 1475, 1423, 13, 7.05, 0.017)],
            },
            MethodResult {
                method: "high-correlation".into(),
                rows: vec![row(0.1, 1475, 296, 35, 16.87, 0.121)],
            },
        ]
    }

    #[test]
    fn match_table_contains_fields() {
        let s = render_match_table("Table 1", &sample());
        assert!(s.contains("Table 1"));
        assert!(s.contains("1423/13"));
        assert!(s.contains("296/35"));
        assert!(s.contains("1475"));
    }

    #[test]
    fn dn_ds_table_formats_numbers() {
        let s = render_dn_ds_table("Table 2", &sample());
        assert!(s.contains("7.05"));
        assert!(s.contains("0.017"));
        assert!(s.contains("16.87"));
    }

    #[test]
    fn side_by_side_single_method() {
        let s = render_side_by_side("Table 7", &sample()[0]);
        assert!(s.contains("1423/13"));
        assert!(s.contains("0.1"));
    }

    #[test]
    fn empty_results_render_headers_only() {
        let s = render_match_table("empty", &[]);
        assert!(s.contains("empty"));
        assert!(s.contains('U'));
    }
}
