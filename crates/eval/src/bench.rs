//! Machine-readable broker benchmark (`repro bench-broker`).
//!
//! Runs a full metasearch workload — build the 53 topic databases,
//! register them with a broker (which builds their representatives),
//! then estimate / select / search a slice of the SIFT-style query log —
//! and reports per-phase wall-clock alongside the observability
//! counters the run produced. The report serializes to the JSON file
//! `BENCH_broker.json` so dashboards and regression scripts can diff
//! runs without scraping stdout.
//!
//! With `--remote` (see [`run_broker_bench_remote`]) every database is
//! served by its own loopback [`seu_net::EngineServer`] and registered
//! over TCP, so the report additionally carries the `net_*` counter
//! deltas (frames, bytes, RPC retries/timeouts) and the phase timings
//! price in the full frame/handshake round trips — the cost of the
//! distributed deployment relative to the in-process one, same workload,
//! same seed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use seu_core::SubrangeEstimator;
use seu_corpus::queries::QueryLogSpec;
use seu_corpus::SyntheticCorpus;
use seu_engine::SearchEngine;
use seu_metasearch::{Broker, SearchRequest, SelectionPolicy};
use seu_obs::json;

/// One timed phase of the benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPhase {
    /// Phase name (`build_databases`, `register`, `estimate`, `select`,
    /// `search`, `plan`, `dispatch`, with `engines > 0` the
    /// large-registry phases `large_build`, `large_register`,
    /// `large_plan`, `large_execute`, and with `store` the boot-time
    /// phases `store_setup`, `store_rebuild`, `store_restore`).
    pub name: &'static str,
    /// Wall-clock spent in the phase.
    pub seconds: f64,
    /// Work items processed (databases or queries).
    pub items: u64,
}

/// Configuration for [`run_broker_bench_config`]. The plain
/// [`run_broker_bench`] / [`run_broker_bench_remote`] entry points are
/// shorthands for the flat single-shard workload.
#[derive(Debug, Clone)]
pub struct BrokerBenchConfig {
    /// RNG seed for corpus and query-log generation.
    pub seed: u64,
    /// Database size scale, as in [`seu_corpus::many_databases`].
    pub docs_base: usize,
    /// Query-log slice driven through each query phase.
    pub n_queries: usize,
    /// Serve every database over loopback TCP instead of in process.
    pub remote: bool,
    /// Registry shard count for every broker the bench builds
    /// (1 = flat).
    pub shards: usize,
    /// When non-zero, a second broker is loaded with this many tiny
    /// engines and timed separately (`large_*` phases) — the 10k-engine
    /// registry scaling story.
    pub engines: usize,
    /// Measure tracing overhead: re-run the dispatch workload with
    /// sampling off (`dispatch_untraced`) and at the default 1-in-64
    /// rate (`dispatch_sampled`), reporting the percentage difference
    /// as `trace_overhead_pct`.
    pub trace_sample: bool,
    /// When set, run the Zipf-traffic cache phases: a seeded Zipf(s)
    /// stream over the query pool is executed twice on a dedicated
    /// cache-enabled broker — once forcing the cold path (`zipf_cold`,
    /// `CacheMode::Bypass`) and once through the cache (`zipf_cached`) —
    /// reporting `zipf_hit_rate` and `hot_query_speedup`.
    pub zipf: Option<f64>,
    /// Disable the query cache on the Zipf broker (the `--no-cache`
    /// baseline): the `zipf_cached` phase then runs cold too, so hit
    /// rate reads 0 and the speedup collapses to ~1.
    pub no_cache: bool,
    /// Remote-only concurrency axis: for each entry `n`, hammer one
    /// loopback engine with `n` client threads through both schedulers —
    /// the event-loop server with the multiplexing connection pool
    /// (`mux_cN` phase) and the thread-per-connection server with a
    /// connection-per-call client (`threaded_cN` phase) — and report
    /// both throughputs as a [`ConcurrencyPoint`]. Empty skips the axis.
    pub concurrency: Vec<usize>,
    /// When set, run the federation phases: every database goes behind
    /// its own loopback engine server, and the same workload is driven
    /// through two front-door clusters — one over a single broker
    /// replica, one over `replicas` — each replica a
    /// [`seu_net::ReplicaServer`] pinned to **one** worker, so cluster
    /// throughput models per-replica capacity rather than host cores.
    /// 256 concurrent clients hammer each cluster
    /// (`federated_single` / `federated_cluster` phases), reporting
    /// `federated_single_rps`, `federated_rps`, and their ratio
    /// `federated_speedup`. Before the hammer, the run asserts the
    /// federated responses are bit-identical to a flat single-broker
    /// control over the same engine servers.
    pub federated: bool,
    /// Replica count for the `federated_cluster` phase (minimum 1;
    /// default 4).
    pub replicas: usize,
    /// When set, run the persistent-store phases: build a pool of tiny
    /// engines (`store_setup`), cold-boot a store-backed broker by
    /// registering them all and committing a snapshot
    /// (`store_rebuild` → `registry_rebuild_secs`), then warm-boot a
    /// second broker from the manifest alone via restore + hydrate
    /// (`store_restore` → `registry_restore_secs`). The pool is
    /// `engines` tiny engines (1024 when `engines` is 0), and the run
    /// asserts the restored estimates are bit-identical to the
    /// rebuilt broker's.
    pub store: bool,
}

impl BrokerBenchConfig {
    /// Flat, in-process, no large-registry phases.
    pub fn new(seed: u64, docs_base: usize, n_queries: usize) -> Self {
        BrokerBenchConfig {
            seed,
            docs_base,
            n_queries,
            remote: false,
            shards: 1,
            engines: 0,
            trace_sample: false,
            zipf: None,
            no_cache: false,
            concurrency: Vec::new(),
            federated: false,
            replicas: 4,
            store: false,
        }
    }
}

/// One point on the remote concurrency axis: requests per second through
/// each scheduler at a given client-thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyPoint {
    /// Concurrent client threads driving the workload.
    pub clients: usize,
    /// Throughput through the event-loop server with the multiplexing
    /// connection pool (successful requests / wall-clock seconds).
    pub multiplexed_rps: f64,
    /// Throughput through the thread-per-connection server with a
    /// connection-per-call client.
    pub threaded_rps: f64,
}

/// The benchmark report: configuration, per-phase timings, and the
/// counter deltas the run generated.
#[derive(Debug, Clone)]
pub struct BrokerBenchReport {
    /// RNG seed the workload was generated from.
    pub seed: u64,
    /// Number of databases registered with the broker.
    pub databases: usize,
    /// Number of queries driven through each phase.
    pub queries: usize,
    /// Similarity threshold used for estimate/select/search.
    pub threshold: f64,
    /// Whether databases were served over loopback TCP instead of
    /// registered in process.
    pub remote: bool,
    /// Registry shard count the brokers ran with.
    pub shards: usize,
    /// Tiny engines loaded for the `large_*` phases (0 when skipped).
    pub large_engines: usize,
    /// Dispatch overhead of default 1-in-64 trace sampling relative to
    /// sampling off, in percent (`None` unless the config asked for the
    /// `trace_sample` phases).
    pub trace_overhead_pct: Option<f64>,
    /// Zipf exponent of the cache phases (`None` when they were
    /// skipped).
    pub zipf: Option<f64>,
    /// Query-cache hit rate over the `zipf_cached` phase (hits /
    /// lookups; `None` without the Zipf phases).
    pub zipf_hit_rate: Option<f64>,
    /// Wall-clock ratio `zipf_cold / zipf_cached` — how much faster the
    /// skewed stream runs with the cache on (`None` without the Zipf
    /// phases).
    pub hot_query_speedup: Option<f64>,
    /// Wall-clock of the cold boot in the store phases — registering
    /// every pool engine with a store-backed broker (representative
    /// construction + write-through) and committing the snapshot
    /// (`None` unless the config asked for the `store` phases).
    pub registry_rebuild_secs: Option<f64>,
    /// Wall-clock of the warm boot — restoring the same registry from
    /// the committed manifest and hydrating every entry from the stored
    /// representatives (`None` without the store phases).
    pub registry_restore_secs: Option<f64>,
    /// Replica count of the federated phases (0 when they were
    /// skipped).
    pub federated_replicas: usize,
    /// Throughput of 256 clients through the single-replica front-door
    /// (`None` without the federated phases).
    pub federated_single_rps: Option<f64>,
    /// Throughput of 256 clients through the `federated_replicas`-way
    /// front-door (`None` without the federated phases).
    pub federated_rps: Option<f64>,
    /// `federated_rps / federated_single_rps` — the cluster scaling the
    /// CI gate checks (`None` without the federated phases).
    pub federated_speedup: Option<f64>,
    /// Remote concurrency-axis results, one per configured client count
    /// (empty when the axis was skipped).
    pub concurrency: Vec<ConcurrencyPoint>,
    /// Timed phases, in execution order.
    pub phases: Vec<BenchPhase>,
    /// Counter increments attributable to this run (global counter
    /// values after minus before, so a bench inside a longer process
    /// reports only its own work).
    pub counters: BTreeMap<String, u64>,
}

impl BrokerBenchReport {
    /// Serializes the report as a pretty-printed JSON document, with the
    /// full metrics snapshot embedded under `"metrics"`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"broker\",\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"databases\": {},", self.databases);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"remote\": {},", self.remote);
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"large_engines\": {},", self.large_engines);
        let _ = writeln!(
            out,
            "  \"federated_replicas\": {},",
            self.federated_replicas
        );
        match self.trace_overhead_pct {
            Some(pct) => {
                out.push_str("  \"trace_overhead_pct\": ");
                json::write_num(&mut out, pct);
                out.push_str(",\n");
            }
            None => out.push_str("  \"trace_overhead_pct\": null,\n"),
        }
        for (name, value) in [
            ("zipf", self.zipf),
            ("zipf_hit_rate", self.zipf_hit_rate),
            ("hot_query_speedup", self.hot_query_speedup),
            ("registry_rebuild_secs", self.registry_rebuild_secs),
            ("registry_restore_secs", self.registry_restore_secs),
            ("federated_single_rps", self.federated_single_rps),
            ("federated_rps", self.federated_rps),
            ("federated_speedup", self.federated_speedup),
        ] {
            match value {
                Some(v) => {
                    let _ = write!(out, "  \"{name}\": ");
                    json::write_num(&mut out, v);
                    out.push_str(",\n");
                }
                None => {
                    let _ = writeln!(out, "  \"{name}\": null,");
                }
            }
        }
        out.push_str("  \"concurrency\": [");
        for (i, p) in self.concurrency.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"clients\": {}, \"multiplexed_rps\": ", p.clients);
            json::write_num(&mut out, p.multiplexed_rps);
            out.push_str(", \"threaded_rps\": ");
            json::write_num(&mut out, p.threaded_rps);
            out.push('}');
        }
        out.push_str("],\n");
        out.push_str("  \"threshold\": ");
        json::write_num(&mut out, self.threshold);
        out.push_str(",\n  \"phases\": [\n");
        for (i, phase) in self.phases.iter().enumerate() {
            out.push_str("    {\"name\": ");
            json::write_escaped(&mut out, phase.name);
            out.push_str(", \"seconds\": ");
            json::write_num(&mut out, phase.seconds);
            let _ = write!(out, ", \"items\": {}}}", phase.items);
            out.push_str(if i + 1 < self.phases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"counters\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            let _ = write!(out, ": {value}");
            out.push_str(if i + 1 < self.counters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  },\n  \"metrics\": ");
        // Reindent the embedded snapshot so the document stays readable.
        let snapshot = seu_obs::global().snapshot().to_json();
        out.push_str(&snapshot.trim_end().replace('\n', "\n  "));
        out.push_str("\n}\n");
        out
    }

    /// Human-readable phase table for the terminal.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "broker bench{}: {} databases, {} queries, threshold {} (seed {}, {} shard{})",
            if self.remote { " (remote)" } else { "" },
            self.databases,
            self.queries,
            self.threshold,
            self.seed,
            self.shards,
            if self.shards == 1 { "" } else { "s" },
        );
        if self.large_engines > 0 {
            let _ = writeln!(
                out,
                "  large-registry phases: {} engines",
                self.large_engines
            );
        }
        if let Some(pct) = self.trace_overhead_pct {
            let _ = writeln!(out, "  trace sampling overhead: {pct:+.2}% on dispatch");
        }
        if let Some(s) = self.zipf {
            let _ = writeln!(
                out,
                "  zipf(s={s}) cache phases: hit rate {:.1}%, hot-query speedup {:.2}x",
                self.zipf_hit_rate.unwrap_or(0.0) * 100.0,
                self.hot_query_speedup.unwrap_or(1.0),
            );
        }
        if let (Some(rebuild), Some(restore)) =
            (self.registry_rebuild_secs, self.registry_restore_secs)
        {
            let _ = writeln!(
                out,
                "  store registry: rebuild {rebuild:.4}s, restore {restore:.4}s ({:.1}x faster)",
                rebuild / restore.max(1e-12),
            );
        }
        if self.federated_replicas > 0 {
            let _ = writeln!(
                out,
                "  federated ({} replicas, 256 clients): single {:.1} req/s, cluster {:.1} req/s ({:.2}x)",
                self.federated_replicas,
                self.federated_single_rps.unwrap_or(0.0),
                self.federated_rps.unwrap_or(0.0),
                self.federated_speedup.unwrap_or(0.0),
            );
        }
        for p in &self.concurrency {
            let _ = writeln!(
                out,
                "  concurrency {:>4} clients: multiplexed {:>9.1} req/s, thread-per-conn {:>9.1} req/s",
                p.clients, p.multiplexed_rps, p.threaded_rps
            );
        }
        let _ = writeln!(out, "  {:<16} {:>10} {:>8}", "phase", "seconds", "items");
        for phase in &self.phases {
            let _ = writeln!(
                out,
                "  {:<16} {:>10.4} {:>8}",
                phase.name, phase.seconds, phase.items
            );
        }
        out
    }
}

/// Runs the broker benchmark. `docs_base` scales database sizes exactly
/// as in [`seu_corpus::many_databases`] (the paper-scale run uses 120);
/// `n_queries` caps the query-log slice driven through the broker.
pub fn run_broker_bench(seed: u64, docs_base: usize, n_queries: usize) -> BrokerBenchReport {
    run_broker_bench_config(&BrokerBenchConfig::new(seed, docs_base, n_queries))
}

/// [`run_broker_bench`] with every database behind its own loopback
/// TCP engine server: a `serve` phase starts the servers, registration
/// fetches snapshots over the wire, and the search/dispatch phases pay
/// real frame round trips. The counter deltas then include the `net_*`
/// family.
pub fn run_broker_bench_remote(seed: u64, docs_base: usize, n_queries: usize) -> BrokerBenchReport {
    run_broker_bench_config(&BrokerBenchConfig {
        remote: true,
        ..BrokerBenchConfig::new(seed, docs_base, n_queries)
    })
}

/// Runs the broker benchmark as described by `cfg`: optionally remote,
/// optionally sharded, and — when `cfg.engines > 0` — with the
/// large-registry phases that time a broker holding that many tiny
/// engines (build, register, plan, execute), the workload the sharded
/// registry exists for.
pub fn run_broker_bench_config(cfg: &BrokerBenchConfig) -> BrokerBenchReport {
    let BrokerBenchConfig {
        seed,
        docs_base,
        n_queries,
        remote,
        ..
    } = *cfg;
    let threshold = 0.15;
    let before = seu_obs::global().snapshot().counters;
    let mut phases = Vec::new();

    let start = Instant::now();
    let mut databases = seu_corpus::many_databases(seed, docs_base);
    phases.push(BenchPhase {
        name: "build_databases",
        seconds: start.elapsed().as_secs_f64(),
        items: databases.len() as u64,
    });
    let n_databases = databases.len();

    let queries: Vec<String> = SyntheticCorpus::standard()
        .generate_query_log(&QueryLogSpec {
            n_queries,
            ..QueryLogSpec::paper_default(seed ^ 0x5157)
        })
        .iter()
        .map(|q| q.join(" "))
        .collect();

    // The per-phase broker runs with the query cache disabled so every
    // phase measures the cold pipeline (estimate/select/search/plan/
    // dispatch repeat the same queries — a cache would let later phases
    // coast on earlier ones). The cache gets its own phases below.
    let broker = Broker::builder(SubrangeEstimator::paper_six_subrange())
        .shards(cfg.shards)
        .cache_bytes(0)
        .build();
    let mut timed = |name: &'static str, items: u64, work: &mut dyn FnMut()| -> f64 {
        let start = Instant::now();
        work();
        let seconds = start.elapsed().as_secs_f64();
        phases.push(BenchPhase {
            name,
            seconds,
            items,
        });
        seconds
    };
    // In remote mode every database gets its own loopback engine server;
    // the servers must outlive the query phases, so they are held here.
    let mut servers: Vec<seu_net::EngineServer> = Vec::new();
    if remote {
        timed("serve", n_databases as u64, &mut || {
            for (name, coll) in databases.drain(..) {
                servers.push(
                    seu_net::EngineServer::bind(name, SearchEngine::new(coll), "127.0.0.1:0")
                        .expect("binding a loopback engine server"),
                );
            }
        });
        timed("register", n_databases as u64, &mut || {
            for server in &servers {
                let client = seu_net::RemoteEngine::new(server.addr()).expect("resolving loopback");
                broker
                    .register_remote(std::sync::Arc::new(client))
                    .expect("registering a loopback engine");
            }
        });
        // The batched-estimate win in isolation: the same oracle slice
        // asked one request per query versus one frame for all of them.
        let oracle =
            seu_net::RemoteEngine::new(servers[0].addr()).expect("resolving loopback oracle");
        let oracle_queries: Vec<String> = queries.iter().take(16).cloned().collect();
        timed("oracle_per_query", oracle_queries.len() as u64, &mut || {
            for q in &oracle_queries {
                let _ = seu_metasearch::RemoteTransport::true_usefulness(&oracle, q, threshold);
            }
        });
        timed("oracle_batched", oracle_queries.len() as u64, &mut || {
            let _ = seu_metasearch::RemoteTransport::true_usefulness_batch(
                &oracle,
                &oracle_queries,
                threshold,
            );
        });
    } else {
        timed("register", n_databases as u64, &mut || {
            for (name, coll) in databases.drain(..) {
                broker.register(&name, SearchEngine::new(coll));
            }
        });
    }
    timed("estimate", queries.len() as u64, &mut || {
        for q in &queries {
            broker.estimate_all(q, threshold);
        }
    });
    timed("select", queries.len() as u64, &mut || {
        for q in &queries {
            broker.select(q, threshold, SelectionPolicy::EstimatedUseful);
        }
    });
    timed("search", queries.len() as u64, &mut || {
        for q in &queries {
            broker.search(q, threshold, SelectionPolicy::EstimatedUseful);
        }
    });
    // The pipeline split: planning (analysis + estimation + selection)
    // versus dispatch (worker-pool fan-out + merge), so regressions in
    // either half show up separately.
    timed("plan", queries.len() as u64, &mut || {
        for q in &queries {
            broker.plan(
                &SearchRequest::new(q)
                    .threshold(threshold)
                    .policy(SelectionPolicy::EstimatedUseful),
                None,
            );
        }
    });
    timed("dispatch", queries.len() as u64, &mut || {
        for q in &queries {
            broker.execute(
                &SearchRequest::new(q)
                    .threshold(threshold)
                    .policy(SelectionPolicy::EstimatedUseful),
            );
        }
    });

    // Tracing-overhead phases: the same dispatch workload with head
    // sampling forced off, then at the default 1-in-64 rate. The two
    // modes share the warmed broker, so the delta isolates the tracing
    // layer itself (id allocation, sampling decision, span recording).
    // The workload is milliseconds long, so a single pair of runs is
    // dominated by scheduler jitter; each mode runs four times
    // interleaved and the minimums are compared — noise only ever adds
    // time, so the min is the best estimate of the true floor.
    let mut trace_overhead_pct = None;
    if cfg.trace_sample {
        let tracer = seu_obs::tracer();
        let saved_rate = tracer.sample_rate();
        let mut dispatch_all = || {
            for q in &queries {
                broker.execute(
                    &SearchRequest::new(q)
                        .threshold(threshold)
                        .policy(SelectionPolicy::EstimatedUseful),
                );
            }
        };
        let mut best_untraced = f64::INFINITY;
        let mut best_sampled = f64::INFINITY;
        for _ in 0..3 {
            tracer.set_sample_rate(0);
            let start = Instant::now();
            dispatch_all();
            best_untraced = best_untraced.min(start.elapsed().as_secs_f64());
            tracer.set_sample_rate(seu_obs::trace::DEFAULT_SAMPLE_RATE);
            let start = Instant::now();
            dispatch_all();
            best_sampled = best_sampled.min(start.elapsed().as_secs_f64());
        }
        tracer.set_sample_rate(0);
        best_untraced = best_untraced.min(timed(
            "dispatch_untraced",
            queries.len() as u64,
            &mut dispatch_all,
        ));
        tracer.set_sample_rate(seu_obs::trace::DEFAULT_SAMPLE_RATE);
        best_sampled = best_sampled.min(timed(
            "dispatch_sampled",
            queries.len() as u64,
            &mut dispatch_all,
        ));
        tracer.set_sample_rate(saved_rate);
        if best_untraced > 0.0 {
            trace_overhead_pct = Some((best_sampled - best_untraced) / best_untraced * 100.0);
        }
    }

    // Large-registry phases: a separate broker loaded with cfg.engines
    // tiny collections. Registration and planning here are dominated by
    // registry traversal, not per-document work — exactly what shard
    // count changes.
    if cfg.engines > 0 {
        let large = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(cfg.shards)
            .cache_bytes(0)
            .build();
        let mut tiny: Vec<(String, SearchEngine)> = Vec::with_capacity(cfg.engines);
        timed("large_build", cfg.engines as u64, &mut || {
            tiny = (0..cfg.engines).map(|i| tiny_engine(seed, i)).collect();
        });
        timed("large_register", cfg.engines as u64, &mut || {
            for (name, engine) in tiny.drain(..) {
                large.register(&name, engine);
            }
        });
        // A handful of queries is enough: each plan walks all
        // cfg.engines representatives.
        let slice: Vec<&String> = queries.iter().take(4).collect();
        timed("large_plan", slice.len() as u64, &mut || {
            for q in &slice {
                large.plan(
                    &SearchRequest::new(*q)
                        .threshold(threshold)
                        .policy(SelectionPolicy::EstimatedUseful),
                    None,
                );
            }
        });
        timed("large_execute", slice.len() as u64, &mut || {
            for q in &slice {
                large.execute(
                    &SearchRequest::new(*q)
                        .threshold(threshold)
                        .policy(SelectionPolicy::EstimatedUseful),
                );
            }
        });
    }

    // Persistent-store phases: cold boot versus warm boot of the same
    // registry. The cold boot registers every pool engine with a
    // store-backed broker — representative construction plus the
    // write-through — and commits the snapshot; the warm boot rebuilds
    // the registry from the committed manifest and hydrates every entry
    // from the stored quantized records, never touching a collection.
    // Both brokers are store-backed, so both hold canonical (quantized
    // round-trip) representatives and their estimates must agree to the
    // bit — asserted here so the bench doubles as a conformance check
    // at scale.
    let mut registry_rebuild_secs = None;
    let mut registry_restore_secs = None;
    if cfg.store {
        let pool = if cfg.engines > 0 { cfg.engines } else { 1024 };
        let store_dir =
            std::env::temp_dir().join(format!("seu-bench-store-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        let mut pool_engines: Vec<(String, SearchEngine)> = Vec::with_capacity(pool);
        timed("store_setup", pool as u64, &mut || {
            pool_engines = (0..pool).map(|i| tiny_engine(seed, i)).collect();
        });
        let rebuilt = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(cfg.shards)
            .cache_bytes(0)
            .store(&store_dir)
            .expect("opening the bench store")
            .build();
        registry_rebuild_secs = Some(timed("store_rebuild", pool as u64, &mut || {
            for (name, engine) in pool_engines.drain(..) {
                rebuilt.register(&name, engine);
            }
            rebuilt
                .snapshot_registry()
                .expect("committing the bench snapshot");
        }));
        let restored = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .shards(cfg.shards)
            .cache_bytes(0)
            .store(&store_dir)
            .expect("reopening the bench store")
            .build();
        registry_restore_secs = Some(timed("store_restore", pool as u64, &mut || {
            let n = restored.restore().expect("restoring the bench registry");
            assert_eq!(n, pool, "restore must rebuild the full registry");
            restored.hydrate();
        }));
        for q in queries.iter().take(4) {
            let a = rebuilt.estimate_all(q, threshold);
            let b = restored.estimate_all(q, threshold);
            assert_eq!(a.len(), b.len(), "estimate counts diverge after restore");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.engine, y.engine, "engine order diverges after restore");
                assert_eq!(
                    x.usefulness.no_doc.to_bits(),
                    y.usefulness.no_doc.to_bits(),
                    "restored NoDoc for {} is not bit-identical",
                    x.engine
                );
                assert_eq!(
                    x.usefulness.avg_sim.to_bits(),
                    y.usefulness.avg_sim.to_bits(),
                    "restored AvgSim for {} is not bit-identical",
                    x.engine
                );
            }
        }
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    // Remote concurrency axis: the same single-engine request hammer
    // through both schedulers at each configured client count. The
    // multiplexed side shares one pooled client across every thread
    // (frames interleave on few connections); the baseline pairs the
    // thread-per-connection server with a connection-per-call client —
    // the pre-pool deployment. Phase names are leaked once per point;
    // the axis is a handful of values, not a hot path.
    let mut concurrency_points: Vec<ConcurrencyPoint> = Vec::new();
    if remote && !cfg.concurrency.is_empty() {
        let first_collection = || {
            seu_corpus::many_databases(seed, docs_base)
                .into_iter()
                .next()
                .expect("the generator yields at least one database")
                .1
        };
        let mux_server = seu_net::EngineServer::bind(
            "bench-mux",
            SearchEngine::new(first_collection()),
            "127.0.0.1:0",
        )
        .expect("binding the event-loop bench server");
        let threaded_server = seu_net::EngineServer::bind_with(
            "bench-threaded",
            SearchEngine::new(first_collection()),
            "127.0.0.1:0",
            seu_net::ServerConfig {
                mode: seu_net::ServerMode::ThreadPerConnection,
                ..seu_net::ServerConfig::default()
            },
        )
        .expect("binding the thread-per-connection bench server");
        let mux_client =
            seu_net::RemoteEngine::new(mux_server.addr()).expect("resolving the mux server");
        let threaded_client = seu_net::RemoteEngine::new(threaded_server.addr())
            .expect("resolving the threaded server")
            .connection_per_call(true);
        for &n in &cfg.concurrency {
            let clients = n.max(1);
            let total = (clients * 16).max(256);
            let mux_name: &'static str = Box::leak(format!("mux_c{clients}").into_boxed_str());
            let threaded_name: &'static str =
                Box::leak(format!("threaded_c{clients}").into_boxed_str());
            let mut mux_ok = 0u64;
            let mux_seconds = timed(mux_name, total as u64, &mut || {
                mux_ok = hammer(&mux_client, clients, total, &queries, threshold);
            });
            let mut threaded_ok = 0u64;
            let threaded_seconds = timed(threaded_name, total as u64, &mut || {
                threaded_ok = hammer(&threaded_client, clients, total, &queries, threshold);
            });
            concurrency_points.push(ConcurrencyPoint {
                clients,
                multiplexed_rps: if mux_seconds > 0.0 {
                    mux_ok as f64 / mux_seconds
                } else {
                    0.0
                },
                threaded_rps: if threaded_seconds > 0.0 {
                    threaded_ok as f64 / threaded_seconds
                } else {
                    0.0
                },
            });
        }
    }

    // Zipf-traffic cache phases: a dedicated broker (cache on unless
    // --no-cache) serves the same seeded Zipf stream twice. The cold
    // pass forces `CacheMode::Bypass` per request, the cached pass runs
    // the default read-write mode; their wall-clock ratio is the
    // hot-query speedup, and the hit rate comes from the broker's own
    // cache counters (delta around the cached pass). The stream is 4x
    // the pool, so even a perfectly cold first touch of every pool
    // entry leaves a 75% ceiling for the hit rate.
    let mut zipf_hit_rate = None;
    let mut hot_query_speedup = None;
    if let Some(s) = cfg.zipf {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use seu_corpus::ZipfSampler;
        use seu_metasearch::CacheMode;

        let mut zipf_builder =
            Broker::builder(SubrangeEstimator::paper_six_subrange()).shards(cfg.shards);
        if cfg.no_cache {
            zipf_builder = zipf_builder.cache_bytes(0);
        }
        let zbroker = zipf_builder.build();
        timed("zipf_setup", n_databases as u64, &mut || {
            if remote {
                for server in &servers {
                    let client =
                        seu_net::RemoteEngine::new(server.addr()).expect("resolving loopback");
                    zbroker
                        .register_remote(std::sync::Arc::new(client))
                        .expect("registering a loopback engine");
                }
            } else {
                // The generator is deterministic, so this rebuilds the
                // exact databases the main broker consumed.
                for (name, coll) in seu_corpus::many_databases(seed, docs_base) {
                    zbroker.register(&name, SearchEngine::new(coll));
                }
            }
        });
        let sampler = ZipfSampler::new(queries.len().max(1), s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a1f);
        let stream: Vec<&String> = (0..queries.len() * 4)
            .map(|_| &queries[sampler.sample(&mut rng)])
            .collect();
        let request = |q: &str, mode: CacheMode| {
            SearchRequest::new(q)
                .threshold(threshold)
                .policy(SelectionPolicy::EstimatedUseful)
                .cache(mode)
        };
        let cold_seconds = timed("zipf_cold", stream.len() as u64, &mut || {
            for q in &stream {
                zbroker.execute(&request(q, CacheMode::Bypass));
            }
        });
        // Hit rate is request-level: the share of the cached pass served
        // from any cache tier (first touches of each pool entry are the
        // unavoidable misses — the 4x stream caps them at 25%).
        let mut served = 0u64;
        let cached_seconds = timed("zipf_cached", stream.len() as u64, &mut || {
            for q in &stream {
                if zbroker
                    .execute(&request(q, CacheMode::ReadWrite))
                    .served_from
                    .is_some()
                {
                    served += 1;
                }
            }
        });
        zipf_hit_rate = Some(if stream.is_empty() {
            0.0
        } else {
            served as f64 / stream.len() as f64
        });
        hot_query_speedup = Some(if cached_seconds > 0.0 {
            cold_seconds / cached_seconds
        } else {
            1.0
        });
    }

    // The federated phases stand up a miniature two-tier cluster on
    // loopback: every database behind its own engine server, replica
    // brokers behind `ReplicaServer`s pinned to ONE compute worker each
    // (so the host's core count doesn't flatter the scaling number),
    // and a front-door placing engines across them. Before any timing,
    // the federated answers are asserted bit-identical to a flat
    // control broker over the same servers — a throughput number for a
    // cluster that answers differently would be meaningless.
    let mut federated_single_rps = None;
    let mut federated_rps = None;
    let mut federated_speedup = None;
    if cfg.federated {
        use seu_metasearch::federation::{EngineSource, FrontDoor, FrontDoorConfig};
        use seu_net::{RemoteReplica, ReplicaServer, ReplicaServerConfig};

        let mut fed_servers: Vec<(String, seu_net::EngineServer)> = Vec::new();
        timed("federated_serve", n_databases as u64, &mut || {
            // Deterministic generator: these are the exact databases
            // the main broker consumed, now each on its own socket.
            for (name, coll) in seu_corpus::many_databases(seed, docs_base) {
                let server =
                    seu_net::EngineServer::bind(&name, SearchEngine::new(coll), "127.0.0.1:0")
                        .expect("binding a federated engine server");
                fed_servers.push((name, server));
            }
        });

        // The flat control broker over the same servers, registered in
        // the same global order the front-door will use.
        let control = Broker::builder(SubrangeEstimator::paper_six_subrange())
            .cache_bytes(0)
            .build();
        for (_, server) in &fed_servers {
            let client = seu_net::RemoteEngine::new(server.addr()).expect("resolving loopback");
            control
                .register_remote(std::sync::Arc::new(client))
                .expect("registering a control engine");
        }

        let build_cluster = |n: usize| -> (Vec<ReplicaServer>, FrontDoor) {
            let fd = FrontDoor::new(FrontDoorConfig::default());
            let mut replica_servers = Vec::new();
            for i in 0..n {
                let broker = std::sync::Arc::new(
                    Broker::builder(SubrangeEstimator::paper_six_subrange())
                        .cache_bytes(0)
                        .build(),
                );
                let server = ReplicaServer::bind_with(
                    &format!("replica-{i}"),
                    broker,
                    "127.0.0.1:0",
                    ReplicaServerConfig { workers: 1 },
                )
                .expect("binding a replica server");
                let client = RemoteReplica::new(server.addr()).expect("dialing a replica");
                fd.add_replica(&format!("replica-{i}"), std::sync::Arc::new(client));
                replica_servers.push(server);
            }
            for (name, server) in &fed_servers {
                fd.register_engine(
                    name,
                    EngineSource::Remote {
                        endpoint: server.addr().to_string(),
                    },
                )
                .expect("placing an engine on the cluster");
            }
            (replica_servers, fd)
        };
        let assert_conformant = |fd: &FrontDoor, label: &str| {
            for q in queries.iter().take(4) {
                let req = SearchRequest::new(q)
                    .threshold(threshold)
                    .policy(SelectionPolicy::EstimatedUseful)
                    .with_estimates(true);
                let (fed, report) = fd.execute_with_report(&req);
                assert!(
                    report.failures.is_empty() && report.unresolved.is_empty(),
                    "{label}: degradation on a healthy cluster: {report:?}"
                );
                assert_bit_identical(&control.execute(&req), &fed, label, q);
            }
        };

        let replicas = cfg.replicas.max(1);
        let total = queries.len().max(1) * 64;
        let fed_clients = 256.min(total.max(1));

        // Single-replica baseline: the same protocol and placement
        // machinery, one compute worker.
        let (single_servers, single_fd) = build_cluster(1);
        assert_conformant(&single_fd, "federated_single");
        let single_seconds = timed("federated_single", total as u64, &mut || {
            hammer_front_door(&single_fd, fed_clients, total, &queries, threshold);
        });
        drop(single_fd);
        drop(single_servers);

        let (cluster_servers, cluster_fd) = build_cluster(replicas);
        assert_conformant(&cluster_fd, "federated_cluster");
        let cluster_seconds = timed("federated_cluster", total as u64, &mut || {
            hammer_front_door(&cluster_fd, fed_clients, total, &queries, threshold);
        });
        drop(cluster_fd);
        drop(cluster_servers);

        let single = total as f64 / single_seconds.max(f64::EPSILON);
        let clustered = total as f64 / cluster_seconds.max(f64::EPSILON);
        federated_single_rps = Some(single);
        federated_rps = Some(clustered);
        federated_speedup = Some(clustered / single.max(f64::EPSILON));
    }

    let after = seu_obs::global().snapshot().counters;
    let counters = after
        .into_iter()
        .filter_map(|(name, value)| {
            let delta = value - before.get(&name).copied().unwrap_or(0);
            (delta > 0).then_some((name, delta))
        })
        .collect();

    BrokerBenchReport {
        seed,
        databases: n_databases,
        queries: queries.len(),
        threshold,
        remote,
        shards: cfg.shards.max(1),
        large_engines: cfg.engines,
        trace_overhead_pct,
        zipf: cfg.zipf,
        zipf_hit_rate,
        hot_query_speedup,
        registry_rebuild_secs,
        registry_restore_secs,
        federated_replicas: if cfg.federated {
            cfg.replicas.max(1)
        } else {
            0
        },
        federated_single_rps,
        federated_rps,
        federated_speedup,
        concurrency: concurrency_points,
        phases,
        counters,
    }
}

/// Panics unless the two responses agree to the bit — estimate vector
/// order and values, hit order and similarities. The federated
/// throughput phases only count once this holds: a cluster that
/// answered differently from the flat broker would make its req/s
/// numbers meaningless.
fn assert_bit_identical(
    control: &seu_metasearch::SearchResponse,
    fed: &seu_metasearch::SearchResponse,
    label: &str,
    query: &str,
) {
    assert_eq!(
        control.estimates.len(),
        fed.estimates.len(),
        "{label}, query={query:?}: estimate count"
    );
    for (c, f) in control.estimates.iter().zip(&fed.estimates) {
        assert_eq!(
            c.engine, f.engine,
            "{label}, query={query:?}: estimate order"
        );
        assert_eq!(
            c.usefulness.no_doc.to_bits(),
            f.usefulness.no_doc.to_bits(),
            "{label}, query={query:?}: est_NoDoc for {}",
            c.engine
        );
        assert_eq!(
            c.usefulness.avg_sim.to_bits(),
            f.usefulness.avg_sim.to_bits(),
            "{label}, query={query:?}: est_AvgSim for {}",
            c.engine
        );
    }
    assert_eq!(
        control.hits.len(),
        fed.hits.len(),
        "{label}, query={query:?}: hit count"
    );
    for (c, f) in control.hits.iter().zip(&fed.hits) {
        assert_eq!(
            (&c.engine, &c.doc),
            (&f.engine, &f.doc),
            "{label}, query={query:?}: hit order"
        );
        assert_eq!(
            c.sim.to_bits(),
            f.sim.to_bits(),
            "{label}, query={query:?}: sim for {}/{}",
            c.engine,
            c.doc
        );
    }
}

/// Drives `total` federated searches through the front-door from
/// `clients` threads, panicking on any degradation (a silently dropped
/// reply would make the throughput phases incomparable).
fn hammer_front_door(
    fd: &seu_metasearch::federation::FrontDoor,
    clients: usize,
    total: usize,
    queries: &[String],
    threshold: f64,
) {
    std::thread::scope(|scope| {
        for t in 0..clients {
            scope.spawn(move || {
                let share = total / clients + usize::from(t < total % clients);
                for i in 0..share {
                    let q = &queries[(t + i * clients) % queries.len()];
                    let req = SearchRequest::new(q)
                        .threshold(threshold)
                        .policy(SelectionPolicy::EstimatedUseful);
                    let (_, report) = fd.execute_with_report(&req);
                    assert!(
                        report.failures.is_empty() && report.unresolved.is_empty(),
                        "federated degradation under load: {report:?}"
                    );
                }
            });
        }
    });
}

/// Drives `total` searches through `client` from `clients` threads and
/// returns how many succeeded.
fn hammer(
    client: &seu_net::RemoteEngine,
    clients: usize,
    total: usize,
    queries: &[String],
    threshold: f64,
) -> u64 {
    use seu_metasearch::RemoteTransport;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let client = client.clone();
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let share = total / clients + usize::from(t < total % clients);
                    for i in 0..share {
                        let q = &queries[(t + i * clients) % queries.len()];
                        if client.search(q, threshold, None).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client thread"))
            .sum()
    })
}

/// A two-document engine for the large-registry phases. The vocabulary
/// cycles through a small word pool so the shared vocabulary stays
/// bounded while fingerprints stay distinct.
fn tiny_engine(seed: u64, i: usize) -> (String, SearchEngine) {
    const POOL: &[&str] = &[
        "database", "index", "query", "vector", "ranking", "term", "network", "storage", "cache",
        "shard", "merge", "filter",
    ];
    let a = POOL[(i + seed as usize) % POOL.len()];
    let b = POOL[(i / POOL.len() + 1 + seed as usize) % POOL.len()];
    let mut builder = seu_engine::CollectionBuilder::new(
        seu_text::Analyzer::paper_default(),
        seu_engine::WeightingScheme::CosineTf,
    );
    builder.add_document("d0", &format!("{a} {b} record {i}"));
    builder.add_document("d1", &format!("{b} {a} entry {}", i / 2));
    (format!("bulk-{i:05}"), SearchEngine::new(builder.build()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_is_valid_json_with_expected_shape() {
        let report = run_broker_bench(7, 6, 4);
        assert_eq!(report.queries, 4);
        assert!(report.databases > 0);
        assert_eq!(
            report.phases.iter().map(|p| p.name).collect::<Vec<_>>(),
            [
                "build_databases",
                "register",
                "estimate",
                "select",
                "search",
                "plan",
                "dispatch"
            ]
        );

        let doc = json::parse(&report.to_json()).expect("bench JSON parses");
        assert_eq!(
            doc.get("bench").and_then(|b| b.as_str()),
            Some("broker"),
            "bench tag"
        );
        let phases = doc.get("phases").and_then(|p| p.as_arr()).expect("phases");
        assert_eq!(phases.len(), 7);
        for phase in phases {
            assert!(phase.get("seconds").and_then(json::Json::as_num).is_some());
        }
        let counters = doc
            .get("counters")
            .and_then(|c| c.as_obj())
            .expect("counters");
        assert!(
            counters.contains_key("broker_queries_total"),
            "search phase drives broker_queries_total; got {:?}",
            counters.keys().collect::<Vec<_>>()
        );
        assert!(counters.contains_key("estimator_subrange_invocations_total"));
        // The embedded snapshot must itself round-trip.
        let metrics = doc.get("metrics").expect("metrics field");
        assert!(metrics.get("counters").is_some());
    }

    #[test]
    fn remote_bench_serves_over_loopback_and_reports_net_counters() {
        let report = run_broker_bench_remote(7, 6, 3);
        assert!(report.remote);
        assert_eq!(
            report.phases.iter().map(|p| p.name).collect::<Vec<_>>(),
            [
                "build_databases",
                "serve",
                "register",
                "oracle_per_query",
                "oracle_batched",
                "estimate",
                "select",
                "search",
                "plan",
                "dispatch"
            ]
        );
        // The batched oracle phase answers all its queries in one frame.
        assert!(
            report.counters.get("net_server_batch_requests_total") >= Some(&1),
            "oracle_batched must hit the batch endpoint: {:?}",
            report.counters.get("net_server_batch_requests_total")
        );
        // Registration alone moves one snapshot per database over the
        // wire; search/dispatch add a frame exchange per (query,
        // selected engine).
        assert!(report.counters["net_frames_sent_total"] > 0);
        assert!(report.counters["net_bytes_received_total"] > 0);
        assert!(
            report.counters["net_server_connections_total"] >= report.databases as u64,
            "at least one connection per database: {:?}",
            report.counters.get("net_server_connections_total")
        );
        let doc = json::parse(&report.to_json()).expect("remote bench JSON parses");
        assert_eq!(doc.get("remote"), Some(&json::Json::Bool(true)));
    }

    #[test]
    fn large_registry_phases_appear_with_engines() {
        let report = run_broker_bench_config(&BrokerBenchConfig {
            shards: 4,
            engines: 64,
            ..BrokerBenchConfig::new(7, 6, 3)
        });
        assert_eq!(report.shards, 4);
        assert_eq!(report.large_engines, 64);
        assert_eq!(
            report.phases.iter().map(|p| p.name).collect::<Vec<_>>(),
            [
                "build_databases",
                "register",
                "estimate",
                "select",
                "search",
                "plan",
                "dispatch",
                "large_build",
                "large_register",
                "large_plan",
                "large_execute"
            ]
        );
        let by = |name: &str| report.phases.iter().find(|p| p.name == name).unwrap();
        assert_eq!(by("large_register").items, 64);
        assert!(by("large_plan").items > 0);

        let doc = json::parse(&report.to_json()).expect("sharded bench JSON parses");
        assert_eq!(
            doc.get("shards").and_then(json::Json::as_num),
            Some(4.0),
            "shards field"
        );
        assert_eq!(
            doc.get("large_engines").and_then(json::Json::as_num),
            Some(64.0)
        );
    }

    #[test]
    fn trace_sample_phases_measure_overhead() {
        let report = run_broker_bench_config(&BrokerBenchConfig {
            trace_sample: true,
            ..BrokerBenchConfig::new(7, 6, 3)
        });
        assert_eq!(
            report.phases.iter().map(|p| p.name).collect::<Vec<_>>(),
            [
                "build_databases",
                "register",
                "estimate",
                "select",
                "search",
                "plan",
                "dispatch",
                "dispatch_untraced",
                "dispatch_sampled"
            ]
        );
        let pct = report.trace_overhead_pct.expect("overhead measured");
        assert!(pct.is_finite(), "{pct}");

        let doc = json::parse(&report.to_json()).expect("trace bench JSON parses");
        assert!(
            doc.get("trace_overhead_pct")
                .and_then(json::Json::as_num)
                .is_some(),
            "overhead lands in the JSON report"
        );

        // Without the flag the field is explicit null and the phase
        // list is untouched.
        let plain = run_broker_bench(7, 6, 3);
        assert_eq!(plain.trace_overhead_pct, None);
        let doc = json::parse(&plain.to_json()).expect("plain bench JSON parses");
        assert_eq!(doc.get("trace_overhead_pct"), Some(&json::Json::Null));
    }

    #[test]
    fn zipf_phases_measure_hit_rate_and_speedup() {
        let report = run_broker_bench_config(&BrokerBenchConfig {
            zipf: Some(1.1),
            ..BrokerBenchConfig::new(7, 6, 8)
        });
        let names: Vec<_> = report.phases.iter().map(|p| p.name).collect();
        assert!(
            names.ends_with(&["zipf_setup", "zipf_cold", "zipf_cached"]),
            "{names:?}"
        );
        let hit_rate = report.zipf_hit_rate.expect("hit rate measured");
        assert!(
            (0.0..=1.0).contains(&hit_rate) && hit_rate > 0.0,
            "a Zipfian repeat stream against a warm cache must hit: {hit_rate}"
        );
        let speedup = report.hot_query_speedup.expect("speedup measured");
        assert!(speedup.is_finite() && speedup > 0.0, "{speedup}");

        let doc = json::parse(&report.to_json()).expect("zipf bench JSON parses");
        for field in ["zipf", "zipf_hit_rate", "hot_query_speedup"] {
            assert!(
                doc.get(field).and_then(json::Json::as_num).is_some(),
                "{field} lands in the JSON report"
            );
        }

        // --no-cache: same phases, but the cached pass runs cold, so
        // nothing is ever served.
        let cold = run_broker_bench_config(&BrokerBenchConfig {
            zipf: Some(1.1),
            no_cache: true,
            ..BrokerBenchConfig::new(7, 6, 8)
        });
        assert_eq!(cold.zipf_hit_rate, Some(0.0));

        // Without --zipf the fields are explicit nulls and the phase
        // list is untouched.
        let plain = run_broker_bench(7, 6, 3);
        assert_eq!(plain.zipf_hit_rate, None);
        let doc = json::parse(&plain.to_json()).expect("plain bench JSON parses");
        assert_eq!(doc.get("zipf"), Some(&json::Json::Null));
        assert_eq!(doc.get("zipf_hit_rate"), Some(&json::Json::Null));
        assert_eq!(doc.get("hot_query_speedup"), Some(&json::Json::Null));
    }

    #[test]
    fn federated_phases_measure_cluster_scaling() {
        let report = run_broker_bench_config(&BrokerBenchConfig {
            federated: true,
            replicas: 2,
            ..BrokerBenchConfig::new(7, 3, 2)
        });
        let names: Vec<_> = report.phases.iter().map(|p| p.name).collect();
        assert!(
            names.ends_with(&["federated_serve", "federated_single", "federated_cluster"]),
            "{names:?}"
        );
        assert_eq!(report.federated_replicas, 2);
        let single = report.federated_single_rps.expect("single rps measured");
        let cluster = report.federated_rps.expect("cluster rps measured");
        let speedup = report.federated_speedup.expect("speedup measured");
        assert!(single.is_finite() && single > 0.0, "{single}");
        assert!(cluster.is_finite() && cluster > 0.0, "{cluster}");
        assert!(speedup.is_finite() && speedup > 0.0, "{speedup}");

        let doc = json::parse(&report.to_json()).expect("federated bench JSON parses");
        assert_eq!(
            doc.get("federated_replicas").and_then(json::Json::as_num),
            Some(2.0)
        );
        for field in ["federated_single_rps", "federated_rps", "federated_speedup"] {
            assert!(
                doc.get(field).and_then(json::Json::as_num).is_some(),
                "{field} lands in the JSON report"
            );
        }

        // Without --federated the fields are explicit nulls (replicas
        // 0) and the phase list is untouched.
        let plain = run_broker_bench(7, 3, 2);
        assert_eq!(plain.federated_replicas, 0);
        assert_eq!(plain.federated_rps, None);
        let doc = json::parse(&plain.to_json()).expect("plain bench JSON parses");
        assert_eq!(
            doc.get("federated_replicas").and_then(json::Json::as_num),
            Some(0.0)
        );
        assert_eq!(doc.get("federated_rps"), Some(&json::Json::Null));
        assert_eq!(doc.get("federated_speedup"), Some(&json::Json::Null));
    }

    #[test]
    fn store_phases_time_rebuild_and_restore() {
        let report = run_broker_bench_config(&BrokerBenchConfig {
            store: true,
            engines: 48,
            shards: 2,
            ..BrokerBenchConfig::new(7, 6, 3)
        });
        let names: Vec<_> = report.phases.iter().map(|p| p.name).collect();
        assert!(
            names.ends_with(&["store_setup", "store_rebuild", "store_restore"]),
            "{names:?}"
        );
        let by = |name: &str| report.phases.iter().find(|p| p.name == name).unwrap();
        assert_eq!(by("store_rebuild").items, 48);
        assert_eq!(by("store_restore").items, 48);
        let rebuild = report.registry_rebuild_secs.expect("rebuild timed");
        let restore = report.registry_restore_secs.expect("restore timed");
        assert!(rebuild > 0.0 && restore > 0.0, "{rebuild} {restore}");

        let doc = json::parse(&report.to_json()).expect("store bench JSON parses");
        for field in ["registry_rebuild_secs", "registry_restore_secs"] {
            assert!(
                doc.get(field).and_then(json::Json::as_num).is_some(),
                "{field} lands in the JSON report"
            );
        }

        // Without --store the fields are explicit nulls and the phase
        // list is untouched.
        let plain = run_broker_bench(7, 6, 3);
        assert_eq!(plain.registry_rebuild_secs, None);
        let doc = json::parse(&plain.to_json()).expect("plain bench JSON parses");
        assert_eq!(doc.get("registry_rebuild_secs"), Some(&json::Json::Null));
        assert_eq!(doc.get("registry_restore_secs"), Some(&json::Json::Null));
    }

    #[test]
    fn concurrency_axis_reports_both_schedulers() {
        let report = run_broker_bench_config(&BrokerBenchConfig {
            remote: true,
            concurrency: vec![2],
            ..BrokerBenchConfig::new(7, 6, 3)
        });
        let names: Vec<_> = report.phases.iter().map(|p| p.name).collect();
        assert!(
            names.contains(&"mux_c2") && names.contains(&"threaded_c2"),
            "{names:?}"
        );
        assert_eq!(report.concurrency.len(), 1);
        let point = report.concurrency[0];
        assert_eq!(point.clients, 2);
        assert!(
            point.multiplexed_rps > 0.0 && point.threaded_rps > 0.0,
            "both schedulers must complete requests: {point:?}"
        );
        let doc = json::parse(&report.to_json()).expect("concurrency bench JSON parses");
        let axis = doc
            .get("concurrency")
            .and_then(|c| c.as_arr())
            .expect("concurrency array");
        assert_eq!(axis.len(), 1);
        assert_eq!(
            axis[0].get("clients").and_then(json::Json::as_num),
            Some(2.0)
        );
        assert!(axis[0]
            .get("multiplexed_rps")
            .and_then(json::Json::as_num)
            .is_some());

        // Without the axis the array is present but empty.
        let plain = run_broker_bench(7, 6, 3);
        assert!(plain.concurrency.is_empty());
        let doc = json::parse(&plain.to_json()).expect("plain bench JSON parses");
        assert_eq!(
            doc.get("concurrency")
                .and_then(|c| c.as_arr())
                .map(|a| a.len()),
            Some(0)
        );
    }

    #[test]
    fn counter_deltas_scale_with_queries() {
        let report = run_broker_bench(11, 6, 3);
        // estimate + select + search each consider every database per query.
        let estimates = report.counters["estimator_subrange_invocations_total"];
        assert!(
            estimates >= (3 * report.databases) as u64,
            "expected at least one estimate per (query, database): {estimates}"
        );
        assert_eq!(report.counters.get("broker_selects_total"), Some(&3));
    }
}
