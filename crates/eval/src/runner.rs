//! The experiment runner: sweeps a query workload over one database for a
//! set of estimation methods, in parallel.

use crate::metrics::{MethodResult, ThresholdRow};
use seu_core::UsefulnessEstimator;
use seu_engine::{Collection, Query, SearchEngine};
use seu_repr::Representative;
use std::sync::{Arc, OnceLock};

/// Instrument handles cached once per process. The drift instruments
/// compare each method's estimate against the exact ground truth the
/// runner computes anyway, so estimator regressions show up in `--stats`
/// output without rerunning a table.
struct EvalMetrics {
    queries: Arc<seu_obs::Counter>,
    estimates: Arc<seu_obs::Counter>,
    nodoc_over: Arc<seu_obs::Counter>,
    nodoc_under: Arc<seu_obs::Counter>,
    nodoc_exact: Arc<seu_obs::Counter>,
    nodoc_drift: Arc<seu_obs::Histogram>,
    avg_sim_drift: Arc<seu_obs::Histogram>,
}

fn metrics() -> &'static EvalMetrics {
    static METRICS: OnceLock<EvalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EvalMetrics {
        queries: seu_obs::counter("eval_queries_total"),
        estimates: seu_obs::counter("eval_estimates_total"),
        nodoc_over: seu_obs::counter("eval_nodoc_overestimates_total"),
        nodoc_under: seu_obs::counter("eval_nodoc_underestimates_total"),
        nodoc_exact: seu_obs::counter("eval_nodoc_exact_total"),
        nodoc_drift: seu_obs::histogram_with_buckets(
            "eval_nodoc_drift_docs",
            &seu_obs::SIZE_BUCKETS,
        ),
        avg_sim_drift: seu_obs::histogram("eval_avg_sim_drift"),
    })
}

/// `estimator_invocations_<name>_total`, with the method name made
/// Prometheus-safe.
fn method_counter(name: &str) -> Arc<seu_obs::Counter> {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    seu_obs::counter(&format!("estimator_invocations_{safe}_total"))
}

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Thresholds to sweep (the paper uses 0.1 … 0.6).
    pub thresholds: Vec<f64>,
    /// Number of worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            thresholds: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            threads: 0,
        }
    }
}

impl EvalConfig {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Evaluates `methods` against ground truth on `collection` for a query
/// workload given as token lists.
///
/// The representative `repr` is what the estimators see; it can be the
/// full-precision build of `collection` (Tables 1–6), a quantized
/// round-trip (Tables 7–9), or anything else — the divergence between
/// `repr` and the collection is exactly what is being measured.
///
/// Returns one [`MethodResult`] per method, rows matching
/// `config.thresholds`.
pub fn evaluate(
    collection: &Collection,
    repr: &Representative,
    queries: &[Vec<String>],
    methods: &[&(dyn UsefulnessEstimator + Sync)],
    config: &EvalConfig,
) -> Vec<MethodResult> {
    let engine = SearchEngine::new(collection.clone());
    let thresholds = &config.thresholds;
    let workers = config.worker_count().max(1);
    let chunk = queries.len().div_ceil(workers).max(1);
    let method_counters: Vec<Arc<seu_obs::Counter>> =
        methods.iter().map(|m| method_counter(m.name())).collect();
    let method_counters = &method_counters;

    // partials[worker][method][threshold]
    let partials: Vec<Vec<Vec<ThresholdRow>>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qchunk| {
                let engine = &engine;
                scope.spawn(move |_| {
                    let m = metrics();
                    // Tallies accumulate locally; one atomic add per chunk.
                    let mut n_queries = 0u64;
                    let mut n_estimates = 0u64;
                    let mut n_over = 0u64;
                    let mut n_under = 0u64;
                    let mut n_exact = 0u64;
                    let mut per_method = vec![0u64; methods.len()];
                    let mut acc: Vec<Vec<ThresholdRow>> = methods
                        .iter()
                        .map(|_| {
                            thresholds
                                .iter()
                                .map(|&t| ThresholdRow {
                                    threshold: t,
                                    ..Default::default()
                                })
                                .collect()
                        })
                        .collect();
                    for tokens in qchunk {
                        let query = query_from_tokens(engine.collection(), tokens);
                        if query.is_empty() {
                            // A query with no terms known to this engine:
                            // truth is 0 everywhere and every sane
                            // estimate is 0; skip (no U, no mismatch).
                            continue;
                        }
                        // Ground truth once: all positive similarities,
                        // descending; prefix sums give every threshold's
                        // NoDoc / AvgSim in O(log n).
                        let sims: Vec<f64> = engine
                            .search_threshold(&query, 0.0)
                            .into_iter()
                            .map(|h| h.sim)
                            .collect();
                        let mut prefix = Vec::with_capacity(sims.len() + 1);
                        prefix.push(0.0);
                        for &s in &sims {
                            prefix.push(prefix.last().unwrap() + s);
                        }
                        let truth: Vec<(u64, f64)> = thresholds
                            .iter()
                            .map(|&t| {
                                let count = sims.partition_point(|&s| s > t);
                                let avg = if count > 0 {
                                    prefix[count] / count as f64
                                } else {
                                    0.0
                                };
                                (count as u64, avg)
                            })
                            .collect();
                        n_queries += 1;
                        for (mi, method) in methods.iter().enumerate() {
                            let ests = method.estimate_sweep(repr, &query, thresholds);
                            per_method[mi] += 1;
                            for (ti, est) in ests.iter().enumerate() {
                                let (tn, ta) = truth[ti];
                                let en = est.no_doc_rounded();
                                n_estimates += 1;
                                match en.cmp(&tn) {
                                    std::cmp::Ordering::Greater => n_over += 1,
                                    std::cmp::Ordering::Less => n_under += 1,
                                    std::cmp::Ordering::Equal => n_exact += 1,
                                }
                                m.nodoc_drift.observe(en.abs_diff(tn) as f64);
                                m.avg_sim_drift.observe((est.avg_sim - ta).abs());
                                acc[mi][ti].record(tn, ta, en, est.avg_sim);
                            }
                        }
                    }
                    m.queries.add(n_queries);
                    m.estimates.add(n_estimates);
                    m.nodoc_over.add(n_over);
                    m.nodoc_under.add(n_under);
                    m.nodoc_exact.add(n_exact);
                    for (mi, n) in per_method.iter().enumerate() {
                        method_counters[mi].add(*n);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("evaluation scope");

    reduce(methods, thresholds, partials)
}

fn reduce(
    methods: &[&(dyn UsefulnessEstimator + Sync)],
    thresholds: &[f64],
    partials: Vec<Vec<Vec<ThresholdRow>>>,
) -> Vec<MethodResult> {
    let mut out: Vec<MethodResult> = methods
        .iter()
        .map(|m| MethodResult {
            method: m.name().to_string(),
            rows: thresholds
                .iter()
                .map(|&t| ThresholdRow {
                    threshold: t,
                    ..Default::default()
                })
                .collect(),
        })
        .collect();
    for worker in partials {
        for (mi, rows) in worker.into_iter().enumerate() {
            for (ti, row) in rows.into_iter().enumerate() {
                out[mi].rows[ti].merge(&row);
            }
        }
    }
    out
}

/// Builds a per-collection query vector from query tokens (terms unknown
/// to the collection are dropped, as a real engine would).
pub fn query_from_tokens(collection: &Collection, tokens: &[String]) -> Query {
    use std::collections::HashMap;
    let mut tf: HashMap<seu_text::TermId, u32> = HashMap::new();
    for t in tokens {
        if let Some(id) = collection.vocab().get(t) {
            *tf.entry(id).or_insert(0) += 1;
        }
    }
    collection.query_from_tf(tf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_core::{BasicEstimator, SubrangeEstimator};
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn collection() -> Collection {
        let mut b = CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
        b.add_document("d0", "alpha beta alpha gamma");
        b.add_document("d1", "beta gamma delta");
        b.add_document("d2", "alpha delta delta");
        b.add_document("d3", "epsilon zeta");
        b.build()
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn oracle_estimator_scores_perfectly() {
        // Evaluating the true usefulness against itself must yield
        // match == U, mismatch == 0, d-N == d-S == 0. Build an "oracle"
        // by evaluating with an estimator that sees... the real engine.
        struct Oracle(SearchEngine);
        impl UsefulnessEstimator for Oracle {
            fn estimate(
                &self,
                _repr: &Representative,
                query: &Query,
                threshold: f64,
            ) -> seu_core::Usefulness {
                let t = self.0.true_usefulness(query, threshold);
                seu_core::Usefulness {
                    no_doc: t.no_doc as f64,
                    avg_sim: t.avg_sim,
                }
            }
            fn name(&self) -> &'static str {
                "oracle"
            }
        }
        let c = collection();
        let repr = Representative::build(&c);
        let oracle = Oracle(SearchEngine::new(c.clone()));
        let queries = vec![
            toks(&["alpha"]),
            toks(&["beta", "gamma"]),
            toks(&["delta", "alpha", "zeta"]),
            toks(&["unknownterm"]),
        ];
        let res = evaluate(
            &c,
            &repr,
            &queries,
            &[&oracle],
            &EvalConfig {
                thresholds: vec![0.1, 0.3, 0.5],
                threads: 2,
            },
        );
        for row in &res[0].rows {
            assert_eq!(row.matches, row.u, "t={}", row.threshold);
            assert_eq!(row.mismatches, 0);
            assert_eq!(row.d_n(), 0.0);
            assert!(row.d_s() < 1e-12);
        }
        // At T=0.1 every non-empty query matches something here.
        assert_eq!(res[0].rows[0].u, 3);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c = collection();
        let repr = Representative::build(&c);
        let est = SubrangeEstimator::paper_six_subrange();
        let basic = BasicEstimator::new();
        let queries: Vec<Vec<String>> = (0..40)
            .map(|i| match i % 4 {
                0 => toks(&["alpha"]),
                1 => toks(&["beta", "delta"]),
                2 => toks(&["gamma", "alpha", "epsilon"]),
                _ => toks(&["zeta"]),
            })
            .collect();
        let run = |threads| {
            evaluate(
                &c,
                &repr,
                &queries,
                &[&est, &basic],
                &EvalConfig {
                    thresholds: vec![0.1, 0.2, 0.4],
                    threads,
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.method, b.method);
            for (ra, rb) in a.rows.iter().zip(&b.rows) {
                assert_eq!(ra.u, rb.u);
                assert_eq!(ra.matches, rb.matches);
                assert_eq!(ra.mismatches, rb.mismatches);
                assert!((ra.sum_dn - rb.sum_dn).abs() < 1e-9);
                assert!((ra.sum_ds - rb.sum_ds).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn unknown_query_contributes_nothing() {
        let c = collection();
        let repr = Representative::build(&c);
        let est = BasicEstimator::new();
        let res = evaluate(
            &c,
            &repr,
            &[toks(&["nosuchterm"])],
            &[&est],
            &EvalConfig::default(),
        );
        for row in &res[0].rows {
            assert_eq!(row.u, 0);
            assert_eq!(row.mismatches, 0);
        }
    }

    #[test]
    fn query_from_tokens_counts_duplicates() {
        let c = collection();
        let q = query_from_tokens(&c, &toks(&["alpha", "alpha", "beta"]));
        assert_eq!(q.len(), 2);
        let alpha = c.vocab().get("alpha").unwrap();
        let beta = c.vocab().get("beta").unwrap();
        assert!(q.weight(alpha) > q.weight(beta));
    }
}
