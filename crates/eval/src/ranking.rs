//! Many-database engine ranking (experiment E11 — the paper's stated
//! future work, "extensive experiments involving much larger and much
//! more databases").
//!
//! Fifty-three single-topic databases (the paper's news host, at full
//! width) are ranked per query by each selection method; quality is the
//! standard distributed-IR recall metric
//!
//! ```text
//! R_n = E_q [ |top-n ranked ∩ truly useful| / min(n, #truly useful) ]
//! ```
//!
//! over the queries with at least one truly useful database, where
//! "truly useful" means true NoDoc >= 1 at the experiment threshold.

use crate::runner::query_from_tokens;
use seu_core::cori::{CoriCandidate, CoriRanker};
use seu_core::{HighCorrelationEstimator, SubrangeEstimator, UsefulnessEstimator};
use seu_engine::{Collection, SearchEngine};
use seu_repr::Representative;

/// One ranking method's `R_n` scores.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingResult {
    /// Method name.
    pub method: String,
    /// `(n, R_n)` pairs in the order requested.
    pub r_at: Vec<(usize, f64)>,
}

/// Everything E11 needs, prebuilt once.
pub struct RankingFixture {
    names: Vec<String>,
    collections: Vec<Collection>,
    engines: Vec<SearchEngine>,
    reprs: Vec<Representative>,
}

impl RankingFixture {
    /// Builds engines and representatives for a database set.
    pub fn new(databases: Vec<(String, Collection)>) -> Self {
        let mut names = Vec::with_capacity(databases.len());
        let mut collections = Vec::with_capacity(databases.len());
        for (name, coll) in databases {
            names.push(name);
            collections.push(coll);
        }
        let engines = collections
            .iter()
            .map(|c| SearchEngine::new(c.clone()))
            .collect();
        let reprs = collections.iter().map(Representative::build).collect();
        RankingFixture {
            names,
            collections,
            engines,
            reprs,
        }
    }

    /// Database names, in ranking-index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the fixture is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Ranks database indices by descending score (ties by index).
fn rank_by(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// `|top-n ∩ useful| / min(n, |useful|)`.
fn recall_at(ranked: &[usize], useful: &[bool], n: usize) -> f64 {
    let total_useful = useful.iter().filter(|&&u| u).count();
    if total_useful == 0 {
        return 0.0;
    }
    let found = ranked.iter().take(n).filter(|&&i| useful[i]).count();
    found as f64 / total_useful.min(n) as f64
}

/// Runs the ranking comparison over a query workload.
///
/// Methods compared:
/// * `subrange` — rank by the subrange method's estimated NoDoc at
///   `threshold` (ties broken by estimated AvgSim);
/// * `high-correlation` — rank by the gGlOSS high-correlation NoDoc;
/// * `cori` — CORI document-frequency belief (threshold-blind);
/// * `by-size` — static ranking by collection size (the naive baseline).
pub fn rank_databases(
    fixture: &RankingFixture,
    queries: &[Vec<String>],
    threshold: f64,
    cutoffs: &[usize],
) -> Vec<RankingResult> {
    let sub = SubrangeEstimator::paper_six_subrange();
    let high = HighCorrelationEstimator::new();
    let cori = CoriRanker::new();

    let mut sums: Vec<Vec<f64>> = vec![vec![0.0; cutoffs.len()]; 4];
    let mut counted = 0u64;

    let cori_candidates: Vec<CoriCandidate<'_>> = fixture
        .collections
        .iter()
        .zip(&fixture.reprs)
        .map(|(collection, repr)| CoriCandidate { collection, repr })
        .collect();
    let size_scores: Vec<f64> = fixture.collections.iter().map(|c| c.len() as f64).collect();

    for tokens in queries {
        // Per-database query views, truth, and scores.
        let mut useful = vec![false; fixture.len()];
        let mut any_useful = false;
        let mut sub_scores = vec![0.0; fixture.len()];
        let mut high_scores = vec![0.0; fixture.len()];
        for i in 0..fixture.len() {
            let q = query_from_tokens(&fixture.collections[i], tokens);
            if q.is_empty() {
                continue;
            }
            if fixture.engines[i].true_usefulness(&q, threshold).no_doc >= 1 {
                useful[i] = true;
                any_useful = true;
            }
            let u = sub.estimate(&fixture.reprs[i], &q, threshold);
            // NoDoc first, AvgSim as tiebreak (both components of the
            // paper's usefulness pair).
            sub_scores[i] = u.no_doc + 1e-6 * u.avg_sim;
            high_scores[i] = high.estimate(&fixture.reprs[i], &q, threshold).no_doc;
        }
        if !any_useful {
            continue;
        }
        counted += 1;
        let cori_scores = cori.score_all(&cori_candidates, tokens);
        for (mi, scores) in [
            (0, &sub_scores),
            (1, &high_scores),
            (2, &cori_scores),
            (3, &size_scores),
        ] {
            let ranked = rank_by(scores);
            for (ci, &n) in cutoffs.iter().enumerate() {
                sums[mi][ci] += recall_at(&ranked, &useful, n);
            }
        }
    }

    let names = ["subrange", "high-correlation", "cori", "by-size"];
    names
        .iter()
        .enumerate()
        .map(|(mi, name)| RankingResult {
            method: name.to_string(),
            r_at: cutoffs
                .iter()
                .enumerate()
                .map(|(ci, &n)| {
                    (
                        n,
                        if counted == 0 {
                            0.0
                        } else {
                            sums[mi][ci] / counted as f64
                        },
                    )
                })
                .collect(),
        })
        .collect()
}

/// Renders the E11 table.
pub fn render_ranking(title: &str, results: &[RankingResult]) -> String {
    let mut out = format!("{title}\n");
    if let Some(first) = results.first() {
        out.push_str(&format!("{:<18}", "method"));
        for &(n, _) in &first.r_at {
            out.push_str(&format!(" {:>7}", format!("R_{n}")));
        }
        out.push('\n');
    }
    for r in results {
        out.push_str(&format!("{:<18}", r.method));
        for &(_, v) in &r.r_at {
            out.push_str(&format!(" {v:>7.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seu_engine::{CollectionBuilder, WeightingScheme};
    use seu_text::Analyzer;

    fn mini_fixture() -> RankingFixture {
        let mk = |docs: &[&str]| {
            let mut b =
                CollectionBuilder::new(Analyzer::paper_default(), WeightingScheme::CosineTf);
            for (i, d) in docs.iter().enumerate() {
                b.add_document(&format!("d{i}"), d);
            }
            b.build()
        };
        RankingFixture::new(vec![
            (
                "dbs".into(),
                mk(&[
                    "databases indexes",
                    "databases queries",
                    "databases storage",
                ]),
            ),
            ("food".into(), mk(&["soup recipes", "bread baking"])),
            ("space".into(), mk(&["orbital mechanics", "launch windows"])),
        ])
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn recall_at_counts_correctly() {
        let useful = vec![true, false, true];
        assert_eq!(recall_at(&[0, 1, 2], &useful, 1), 1.0);
        assert_eq!(recall_at(&[1, 0, 2], &useful, 1), 0.0);
        assert_eq!(recall_at(&[0, 2, 1], &useful, 2), 1.0);
        assert_eq!(recall_at(&[0, 1, 2], &useful, 2), 0.5);
        // No useful databases -> 0 by convention (query is skipped anyway).
        assert_eq!(recall_at(&[0, 1, 2], &[false; 3], 2), 0.0);
    }

    #[test]
    fn rank_by_is_descending_stable() {
        assert_eq!(rank_by(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
        assert_eq!(rank_by(&[0.5, 0.5, 0.9]), vec![2, 0, 1]);
    }

    #[test]
    fn topical_queries_rank_their_database_first() {
        let fixture = mini_fixture();
        let queries = vec![toks(&["databases"]), toks(&["soup"]), toks(&["orbital"])];
        let results = rank_databases(&fixture, &queries, 0.1, &[1, 3]);
        // Every method except by-size should get R_1 = 1 on this easy set.
        for r in &results {
            if r.method == "by-size" {
                continue;
            }
            assert!(
                (r.r_at[0].1 - 1.0).abs() < 1e-9,
                "{}: {:?}",
                r.method,
                r.r_at
            );
        }
        // by-size cannot adapt to the query.
        let by_size = results.iter().find(|r| r.method == "by-size").unwrap();
        assert!(by_size.r_at[0].1 < 1.0);
        // At n = 3 every method trivially reaches 1 (all dbs inspected).
        for r in &results {
            assert!((r.r_at[1].1 - 1.0).abs() < 1e-9, "{}", r.method);
        }
    }

    #[test]
    fn queries_with_no_useful_database_are_skipped() {
        let fixture = mini_fixture();
        let queries = vec![toks(&["zebra"])];
        let results = rank_databases(&fixture, &queries, 0.1, &[1]);
        for r in &results {
            assert_eq!(r.r_at[0].1, 0.0);
        }
    }

    #[test]
    fn render_contains_methods_and_cutoffs() {
        let fixture = mini_fixture();
        let results = rank_databases(&fixture, &[toks(&["databases"])], 0.1, &[1, 5]);
        let s = render_ranking("E11", &results);
        assert!(s.contains("R_1") && s.contains("R_5"));
        assert!(s.contains("subrange") && s.contains("cori"));
    }
}
